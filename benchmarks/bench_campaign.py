"""Section 7.3 machinery: Golden Run, injection run and GRC costs.

Times the building blocks every Table-1 estimate is made of: one Golden
Run of the closed-loop system, one injection run with a one-shot trap,
and one full Golden Run Comparison — the per-run cost that multiplies
into the 52 000-run full-grid campaign.
"""

from __future__ import annotations

from repro.arrestment import build_arrestment_run
from repro.arrestment.testcases import ArrestmentTestCase
from repro.injection.error_models import BitFlip
from repro.injection.golden_run import GoldenRun, compare_to_golden_run
from repro.injection.traps import InputInjectionTrap

DURATION_MS = 6000
CASE = ArrestmentTestCase(14000, 60)


def test_golden_run(benchmark):
    runner = build_arrestment_run(CASE)
    result = benchmark.pedantic(
        runner.run, args=(DURATION_MS,), rounds=3, iterations=1
    )
    assert result.duration_ms == DURATION_MS
    assert result.telemetry["position_m"] > 0


def test_injection_run_with_grc(benchmark):
    runner = build_arrestment_run(CASE)
    golden = GoldenRun(CASE.case_id, runner.run(DURATION_MS))

    def one_injection():
        runner.clear_hooks()
        trap = InputInjectionTrap.for_system(
            runner.system, "V_REG", "SetValue", 2500, BitFlip(14)
        )
        runner.add_read_interceptor(trap)
        injected = runner.run(DURATION_MS)
        runner.clear_hooks()
        return trap, compare_to_golden_run(golden, injected)

    trap, comparison = benchmark.pedantic(one_injection, rounds=3, iterations=1)
    assert trap.fired
    assert comparison.diverged("OutValue")


def test_grc_only(benchmark):
    runner = build_arrestment_run(CASE)
    golden = GoldenRun(CASE.case_id, runner.run(DURATION_MS))
    injected = runner.run(DURATION_MS)
    comparison = benchmark(compare_to_golden_run, golden, injected)
    assert comparison.error_free()
