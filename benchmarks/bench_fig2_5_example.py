"""Figs. 2–5: the example system, its permeability graph and trees.

Regenerates the Section 4 illustrations: the five-module example system
(Fig. 2), its permeability graph (Fig. 3), the backtrack tree of
:math:`O^E_1` (Fig. 4) and the trace tree of :math:`I^A_1` (Fig. 5),
as ASCII renderings plus Graphviz DOT.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.backtrack import build_backtrack_tree
from repro.core.dot import graph_to_dot, system_to_dot, tree_to_dot
from repro.core.graph import PermeabilityGraph
from repro.core.trace import build_trace_tree
from repro.core.treenode import NodeKind


def test_fig2_3_example_graph(benchmark, fig2_matrix):
    graph = benchmark(PermeabilityGraph, fig2_matrix)

    assert graph.n_arcs() == 13
    assert len([a for a in graph.arcs() if a.is_self_loop]) == 2
    write_artifact(
        "fig2_3_example_graph.txt",
        system_to_dot(fig2_matrix.system) + "\n\n" + graph_to_dot(graph),
    )


def test_fig4_example_backtrack_tree(benchmark, fig2_matrix):
    tree = benchmark(build_backtrack_tree, fig2_matrix, "sys_out")

    assert tree.n_paths() == 7
    feedback = [n for n in tree.root.walk() if n.kind is NodeKind.FEEDBACK]
    assert feedback and all(n.signal == "b1" for n in feedback)
    write_artifact(
        "fig4_example_backtrack.txt", tree.render() + "\n\n" + tree_to_dot(tree)
    )


def test_fig5_example_trace_tree(benchmark, fig2_matrix):
    tree = benchmark(build_trace_tree, fig2_matrix, "ext_a")

    assert tree.n_paths() == 3
    assert all(leaf.signal == "sys_out" for leaf in tree.root.leaves())
    write_artifact(
        "fig5_example_trace.txt", tree.render() + "\n\n" + tree_to_dot(tree)
    )
