"""Table 1: estimated error permeability of the 25 input/output pairs.

Regenerates the paper's Table 1 from the session campaign.  The
benchmark times the aggregation stage (campaign outcomes → estimates);
the campaign itself runs once per session (see conftest).
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.report import render_table1
from repro.injection.estimator import estimate_matrix


def test_table1_aggregation(benchmark, campaign_result, arrestment_system):
    matrix = benchmark(estimate_matrix, campaign_result)

    assert matrix.is_complete()
    assert len(matrix) == 25  # Section 8: 25 input/output pairs

    # Paper-shape checks (see EXPERIMENTS.md for the full comparison):
    assert matrix.get("CLOCK", "ms_slot_nbr", "ms_slot_nbr") == 1.0
    # Paper: 0.000.  Our PRES_S retains a small event-timing residue
    # under exact GRC (see EXPERIMENTS.md); it stays the least
    # permeable module by a wide margin.
    assert matrix.get("PRES_S", "ADC", "InValue") <= 0.15
    assert matrix.relative_permeability("PRES_S") == min(
        matrix.relative_permeability(m) for m in matrix.system.module_names()
    )
    for input_signal in ("PACNT", "TIC1", "TCNT"):
        assert matrix.get("DIST_S", input_signal, "stopped") == 0.0  # OB2
    assert matrix.get("V_REG", "SetValue", "OutValue") >= 0.8  # paper: 0.884
    assert matrix.get("V_REG", "InValue", "OutValue") >= 0.8  # paper: 0.920
    assert 0.75 <= matrix.get("PRES_A", "OutValue", "TOC2") < 1.0  # paper: 0.860

    write_artifact("table1_permeability.txt", render_table1(matrix))
