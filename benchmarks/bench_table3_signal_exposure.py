"""Table 3: signal error exposures (Eq. 6).

Regenerates the paper's Table 3 from the estimated matrix and times
the tree construction + exposure evaluation pipeline.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.backtrack import build_all_backtrack_trees
from repro.core.exposure import all_signal_exposures
from repro.core.report import render_table3


def _compute(matrix):
    trees = list(build_all_backtrack_trees(matrix).values())
    return all_signal_exposures(trees, signals=matrix.system.signal_names())


def test_table3_signal_exposure(benchmark, estimated_matrix):
    exposures = benchmark(_compute, estimated_matrix)

    # The paper's leading signals: SetValue, i and OutValue dominate;
    # mscnt and the boundary registers sit near the bottom.
    internal_leaders = sorted(exposures, key=lambda s: -exposures[s])[:4]
    assert "SetValue" in internal_leaders
    assert "i" in internal_leaders or "OutValue" in internal_leaders
    assert exposures["SetValue"] > exposures["mscnt"]
    # System inputs generate leaf nodes only: zero exposure.
    for signal in ("PACNT", "TIC1", "TCNT", "ADC"):
        assert exposures[signal] == 0.0

    write_artifact("table3_signal_exposure.txt", render_table3(exposures))
