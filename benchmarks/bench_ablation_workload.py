"""Ablation (paper future work): sensitivity to the workload.

Section 6: "Since the propagation of errors may differ based on the
system workload, it is generally preferred to have realistic input
distributions"; Section 9 defers "analysing the effect of workload ...
on the permeability estimates" to future work.  This benchmark splits
the session campaign per workload and measures how much the per-pair
estimates drift across test cases.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.injection.estimator import estimate_matrix


def _per_case_matrices(campaign_result):
    return {
        case_id: estimate_matrix(
            campaign_result,
            predicate=lambda o, cid=case_id: o.case_id == cid,
        )
        for case_id in campaign_result.case_ids()
    }


def test_workload_ablation(benchmark, campaign_result):
    matrices = benchmark(_per_case_matrices, campaign_result)
    assert len(matrices) >= 2

    system = campaign_result.system
    lines = ["Per-pair estimate spread across workloads (max - min):"]
    spreads = {}
    for pair in system.pair_index():
        values = [matrix.get(*pair) for matrix in matrices.values()]
        spread = max(values) - min(values)
        spreads[pair] = spread
        module, input_signal, output_signal = pair
        lines.append(
            f"  {module}: {input_signal} -> {output_signal}: "
            f"spread {spread:.3f} (values {', '.join(f'{v:.3f}' for v in values)})"
        )

    # Structural pairs are workload-invariant...
    assert spreads[("CLOCK", "ms_slot_nbr", "ms_slot_nbr")] == 0.0
    assert spreads[("CALC", "i", "i")] == 0.0
    # ...while at least one data-dependent pair drifts with the
    # workload, which is why the paper averages over 25 test cases.
    assert any(spread > 0.0 for spread in spreads.values())

    # The module-level ranking stays stable across workloads — the
    # paper's Section 6 working assumption, quantified as Spearman rank
    # correlation between every pair of per-workload estimates.
    from repro.core.compare import compare_matrices

    case_ids = list(matrices)
    correlations = []
    for index, first in enumerate(case_ids):
        for second in case_ids[index + 1 :]:
            comparison = compare_matrices(matrices[first], matrices[second])
            correlations.append(
                (first, second, comparison.module_rank_correlation)
            )
            assert comparison.ordering_maintained, (first, second)
    lines.append("\nModule-ordering stability (Spearman rho of Eq. 3):")
    for first, second, rho in correlations:
        lines.append(f"  {first} vs {second}: rho = {rho:.3f}")
    write_artifact("ablation_workload.txt", "\n".join(lines))
