"""Section 2 baseline: the uniform-propagation hypothesis of [12].

"Our findings do not corroborate this assertion of uniform
propagation."  Regenerates that claim quantitatively: per injection
location, the fraction of injections reaching the system output, and
the verdict on whether locations behave all-or-nothing.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.baselines.uniform import analyse_uniform_propagation


def test_uniform_propagation_baseline(benchmark, campaign_result):
    report = benchmark(analyse_uniform_propagation, campaign_result)

    assert report.n_locations == 13  # all module inputs were injected
    # The paper's counter-claim: intermediate propagation ratios exist.
    assert not report.corroborates_uniform_propagation
    assert report.intermediate_locations()
    assert 0.0 < report.uniformity_index < 1.0

    write_artifact("uniform_propagation.txt", report.render())
