"""Ablation (paper future work): sensitivity to the error model.

Section 6: "The type of injected errors can also effect the estimates.
... assuming that the relative order of the modules and signals when
analysing permeability is maintained."  Section 9 defers the study of
"the effect of ... error models on the permeability estimates" to
future work — this benchmark runs it: four error-model families on an
identical reduced grid, comparing the module ranking by Eq. 3.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_artifact
from repro.arrestment import build_arrestment_model, build_arrestment_run
from repro.arrestment.testcases import reduced_test_cases
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import (
    BitFlip,
    DoubleBitFlip,
    Offset,
    RandomReplacement,
)
from repro.injection.estimator import estimate_matrix

MODEL_SETS = {
    "bitflip": tuple(BitFlip(bit) for bit in (0, 4, 8, 12, 15)),
    "double-bitflip": tuple(DoubleBitFlip(b, b + 3) for b in (0, 4, 8, 12)),
    "offset": tuple(Offset(delta) for delta in (-1024, -32, 32, 1024)),
    "replace": tuple(RandomReplacement() for _ in range(4)),
}


@pytest.fixture(scope="module")
def rankings():
    system = build_arrestment_model()
    results = {}
    for label, models in MODEL_SETS.items():
        config = CampaignConfig(
            duration_ms=5000,
            injection_times_ms=(2200,),
            error_models=models,
            seed=42,
        )
        campaign = InjectionCampaign(
            system,
            lambda case: build_arrestment_run(case),
            reduced_test_cases(1),
            config,
        )
        matrix = estimate_matrix(campaign.execute())
        results[label] = {
            name: matrix.nonweighted_relative_permeability(name)
            for name in system.module_names()
        }
    return results


def test_error_model_ablation(benchmark, rankings):
    def rank(label):
        measures = rankings[label]
        return sorted(measures, key=lambda m: -measures[m])

    orders = benchmark(lambda: {label: rank(label) for label in rankings})

    lines = ["Module ranking by Eq. 3 under different error models:"]
    for label, order in orders.items():
        values = rankings[label]
        lines.append(
            f"  {label:15s}: "
            + " > ".join(f"{m}({values[m]:.2f})" for m in order)
        )
    write_artifact("ablation_error_models.txt", "\n".join(lines))

    # The paper's working assumption: the relative order of the most
    # permeable modules is maintained across error models.
    reference_top = set(orders["bitflip"][:3])
    for label, order in orders.items():
        assert set(order[:3]) & reference_top, (
            f"{label} shares no top-3 module with the bit-flip reference"
        )
    # CLOCK's feedback pair is near-model-independent: only corruption
    # that is congruent to 0 modulo the 7-slot cycle is absorbed by the
    # slot arithmetic (e.g. the 16-bit wrap of offset -1024 is 64512,
    # a multiple of 7), so every family measures it at or near 1.
    for label, measures in rankings.items():
        assert measures["CLOCK"] >= 0.75, label
