"""Section 5 / OB1–OB6: the EDM/ERM placement recommendation engine.

Regenerates the paper's placement conclusions from the estimated matrix
and times the full advisor pass (graph + both tree families + path
enumeration + ranking).
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.placement import PlacementAdvisor


def test_placement_report(benchmark, estimated_matrix):
    report = benchmark(lambda: PlacementAdvisor(estimated_matrix).report())

    # OB1: the input-only modules never appear as EDM hosts.
    edm_hosts = {item.module for item in report.edm_modules}
    assert "DIST_S" not in edm_hosts and "PRES_S" not in edm_hosts

    # OB4: the paper selects SetValue, OutValue and pulscnt.
    names = {candidate.signal for candidate in report.edm_signals}
    assert names & {"SetValue", "OutValue", "pulscnt"}

    # OB4: TOC2 (hardware register) and mscnt are excluded.
    assert "TOC2" in report.excluded_signals

    # OB6: the sensor front-ends form the input barrier.
    assert set(report.barrier_modules) == {"DIST_S", "PRES_S"}

    write_artifact("placement_report.txt", report.render())
