"""Table 4: propagation paths of the TOC2 backtrack tree, ranked.

"From the backtrack tree in Fig. 10, we can generate 22 propagation
paths from the system output signal to an input signal. ... Table 4
depicts the thirteen paths that acquired weights greater than zero."

The 22-path structure is exact; the number of non-zero paths depends on
how many DIST_S pairs the campaign measures above zero (13 in the
paper's full grid; fewer on the quick grid — see EXPERIMENTS.md).
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.backtrack import build_backtrack_tree
from repro.core.paths import nonzero_paths, paths_of_backtrack_tree, rank_paths
from repro.core.report import render_table4


def _compute(matrix):
    tree = build_backtrack_tree(matrix, "TOC2")
    ranked = rank_paths(paths_of_backtrack_tree(tree))
    return tree, ranked


def test_table4_ranked_paths(benchmark, estimated_matrix):
    tree, ranked = benchmark(_compute, estimated_matrix)

    assert tree.n_paths() == 22  # paper-exact structure
    nonzero = nonzero_paths(ranked)
    assert 1 <= len(nonzero) < 22
    # Every surviving path funnels through the OutValue -> TOC2 chain
    # (the paper's OB5: SetValue and OutValue are on all paths).
    for path in nonzero:
        assert "OutValue" in path.signals
    # Ranking is by weight, descending.
    weights = [path.weight for path in ranked]
    assert weights == sorted(weights, reverse=True)

    write_artifact(
        "table4_paths.txt",
        render_table4(ranked) + "\n\nNon-zero paths: "
        f"{len(nonzero)} of {len(ranked)} (paper: 13 of 22)",
    )
