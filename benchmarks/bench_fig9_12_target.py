"""Figs. 9–12: the target system's graph, backtrack and trace trees.

Regenerates the Section 7.2 system-analysis artefacts: the permeability
graph of the arrestment system (Fig. 9), the backtrack tree of ``TOC2``
(Fig. 10) and the trace trees of ``ADC`` and ``PACNT`` (Figs. 11/12),
using the experimentally estimated matrix.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.backtrack import build_backtrack_tree
from repro.core.dot import graph_to_dot, tree_to_dot
from repro.core.graph import PermeabilityGraph
from repro.core.trace import build_all_trace_trees, build_trace_tree
from repro.core.treenode import NodeKind


def test_fig9_target_permeability_graph(benchmark, estimated_matrix):
    graph = benchmark(PermeabilityGraph, estimated_matrix)

    # 25 pairs fan out to their consumers: CLOCK 2 (mscnt->CALC,
    # slot self-loop), DIST_S 9 -> CALC, PRES_S 1 -> V_REG, CALC 10
    # (5 i self-loops + 5 SetValue -> V_REG), V_REG 2 -> PRES_A,
    # PRES_A 1 -> environment.
    assert graph.n_arcs() == 25
    assert len(graph.environment_arcs()) == 1
    assert len(graph.incoming_arcs("CALC")) == 15
    write_artifact("fig9_target_graph.txt", graph_to_dot(graph, include_zero=True))


def test_fig10_backtrack_tree_toc2(benchmark, estimated_matrix):
    tree = benchmark(build_backtrack_tree, estimated_matrix, "TOC2")

    assert tree.n_paths() == 22  # Section 8's path count
    feedback_signals = {
        node.signal for node in tree.root.walk() if node.kind is NodeKind.FEEDBACK
    }
    assert feedback_signals == {"ms_slot_nbr", "i"}  # Fig. 10's double lines
    write_artifact(
        "fig10_backtrack_toc2.txt", tree.render() + "\n\n" + tree_to_dot(tree)
    )


def test_fig11_trace_tree_adc(benchmark, estimated_matrix):
    tree = benchmark(build_trace_tree, estimated_matrix, "ADC")

    signals = [node.signal for node in tree.root.walk()]
    assert signals == ["ADC", "InValue", "OutValue", "TOC2"]
    write_artifact("fig11_trace_adc.txt", tree.render())


def test_fig12_trace_tree_pacnt(benchmark, estimated_matrix):
    tree = benchmark(build_trace_tree, estimated_matrix, "PACNT")

    # Fig. 12: no node carries a child of its own signal (the i->i
    # recursion is cut), and every leaf is the system output.
    for node in tree.root.walk():
        assert all(child.signal != node.signal for child in node.children)
    assert all(leaf.signal == "TOC2" for leaf in tree.root.leaves())
    write_artifact("fig12_trace_pacnt.txt", tree.render())


def test_fig11_12_all_trace_trees(benchmark, estimated_matrix):
    trees = benchmark(build_all_trace_trees, estimated_matrix)

    assert set(trees) == {"PACNT", "TIC1", "TCNT", "ADC"}
    # Paper: "The trees for inputs TIC1 and TCNT are very similar to
    # the tree for PACNT".
    assert trees["TIC1"].n_paths() == trees["PACNT"].n_paths()
    assert trees["TCNT"].n_paths() == trees["PACNT"].n_paths()
