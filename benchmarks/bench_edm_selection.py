"""Section 2 baseline: coverage/latency EDM subset selection ([18]).

Builds perfect trace monitors for every internal signal, greedily
selects the minimum-overlap subset ([18]'s heuristic), and contrasts it
with the exposure-driven placement of Section 5 — the paper's OB3 point
that location matters as much as detection capability.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.baselines.edm_selection import greedy_edm_selection
from repro.core.placement import PlacementAdvisor


def test_edm_subset_selection(benchmark, campaign_result, estimated_matrix):
    selection = benchmark(greedy_edm_selection, campaign_result, 3)

    assert selection.n_detectable > 0
    assert 0.5 <= selection.total_coverage <= 1.0
    # Coverage is monotone in the number of monitors.
    assert list(selection.cumulative_coverage) == sorted(
        selection.cumulative_coverage
    )

    placement = PlacementAdvisor(estimated_matrix).report()
    exposure_picks = {candidate.signal for candidate in placement.edm_signals}
    overlap = set(selection.signals) & exposure_picks

    lines = [
        selection.render(),
        "",
        f"Exposure-driven picks (Section 5): {sorted(exposure_picks)}",
        f"Greedy coverage picks ([18]):      {sorted(selection.signals)}",
        f"Overlap: {sorted(overlap) or '(none)'}",
        "",
        "OB3: both heuristics converge on the high-traffic corridor; a "
        "monitor with excellent coverage on a low-exposure signal (e.g. "
        "InValue) is never selected first by either.",
    ]
    write_artifact("edm_selection.txt", "\n".join(lines))
