"""Extension: OB3 quantified — executable assertions at rival locations.

OB3: a detection mechanism on ``InValue`` "with a very high probability
detected errors in the signal", yet "it would not be cost effective to
incorporate it into the system since the signal it monitors has a very
low error exposure. ... the locations are equally important."

This benchmark places calibrated assertions on the low-exposure
``InValue`` and on the high-exposure ``SetValue``/``OutValue``/``pulscnt``
corridor, evaluates them against a dedicated campaign (the evaluation
needs the per-run traces), and verifies the paper's conclusion: the
corridor assertions catch far more of the actually-propagating errors.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_artifact
from repro.arrestment import build_arrestment_model, build_arrestment_run
from repro.arrestment.testcases import ArrestmentTestCase
from repro.edm.detectors import DeltaCheck, MonotonicCheck, calibrate_delta
from repro.edm.evaluation import evaluate_detectors
from repro.injection.campaign import CampaignConfig
from repro.injection.error_models import bit_flip_models

TARGETS = (
    ("DIST_S", "PACNT"),
    ("DIST_S", "TIC1"),
    ("CALC", "pulscnt"),
    ("CALC", "slow_speed"),
    ("V_REG", "SetValue"),
    ("PRES_S", "ADC"),
)


@pytest.fixture(scope="module")
def evaluation():
    system = build_arrestment_model()
    case = ArrestmentTestCase(14000, 60)
    # Calibrate assertion bounds from one Golden Run.
    golden = build_arrestment_run(case).run(6000)
    detectors = [
        DeltaCheck(
            "InValue", calibrate_delta(golden.traces["InValue"].samples)
        ),
        DeltaCheck(
            "SetValue", calibrate_delta(golden.traces["SetValue"].samples)
        ),
        DeltaCheck(
            "OutValue", calibrate_delta(golden.traces["OutValue"].samples)
        ),
        MonotonicCheck("pulscnt"),
    ]
    config = CampaignConfig(
        duration_ms=6000,
        injection_times_ms=(1200, 3400),
        error_models=tuple(bit_flip_models(16)),
        targets=TARGETS,
        seed=99,
    )
    return evaluate_detectors(
        system, lambda c: build_arrestment_run(c), {case.case_id: case}, config,
        detectors,
    )


def test_edm_assertion_study(benchmark, evaluation):
    ranked = benchmark(evaluation.ranked)

    by_signal = {stats.signal: stats for stats in evaluation.stats}
    # None of the calibrated assertions false-alarms on the Golden Run.
    assert all(not stats.has_false_alarms for stats in evaluation.stats)

    # OB3's quantitative core: the corridor assertions catch more of
    # the propagating errors than the InValue assertion, because the
    # errors overwhelmingly do not pass through InValue.
    corridor = max(
        by_signal["SetValue"].coverage, by_signal["OutValue"].coverage
    )
    assert corridor > by_signal["InValue"].coverage

    lines = [
        evaluation.render(),
        "",
        "OB3: the InValue assertion is starved of errors (low exposure), "
        "while the SetValue/OutValue corridor assertions see most of the "
        "propagating error traffic.",
    ]
    write_artifact("edm_assertions.txt", "\n".join(lines))
    assert ranked[0].signal in {"SetValue", "OutValue", "pulscnt"}
