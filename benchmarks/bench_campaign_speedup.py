"""Campaign wall-clock: naive vs. checkpointed vs. fast-forward vs. sharded.

Measures the execution strategies of :class:`InjectionCampaign` on the
arrestment Table 1 campaign and emits ``BENCH_campaign.json`` (at the
repo root and under ``benchmarks/out/``) with runs/sec, the simulated
milliseconds each optimisation avoids, and the speedups — the perf
trajectory of the campaign engine.

Strategies
----------
``naive``
    Every IR simulated from time zero to the end.
``checkpointed``
    Golden-Run prefix reuse: IRs resume from the checkpoint at their
    injection instant (speedup reported against ``naive``).
``fast_forward``
    Prefix reuse plus reconvergence fast-forward: IRs additionally stop
    once the injected error provably died out and splice the Golden-Run
    suffix (speedup reported against ``checkpointed``, plus the
    fraction of IRs that reconverged and the frames spliced).
``grid_sharded``
    The full stack, sharded over a process pool with the Golden Run
    published through shared memory.
``fast_forward_observed``
    The serial full stack with a complete
    :class:`~repro.obs.observer.CampaignObserver` attached; its span
    metrics go to ``benchmarks/out/metrics.json`` and the overhead is
    reported relative to the unobserved ``fast_forward`` pass.
``fast_forward_dashboard``
    The observed pass with a live
    :class:`~repro.obs.dash.DashboardSink` additionally teeing every
    event into the dashboard state reducer (``dashboard_overhead``,
    relative to the unobserved ``fast_forward`` pass; expected within
    the observer-overhead envelope).

Systems
-------
The ``--system`` axis picks the workload.  ``arrestment`` (the paper's
plant) exercises the strategies above, then times the adaptive
confidence-driven campaign of :mod:`repro.adaptive` against the
exhaustive grid on a 16-bit variant of the same plant (after asserting
every sampled outcome is byte-identical to the exhaustive one at the
same grid coordinates), reporting ``adaptive_speedup`` (CI-gated
>= 1.0x) and ``trials_saved_fraction`` (target >= 30%).  ``generated`` runs a hand-built
feedback-heavy XOR-mask system from :mod:`repro.verify.generators` —
every module vectorizable, injected errors persisting to the end of the
run — and times the ``fast_forward`` strategy under both simulation
backends, reporting the ``batched`` lane kernel's speedup over the
reference runtime (section ``batched``, key ``batched_speedup``;
CI-gated to never regress below 1.0x, targeting >= 10x).  The
generated axis also times a ``static_prune`` pass on a prunable
variant of the chain (three arc rows proven zero by the flow analysis
of :mod:`repro.flow`): after asserting the pruned campaign's estimate
is byte-identical to the unpruned one, it reports
``pruned_arc_fraction`` and ``prune_speedup`` (CI-gated >= 1.0x —
pruning must never cost more than it saves).  The generated axis
finally times the content-addressed result store of :mod:`repro.store`
(``docs/INCREMENTAL.md``): a cold campaign writing a fresh store vs. a
warm campaign recomposing every row from cache without executing a
single injection run — after asserting the warm pass executes zero
runs and reproduces the estimate matrix byte-identically — reported as
``incremental_speedup`` (CI-gated >= 1.0x).  ``both`` (the default)
runs the two workloads back to back into one report.

Methodology: before any stopwatch starts, one untimed pass per
strategy asserts every strategy is outcome-identical to ``naive`` —
a diverging strategy aborts immediately rather than after minutes of
meaningless timed trials.  Then every strategy gets one untimed warmup
execution and the best (minimum) wall-clock of three timed executions
is reported — single-trial cold numbers swing with allocator/page-cache
state, which is how a negative "overhead" once shipped in this report.
The campaign RNG seed defaults to ``$REPRO_BENCH_SEED`` (2001 when
unset) and can be overridden with ``--seed``.

Scales
------
``smoke``
    1 workload, 2 s runs, 3 injection times, 4 bit positions
    (156 IRs) — seconds per trial; runs in CI on every PR.
``quick``
    1 workload, 8 s runs, the paper's 10 instants, 4 bit positions
    (520 IRs) — about a minute per strategy.
``table1``
    2 workloads, 8 s runs, the paper's full 16 x 10 grid
    (4 160 IRs) — the real Table 1 campaign shape.

Run directly::

    PYTHONPATH=src python benchmarks/bench_campaign_speedup.py --scale smoke

or via the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from pathlib import Path

from repro.arrestment import build_arrestment_model, build_arrestment_run
from repro.arrestment.testcases import ArrestmentTestCase
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.selection import paper_times
from repro.obs import CampaignObserver

OUT_DIR = Path(__file__).parent / "out"
REPO_ROOT = Path(__file__).resolve().parent.parent

SCALES: dict[str, dict] = {
    "smoke": dict(
        cases=1, duration_ms=2000, times=(500, 1000, 1500), bits=4
    ),
    "quick": dict(cases=1, duration_ms=8000, times=paper_times(), bits=4),
    "table1": dict(cases=2, duration_ms=8000, times=paper_times(), bits=16),
}


DEFAULT_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2001"))


def build_campaign(
    scale: dict,
    reuse: bool,
    fast_forward: bool,
    seed: int = DEFAULT_SEED,
    observer: CampaignObserver | None = None,
) -> InjectionCampaign:
    cases = {
        f"case{i:02d}": ArrestmentTestCase(14000.0 - 2000.0 * i, 60.0 - 5.0 * i)
        for i in range(scale["cases"])
    }
    config = CampaignConfig(
        duration_ms=scale["duration_ms"],
        injection_times_ms=tuple(scale["times"]),
        error_models=tuple(bit_flip_models(scale["bits"])),
        seed=seed,
        reuse_golden_prefix=reuse,
        fast_forward=fast_forward,
    )
    return InjectionCampaign(
        build_arrestment_model(), build_arrestment_run, cases, config,
        observer=observer,
    )


#: Bit positions flipped on the adaptive workload — a 48-deep grid per
#: target (16 bits x 3 instants at smoke scale), deep enough for the
#: sequential controller to retire deterministic arcs long before the
#: grid is exhausted.
ADAPTIVE_BITS = 16

#: Wilson half-width at which the adaptive benchmark retires a target.
#: 0.1 needs ~16 trials on a deterministic (p in {0, 1}) arc, so a
#: 48-deep grid saves about two thirds of its runs there.
ADAPTIVE_CI_WIDTH = 0.1


def build_adaptive_campaign(
    scale: dict, adaptive: bool, seed: int = DEFAULT_SEED
) -> InjectionCampaign:
    cases = {
        f"case{i:02d}": ArrestmentTestCase(14000.0 - 2000.0 * i, 60.0 - 5.0 * i)
        for i in range(scale["cases"])
    }
    config = CampaignConfig(
        duration_ms=scale["duration_ms"],
        injection_times_ms=tuple(scale["times"]),
        error_models=tuple(bit_flip_models(ADAPTIVE_BITS)),
        seed=seed,
        reuse_golden_prefix=True,
        fast_forward=True,
        adaptive=adaptive,
        ci_width=ADAPTIVE_CI_WIDTH if adaptive else None,
    )
    return InjectionCampaign(
        build_arrestment_model(), build_arrestment_run, cases, config
    )


#: Bit positions flipped on the generated workload — the full 16-bit
#: signal width, so every (target, instant) group fills a wide batch.
GENERATED_BITS = 16

#: Modules in the generated benchmark chain.
GENERATED_CHAIN = 5


def build_generated_system():
    """A feedback-heavy, fully vectorizable XOR-mask system.

    A chain of :data:`GENERATED_CHAIN` modules, each XOR-ing the
    previous stage with its own output (full-width masks).  The
    self-loops make every injected bit-flip persist to the end of the
    run, so reconvergence fast-forward never triggers and the benchmark
    isolates raw stepping throughput — the regime the batched lane
    kernel is built for.
    """
    from repro.verify.generators import (
        GeneratedModule,
        GeneratedSystem,
        GeneratedSystemSpec,
    )

    full = (1 << GENERATED_BITS) - 1
    widths = {"x_in": GENERATED_BITS}
    modules = []
    previous = "x_in"
    for index in range(GENERATED_CHAIN):
        out = f"s{index}"
        widths[out] = GENERATED_BITS
        modules.append(
            GeneratedModule(
                name=f"M{index}",
                inputs=(previous, out),
                outputs=(out,),
                masks={previous: {out: full}, out: {out: full}},
            )
        )
        previous = out
    spec = GeneratedSystemSpec(
        name="bench-feedback-chain",
        seed=0,
        n_slots=GENERATED_CHAIN,
        env_seed=1234,
        widths=widths,
        system_inputs=("x_in",),
        system_outputs=(previous,),
        modules=tuple(modules),
    )
    return GeneratedSystem(spec)


def build_generated_campaign(
    scale: dict,
    backend: str,
    seed: int = DEFAULT_SEED,
    store: str | None = None,
) -> InjectionCampaign:
    generated = build_generated_system()
    config = CampaignConfig(
        duration_ms=scale["duration_ms"],
        injection_times_ms=tuple(scale["times"]),
        error_models=tuple(bit_flip_models(GENERATED_BITS)),
        seed=seed,
        reuse_golden_prefix=True,
        fast_forward=True,
        backend=backend,
        store=store,
    )
    return InjectionCampaign(
        generated.system, generated.run_factory, ["w0"], config
    )


def build_prunable_system():
    """The benchmark chain plus a tap module with all-dead arc rows.

    ``MT`` consumes the first three chain signals through all-zero
    transfer masks, so the static flow analysis proves its three input
    rows zero-permeability — the workload the ``static_prune``
    benchmark pass measures.
    """
    from repro.verify.generators import (
        GeneratedModule,
        GeneratedSystem,
        GeneratedSystemSpec,
    )

    base = build_generated_system().spec
    widths = dict(base.widths)
    widths["t0"] = GENERATED_BITS
    tap_inputs = ("x_in", "s0", "s1")
    tap = GeneratedModule(
        name="MT",
        inputs=tap_inputs,
        outputs=("t0",),
        masks={i: {"t0": 0} for i in tap_inputs},
    )
    spec = GeneratedSystemSpec(
        name="bench-prunable-chain",
        seed=base.seed,
        n_slots=base.n_slots,
        env_seed=base.env_seed,
        widths=widths,
        system_inputs=base.system_inputs,
        system_outputs=(*base.system_outputs, "t0"),
        modules=(*base.modules, tap),
    )
    return GeneratedSystem(spec)


def build_prunable_campaign(
    scale: dict, static_prune: bool, seed: int = DEFAULT_SEED
) -> InjectionCampaign:
    # Reconvergence fast-forward stays off here: a statically-dead run
    # reconverges on its first frame, so fast-forward already makes it
    # nearly free dynamically and the pass would only measure timer
    # noise.  With prefix reuse alone, the dead runs carry their full
    # injection-to-end cost and the pass isolates what pruning removes.
    generated = build_prunable_system()
    config = CampaignConfig(
        duration_ms=scale["duration_ms"],
        injection_times_ms=tuple(scale["times"]),
        error_models=tuple(bit_flip_models(GENERATED_BITS)),
        seed=seed,
        reuse_golden_prefix=True,
        fast_forward=False,
        static_prune=static_prune,
    )
    return InjectionCampaign(
        generated.system, generated.run_factory, ["w0"], config
    )


def fingerprint(result):
    """Strategy-independent summary of a campaign result's outcomes."""
    return [
        (o.case_id, o.module, o.input_signal, o.scheduled_time_ms,
         o.error_model, o.fired_at_ms, o.comparison.first_divergence_ms)
        for o in result
    ]


def verify_strategies(scale: dict, seed: int, workers: int) -> None:
    """Assert every strategy is outcome-identical to naive, before timing.

    Correctness gates must not share a code path with the stopwatch: a
    diverging strategy should abort the benchmark immediately, not after
    minutes of timed trials whose numbers would be meaningless anyway.
    """
    reference = fingerprint(
        build_campaign(scale, reuse=False, fast_forward=False, seed=seed)
        .execute()
    )
    observer = CampaignObserver.to_files(
        events_path=None, with_metrics=True, system=build_arrestment_model()
    )
    try:
        candidates = {
            "checkpointed": build_campaign(
                scale, reuse=True, fast_forward=False, seed=seed
            ).execute(),
            "fast_forward": build_campaign(
                scale, reuse=True, fast_forward=True, seed=seed
            ).execute(),
            "grid_sharded": build_campaign(
                scale, reuse=True, fast_forward=True, seed=seed
            ).execute_parallel(max_workers=workers),
            "fast_forward_observed": build_campaign(
                scale, reuse=True, fast_forward=True, seed=seed,
                observer=observer,
            ).execute(),
        }
    finally:
        observer.close()
    for label, result in candidates.items():
        assert fingerprint(result) == reference, \
            f"{label} path diverged from the naive path"
    print(f"  strategy identity verified ({len(reference)} IRs, "
          f"seed {seed})")


def verify_backends(scale: dict, seed: int) -> None:
    """Assert the batched backend is outcome-identical to reference."""
    reference = fingerprint(
        build_generated_campaign(scale, "reference", seed=seed).execute()
    )
    batched = fingerprint(
        build_generated_campaign(scale, "batched", seed=seed).execute()
    )
    assert batched == reference, \
        "batched backend diverged from the reference backend"
    print(f"  backend identity verified ({len(reference)} IRs, seed {seed})")


def timed(label: str, make_run, warmup: int, trials: int):
    """Best-of-``trials`` wall clock after ``warmup`` untimed executions.

    ``make_run`` builds a fresh zero-arg campaign execution per call, so
    no trial inherits the previous one's warmed runtime objects.
    Returns the last trial's result and the best elapsed seconds.
    """
    for _ in range(warmup):
        make_run()()
    best = math.inf
    result = None
    for _ in range(trials):
        run = make_run()
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    print(f"  {label}: {best:.2f}s best of {trials} ({len(result)} runs, "
          f"{len(result) / best:.1f} runs/s)")
    return result, best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=os.environ.get("REPRO_BENCH_SCALE", "smoke"),
        help="campaign size (default: $REPRO_BENCH_SCALE or smoke)",
    )
    parser.add_argument(
        "--system",
        choices=("arrestment", "generated", "both"),
        default=os.environ.get("REPRO_BENCH_SYSTEM", "both"),
        help="workload: the paper's plant (execution strategies), the "
        "vectorizable generated chain (simulation backends), or both "
        "(default: $REPRO_BENCH_SYSTEM or both)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker processes for the grid-sharded path",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="campaign RNG seed (default: $REPRO_BENCH_SEED or 2001)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=3,
        help="timed executions per strategy (the minimum is reported)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        help="untimed executions per strategy before the trials",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=OUT_DIR / "BENCH_campaign.json",
        help="output JSON path",
    )
    parser.add_argument(
        "--publish",
        type=Path,
        default=REPO_ROOT / "BENCH_campaign.json",
        help="second copy of the report at the repo root",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=OUT_DIR / "metrics.json",
        help="observer metrics dump from the observed fast-forward pass",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]

    report = {
        "scale": args.scale,
        "seed": args.seed,
        "system": args.system,
        "methodology": {
            "warmup_runs": args.warmup,
            "timed_trials": args.trials,
            "statistic": "min",
        },
    }
    failed = False
    metrics_observer = None
    if args.system in ("arrestment", "both"):
        failed, metrics_observer = _bench_arrestment(args, scale, report)
    if args.system in ("generated", "both"):
        failed = _bench_generated(args, scale, report) or failed

    payload = json.dumps(report, indent=2) + "\n"
    for path in (args.out, args.publish):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload, encoding="utf-8")
        print(f"wrote {path}")
    if metrics_observer is not None:
        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        metrics_observer.metrics.dump_json(args.metrics_out)
        print(f"wrote {args.metrics_out}")
    return 1 if failed else 0


def _bench_arrestment(args, scale: dict, report: dict):
    reference = build_campaign(
        scale, reuse=True, fast_forward=True, seed=args.seed
    )
    total_runs = reference.total_runs()
    total_ms = reference.simulated_ms_total()
    skipped_ms = reference.simulated_ms_skipped()
    print(
        f"[{args.scale}/arrestment] {total_runs} IRs x "
        f"{scale['duration_ms']} ms; "
        f"prefix reuse skips {skipped_ms}/{total_ms} simulated ms "
        f"({skipped_ms / total_ms:.0%}); warmup={args.warmup} "
        f"trials={args.trials} seed={args.seed}"
    )

    verify_strategies(scale, args.seed, args.workers)

    _, naive_s = timed(
        "naive serial        ",
        lambda: build_campaign(
            scale, reuse=False, fast_forward=False, seed=args.seed
        ).execute,
        args.warmup, args.trials,
    )
    _, ckpt_s = timed(
        "checkpointed        ",
        lambda: build_campaign(
            scale, reuse=True, fast_forward=False, seed=args.seed
        ).execute,
        args.warmup, args.trials,
    )
    ff_result, ff_s = timed(
        "fast-forward        ",
        lambda: build_campaign(
            scale, reuse=True, fast_forward=True, seed=args.seed
        ).execute,
        args.warmup, args.trials,
    )
    def make_sharded():
        campaign = build_campaign(
            scale, reuse=True, fast_forward=True, seed=args.seed
        )
        return lambda: campaign.execute_parallel(max_workers=args.workers)

    _, sharded_s = timed(
        f"grid-sharded (x{args.workers})   ",
        make_sharded, args.warmup, args.trials,
    )

    observers: list[CampaignObserver] = []

    def make_observed():
        observer = CampaignObserver.to_files(
            events_path=None, with_metrics=True, system=build_arrestment_model()
        )
        observers.append(observer)
        return build_campaign(
            scale, reuse=True, fast_forward=True, seed=args.seed,
            observer=observer,
        ).execute

    _, observed_s = timed(
        "fast-forward+obs    ", make_observed, args.warmup, args.trials,
    )
    metrics_observer = observers[-1]
    for observer in observers:
        observer.close()

    def make_dashboard():
        from repro.obs.dash import DashboardSink

        observer = CampaignObserver.to_files(
            events_path=None, with_metrics=True,
            system=build_arrestment_model(),
            extra_sinks=[DashboardSink()],
        )
        dash_observers.append(observer)
        return build_campaign(
            scale, reuse=True, fast_forward=True, seed=args.seed,
            observer=observer,
        ).execute

    dash_observers: list[CampaignObserver] = []
    _, dashboard_s = timed(
        "fast-forward+dash   ", make_dashboard, args.warmup, args.trials,
    )
    for observer in dash_observers:
        observer.close()

    prefix_speedup = naive_s / ckpt_s
    ff_speedup = ckpt_s / ff_s
    sharded_speedup = naive_s / sharded_s
    observer_overhead = observed_s / ff_s - 1.0
    dashboard_overhead = dashboard_s / ff_s - 1.0
    reconverged_fraction = ff_result.reconverged_fraction()
    frames_ff = ff_result.frames_fast_forwarded_total()
    print(f"  prefix-reuse speedup: {prefix_speedup:.2f}x, "
          f"fast-forward speedup: {ff_speedup:.2f}x "
          f"({reconverged_fraction:.0%} of IRs reconverged, "
          f"{frames_ff} frames spliced), "
          f"grid-sharded speedup: {sharded_speedup:.2f}x, "
          f"observer overhead: {observer_overhead:+.1%}, "
          f"dashboard overhead: {dashboard_overhead:+.1%}")

    report.update({
        "config": {
            "cases": scale["cases"],
            "duration_ms": scale["duration_ms"],
            "injection_times_ms": list(scale["times"]),
            "bit_positions": scale["bits"],
            "targets": len(reference.targets),
        },
        "total_runs": total_runs,
        "simulated_ms_total": total_ms,
        "simulated_ms_skipped": skipped_ms,
        "skipped_fraction": skipped_ms / total_ms,
        "workers": args.workers,
        "naive": {"seconds": naive_s, "runs_per_sec": total_runs / naive_s},
        "checkpointed": {
            "seconds": ckpt_s,
            "runs_per_sec": total_runs / ckpt_s,
        },
        "fast_forward": {
            "seconds": ff_s,
            "runs_per_sec": total_runs / ff_s,
            "reconverged_fraction": reconverged_fraction,
            "frames_fast_forwarded": frames_ff,
        },
        "grid_sharded": {
            "seconds": sharded_s,
            "runs_per_sec": total_runs / sharded_s,
        },
        "fast_forward_observed": {
            "seconds": observed_s,
            "runs_per_sec": total_runs / observed_s,
        },
        "fast_forward_dashboard": {
            "seconds": dashboard_s,
            "runs_per_sec": total_runs / dashboard_s,
        },
        "prefix_reuse_speedup": prefix_speedup,
        "fast_forward_speedup": ff_speedup,
        "grid_sharded_speedup": sharded_speedup,
        "observer_overhead": observer_overhead,
        "dashboard_overhead": dashboard_overhead,
    })

    failed = False
    if prefix_speedup < 1.25:
        print(f"WARNING: prefix-reuse speedup {prefix_speedup:.2f}x "
              "below the 1.25x target")
        failed = True
    if ff_speedup < 1.3:
        print(f"WARNING: fast-forward speedup {ff_speedup:.2f}x "
              "below the 1.3x target")
        # Hard floor: fast-forward must never make the campaign slower.
        failed = failed or ff_speedup < 1.0
    return _bench_adaptive(args, scale, report) or failed, metrics_observer


def _bench_adaptive(args, scale: dict, report: dict) -> bool:
    """Sequential stopping vs. the exhaustive grid on the same targets.

    Correctness gates run before any stopwatch: every outcome the
    adaptive controller samples must be byte-identical to the
    exhaustive campaign's at the same grid coordinates, and the
    adaptive estimate matrix must still cover every arc.
    """
    exhaustive_runs = build_adaptive_campaign(
        scale, adaptive=False, seed=args.seed
    ).total_runs()
    print(
        f"[{args.scale}/adaptive] {exhaustive_runs} IR grid, "
        f"ci_width={ADAPTIVE_CI_WIDTH}; warmup={args.warmup} "
        f"trials={args.trials} seed={args.seed}"
    )

    exhaustive_result = build_adaptive_campaign(
        scale, adaptive=False, seed=args.seed
    ).execute()
    adaptive_result = build_adaptive_campaign(
        scale, adaptive=True, seed=args.seed
    ).execute()
    by_coord = {
        (o.case_id, o.module, o.input_signal, o.scheduled_time_ms,
         o.error_model): o.to_jsonable()
        for o in exhaustive_result
    }
    for o in adaptive_result:
        coord = (o.case_id, o.module, o.input_signal, o.scheduled_time_ms,
                 o.error_model)
        assert by_coord.get(coord) == o.to_jsonable(), \
            f"adaptive outcome at {coord} diverged from the exhaustive grid"
    from repro.injection.estimator import estimate_matrix

    estimate_matrix(adaptive_result, require_complete=True)
    rows = adaptive_result.adaptive_rows()
    n_trials = adaptive_result.n_adaptive_trials()
    trials_saved_fraction = adaptive_result.n_adaptive_trials_saved() / (
        exhaustive_runs
    )
    n_confidence = sum(1 for row in rows if row.reason == "confidence")
    print(f"  adaptive parity verified: {len(rows)} target(s) retired "
          f"({n_confidence} by confidence), {n_trials}/{exhaustive_runs} "
          f"trials executed ({trials_saved_fraction:.0%} saved)")

    _, exhaustive_s = timed(
        "exhaustive grid     ",
        lambda: build_adaptive_campaign(
            scale, adaptive=False, seed=args.seed
        ).execute,
        args.warmup, args.trials,
    )
    _, adaptive_s = timed(
        "adaptive stopping   ",
        lambda: build_adaptive_campaign(
            scale, adaptive=True, seed=args.seed
        ).execute,
        args.warmup, args.trials,
    )

    adaptive_speedup = exhaustive_s / adaptive_s
    print(f"  adaptive-stopping speedup: {adaptive_speedup:.2f}x "
          f"({trials_saved_fraction:.0%} of the grid never executed)")

    report.update({
        "adaptive": {
            "seconds": adaptive_s,
            "exhaustive_seconds": exhaustive_s,
            "ci_width": ADAPTIVE_CI_WIDTH,
            "grid_runs": exhaustive_runs,
            "trials_executed": n_trials,
            "targets_retired": len(rows),
            "retired_by_confidence": n_confidence,
        },
        "trials_saved_fraction": trials_saved_fraction,
        "adaptive_speedup": adaptive_speedup,
    })

    failed = False
    # Hard floor: stopping early must never cost more than it saves.
    if adaptive_speedup < 1.0:
        print(f"WARNING: adaptive-stopping speedup {adaptive_speedup:.2f}x "
              "below the 1.0x floor")
        failed = True
    if trials_saved_fraction < 0.30:
        print(f"WARNING: adaptive stopping saved only "
              f"{trials_saved_fraction:.0%} of the grid, below the 30% "
              "target")
        failed = True
    return failed


def _bench_generated(args, scale: dict, report: dict) -> bool:
    reference = build_generated_campaign(scale, "reference", seed=args.seed)
    total_runs = reference.total_runs()
    print(
        f"[{args.scale}/generated] {total_runs} IRs x "
        f"{scale['duration_ms']} ms; {GENERATED_CHAIN}-module feedback "
        f"chain, {GENERATED_BITS} bit positions; warmup={args.warmup} "
        f"trials={args.trials} seed={args.seed}"
    )

    verify_backends(scale, args.seed)

    ff_result, ff_s = timed(
        "gen fast-forward    ",
        lambda: build_generated_campaign(
            scale, "reference", seed=args.seed
        ).execute,
        args.warmup, args.trials,
    )
    _, batched_s = timed(
        "gen batched         ",
        lambda: build_generated_campaign(
            scale, "batched", seed=args.seed
        ).execute,
        args.warmup, args.trials,
    )

    batched_speedup = ff_s / batched_s
    print(f"  batched-kernel speedup over fast-forward: "
          f"{batched_speedup:.2f}x "
          f"({ff_result.reconverged_fraction():.0%} of IRs reconverged "
          "under the reference strategy)")

    report.update({
        "generated_config": {
            "modules": GENERATED_CHAIN,
            "duration_ms": scale["duration_ms"],
            "injection_times_ms": list(scale["times"]),
            "bit_positions": GENERATED_BITS,
            "targets": len(reference.targets),
            "total_runs": total_runs,
        },
        "generated_fast_forward": {
            "seconds": ff_s,
            "runs_per_sec": total_runs / ff_s,
            "reconverged_fraction": ff_result.reconverged_fraction(),
        },
        "batched": {
            "seconds": batched_s,
            "runs_per_sec": total_runs / batched_s,
            "speedup_vs_fast_forward": batched_speedup,
        },
        "batched_speedup": batched_speedup,
    })

    failed = False
    if batched_speedup < 10.0:
        print(f"WARNING: batched-kernel speedup {batched_speedup:.2f}x "
              "below the 10x target")
    # Hard floor: the lane kernel must never lose to scalar stepping
    # on its home workload.
    failed = batched_speedup < 1.0
    failed = _bench_static_prune(args, scale, report) or failed
    return _bench_incremental(args, scale, report) or failed


def _bench_static_prune(args, scale: dict, report: dict) -> bool:
    from repro.injection.estimator import estimate_matrix

    reference = build_prunable_campaign(scale, static_prune=False,
                                        seed=args.seed)
    total_runs = reference.total_runs()
    print(
        f"[{args.scale}/static-prune] {total_runs} IRs on the prunable "
        f"chain; warmup={args.warmup} trials={args.trials} seed={args.seed}"
    )

    # Correctness gate before any stopwatch: the pruned campaign's
    # estimate must be byte-identical to the unpruned one.
    baseline_result = build_prunable_campaign(
        scale, static_prune=False, seed=args.seed
    ).execute()
    pruned_result = build_prunable_campaign(
        scale, static_prune=True, seed=args.seed
    ).execute()
    assert (
        estimate_matrix(pruned_result).to_jsonable()
        == estimate_matrix(baseline_result).to_jsonable()
    ), "static_prune changed the estimated matrix"
    n_pruned_runs = pruned_result.n_pruned_runs()
    pruned_pairs = sum(
        len(pruned_result.system.module(module).outputs)
        for module, _ in pruned_result.pruned_targets()
    )
    total_pairs = sum(1 for _ in pruned_result.system.pair_index())
    pruned_arc_fraction = pruned_pairs / total_pairs
    print(f"  prune parity verified: {len(pruned_result.pruned_targets())} "
          f"target(s), {n_pruned_runs}/{total_runs} runs pruned, "
          f"{pruned_arc_fraction:.0%} of arcs proven zero")

    _, base_s = timed(
        "prune off           ",
        lambda: build_prunable_campaign(
            scale, static_prune=False, seed=args.seed
        ).execute,
        args.warmup, args.trials,
    )
    _, pruned_s = timed(
        "prune on            ",
        lambda: build_prunable_campaign(
            scale, static_prune=True, seed=args.seed
        ).execute,
        args.warmup, args.trials,
    )

    prune_speedup = base_s / pruned_s
    print(f"  static-prune speedup: {prune_speedup:.2f}x "
          f"({n_pruned_runs} of {total_runs} runs skipped)")

    report.update({
        "static_prune": {
            "seconds": pruned_s,
            "baseline_seconds": base_s,
            "total_runs": total_runs,
            "pruned_runs": n_pruned_runs,
            "pruned_targets": len(pruned_result.pruned_targets()),
        },
        "pruned_arc_fraction": pruned_arc_fraction,
        "prune_speedup": prune_speedup,
    })

    # Hard floor: pruning must never cost more than it saves.
    if prune_speedup < 1.0:
        print(f"WARNING: static-prune speedup {prune_speedup:.2f}x "
              "below the 1.0x floor")
        return True
    return False


def _bench_incremental(args, scale: dict, report: dict) -> bool:
    """Warm-cache pass: a fully cached campaign vs. a cold one.

    Cold trials execute into a *fresh* result store each time (the
    write-path overhead is part of the cold cost); warm trials replay
    against one prepared store.  Correctness gates run before any
    stopwatch: the warm pass must execute zero injection runs and
    recompose a byte-identical estimate matrix.
    """
    import shutil
    import tempfile

    from repro.injection.estimator import estimate_matrix

    total_runs = build_generated_campaign(scale, "reference",
                                          seed=args.seed).total_runs()
    print(
        f"[{args.scale}/incremental] {total_runs} IRs on the benchmark "
        f"chain; warmup={args.warmup} trials={args.trials} seed={args.seed}"
    )

    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
    cold_dirs: list[str] = []
    try:
        cold_campaign = build_generated_campaign(
            scale, "reference", seed=args.seed, store=store_dir
        )
        cold_result = cold_campaign.execute()
        cold_stats = cold_campaign.last_store_stats
        assert cold_stats.misses and not cold_stats.hits, \
            "cold pass unexpectedly hit the fresh store"
        warm_campaign = build_generated_campaign(
            scale, "reference", seed=args.seed, store=store_dir
        )
        warm_result = warm_campaign.execute()
        warm_stats = warm_campaign.last_store_stats
        assert warm_stats.runs_executed == 0 and warm_stats.misses == 0, \
            f"warm pass executed work: {warm_stats.to_jsonable()}"
        assert (
            estimate_matrix(warm_result).to_jsonable()
            == estimate_matrix(cold_result).to_jsonable()
        ), "warm cache replay changed the estimated matrix"
        print(f"  incremental parity verified: warm pass reused "
              f"{warm_stats.runs_reused}/{total_runs} runs, executed 0")

        def make_cold():
            fresh = tempfile.mkdtemp(prefix="repro-bench-store-")
            cold_dirs.append(fresh)
            return build_generated_campaign(
                scale, "reference", seed=args.seed, store=fresh
            ).execute

        _, cold_s = timed(
            "store cold          ", make_cold, args.warmup, args.trials,
        )
        _, warm_s = timed(
            "store warm          ",
            lambda: build_generated_campaign(
                scale, "reference", seed=args.seed, store=store_dir
            ).execute,
            args.warmup, args.trials,
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
        for path in cold_dirs:
            shutil.rmtree(path, ignore_errors=True)

    incremental_speedup = cold_s / warm_s
    print(f"  incremental warm-cache speedup: {incremental_speedup:.2f}x "
          f"({total_runs} runs recomposed without simulation)")

    report.update({
        "incremental": {
            "seconds": warm_s,
            "cold_seconds": cold_s,
            "total_runs": total_runs,
            "runs_reused": warm_stats.runs_reused,
            "runs_per_sec": total_runs / warm_s,
        },
        "incremental_speedup": incremental_speedup,
    })

    # Hard floor: replaying a fully cached campaign must never be
    # slower than simulating it.
    if incremental_speedup < 1.0:
        print(f"WARNING: incremental warm-cache speedup "
              f"{incremental_speedup:.2f}x below the 1.0x floor")
        return True
    return False


if __name__ == "__main__":
    raise SystemExit(main())
