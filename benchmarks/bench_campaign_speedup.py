"""Campaign wall-clock: naive vs. checkpointed vs. grid-sharded.

Measures the three execution paths of :class:`InjectionCampaign` on the
arrestment Table 1 campaign and emits ``BENCH_campaign.json`` (at the
repo root and under ``benchmarks/out/``) with runs/sec, the simulated
milliseconds prefix reuse skipped, and the speedups over the naive
path — the perf trajectory of the campaign engine.

A fourth pass re-runs the checkpointed path with a full
:class:`~repro.obs.observer.CampaignObserver` attached, dumping its
span metrics to ``benchmarks/out/metrics.json`` and reporting the
observer overhead relative to the unobserved checkpointed run.

Scales
------
``smoke``
    1 workload, 2 s runs, 3 injection times, 4 bit positions
    (156 IRs) — seconds; runs in CI on every PR.
``quick``
    1 workload, 8 s runs, the paper's 10 instants, 4 bit positions
    (520 IRs) — about a minute per path.
``table1``
    2 workloads, 8 s runs, the paper's full 16 x 10 grid
    (4 160 IRs) — the real Table 1 campaign shape.

Run directly::

    PYTHONPATH=src python benchmarks/bench_campaign_speedup.py --scale smoke

or via the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.arrestment import build_arrestment_model, build_arrestment_run
from repro.arrestment.testcases import ArrestmentTestCase
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.selection import paper_times
from repro.obs import CampaignObserver

OUT_DIR = Path(__file__).parent / "out"
REPO_ROOT = Path(__file__).resolve().parent.parent

SCALES: dict[str, dict] = {
    "smoke": dict(
        cases=1, duration_ms=2000, times=(500, 1000, 1500), bits=4
    ),
    "quick": dict(cases=1, duration_ms=8000, times=paper_times(), bits=4),
    "table1": dict(cases=2, duration_ms=8000, times=paper_times(), bits=16),
}


def build_campaign(
    scale: dict, reuse: bool, observer: CampaignObserver | None = None
) -> InjectionCampaign:
    cases = {
        f"case{i:02d}": ArrestmentTestCase(14000.0 - 2000.0 * i, 60.0 - 5.0 * i)
        for i in range(scale["cases"])
    }
    config = CampaignConfig(
        duration_ms=scale["duration_ms"],
        injection_times_ms=tuple(scale["times"]),
        error_models=tuple(bit_flip_models(scale["bits"])),
        seed=2001,
        reuse_golden_prefix=reuse,
    )
    return InjectionCampaign(
        build_arrestment_model(), build_arrestment_run, cases, config,
        observer=observer,
    )


def timed(label: str, fn):
    started = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - started
    print(f"  {label}: {elapsed:.2f}s ({len(result)} runs, "
          f"{len(result) / elapsed:.1f} runs/s)")
    return result, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=os.environ.get("REPRO_BENCH_SCALE", "smoke"),
        help="campaign size (default: $REPRO_BENCH_SCALE or smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker processes for the grid-sharded path",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=OUT_DIR / "BENCH_campaign.json",
        help="output JSON path",
    )
    parser.add_argument(
        "--publish",
        type=Path,
        default=REPO_ROOT / "BENCH_campaign.json",
        help="second copy of the report at the repo root",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=OUT_DIR / "metrics.json",
        help="observer metrics dump from the observed checkpointed pass",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]

    reference = build_campaign(scale, reuse=True)
    total_runs = reference.total_runs()
    total_ms = reference.simulated_ms_total()
    skipped_ms = reference.simulated_ms_skipped()
    print(
        f"[{args.scale}] {total_runs} IRs x {scale['duration_ms']} ms; "
        f"prefix reuse skips {skipped_ms}/{total_ms} simulated ms "
        f"({skipped_ms / total_ms:.0%})"
    )

    naive_result, naive_s = timed(
        "naive serial      ", build_campaign(scale, reuse=False).execute
    )
    ckpt_result, ckpt_s = timed(
        "checkpointed      ", build_campaign(scale, reuse=True).execute
    )
    sharded_campaign = build_campaign(scale, reuse=True)
    sharded_result, sharded_s = timed(
        f"grid-sharded (x{args.workers})",
        lambda: sharded_campaign.execute_parallel(max_workers=args.workers),
    )
    observer = CampaignObserver.to_files(
        events_path=None, with_metrics=True, system=build_arrestment_model()
    )
    observed_result, observed_s = timed(
        "checkpointed+obs  ", build_campaign(scale, reuse=True, observer=observer).execute
    )
    observer.close()

    def fingerprint(result):
        return [
            (o.case_id, o.module, o.input_signal, o.scheduled_time_ms,
             o.error_model, o.fired_at_ms, o.comparison.first_divergence_ms)
            for o in result
        ]

    assert fingerprint(ckpt_result) == fingerprint(naive_result), \
        "checkpointed path diverged from the naive path"
    assert fingerprint(sharded_result) == fingerprint(naive_result), \
        "grid-sharded path diverged from the naive path"
    assert fingerprint(observed_result) == fingerprint(naive_result), \
        "observed checkpointed path diverged from the naive path"

    prefix_speedup = naive_s / ckpt_s
    sharded_speedup = naive_s / sharded_s
    observer_overhead = observed_s / ckpt_s - 1.0
    print(f"  prefix-reuse speedup: {prefix_speedup:.2f}x, "
          f"grid-sharded speedup: {sharded_speedup:.2f}x, "
          f"observer overhead: {observer_overhead:+.1%}")

    report = {
        "scale": args.scale,
        "config": {
            "cases": scale["cases"],
            "duration_ms": scale["duration_ms"],
            "injection_times_ms": list(scale["times"]),
            "bit_positions": scale["bits"],
            "targets": len(reference.targets),
        },
        "total_runs": total_runs,
        "simulated_ms_total": total_ms,
        "simulated_ms_skipped": skipped_ms,
        "skipped_fraction": skipped_ms / total_ms,
        "workers": args.workers,
        "naive": {"seconds": naive_s, "runs_per_sec": total_runs / naive_s},
        "checkpointed": {
            "seconds": ckpt_s,
            "runs_per_sec": total_runs / ckpt_s,
        },
        "grid_sharded": {
            "seconds": sharded_s,
            "runs_per_sec": total_runs / sharded_s,
        },
        "checkpointed_observed": {
            "seconds": observed_s,
            "runs_per_sec": total_runs / observed_s,
        },
        "prefix_reuse_speedup": prefix_speedup,
        "grid_sharded_speedup": sharded_speedup,
        "observer_overhead": observer_overhead,
    }
    payload = json.dumps(report, indent=2) + "\n"
    for path in (args.out, args.publish):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload, encoding="utf-8")
        print(f"wrote {path}")
    args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
    observer.metrics.dump_json(args.metrics_out)
    print(f"wrote {args.metrics_out}")

    if prefix_speedup < 1.25:
        print(f"WARNING: prefix-reuse speedup {prefix_speedup:.2f}x "
              "below the 1.25x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
