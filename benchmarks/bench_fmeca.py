"""Extension: FMECA criticality matrix of the target system (§1).

"Error propagation analysis can also complement other analysis
activities, for instance FMECA."  This benchmark classifies every
injection of a dedicated campaign by its *physical consequence*
(overrun / overload / hang / degraded / tolerated) and builds the
criticality matrix per injection location — the design-stage artefact
the paper's introduction promises.

The run horizon is long enough for the Golden Run arrestment to
complete, so hang/overrun verdicts are meaningful.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_artifact
from repro.arrestment import build_arrestment_model, build_arrestment_run
from repro.arrestment.testcases import ArrestmentTestCase
from repro.injection.campaign import CampaignConfig
from repro.injection.error_models import BitFlip
from repro.injection.failure_modes import FailureMode, classify_campaign


@pytest.fixture(scope="module")
def criticality():
    # The heavy/fast workload has the tightest margins, so consequence
    # classes actually separate (a mid-mass case absorbs most errors).
    report, result = classify_campaign(
        build_arrestment_model(),
        build_arrestment_run,
        {"m20000-v80": ArrestmentTestCase(20000, 80)},
        CampaignConfig(
            duration_ms=14000,
            injection_times_ms=(1500, 4500),
            error_models=tuple(BitFlip(b) for b in (0, 4, 8, 12, 15)),
            seed=2001,
        ),
    )
    return report, result


def test_fmeca_criticality_matrix(benchmark, criticality):
    report, result = criticality
    ranked = benchmark(report.ranked)

    by_location = report.by_location()

    # The slot counter is the most critical location: its corruption
    # derails the entire schedule.
    assert by_location[("CLOCK", "ms_slot_nbr")].effect_fraction == 1.0

    # PRES_S's conditioned input never endangers the mission (OB3).
    assert by_location[("PRES_S", "ADC")].severe_fraction == 0.0

    # Criticality and propagation are correlated but not identical:
    # V_REG's inputs propagate every error (Table 1: ~1.0), yet the
    # closed loop recovers — no severe consequence.
    assert by_location[("V_REG", "SetValue")].effect_fraction > 0.9
    assert by_location[("V_REG", "SetValue")].severe_fraction == 0.0

    # The stop-handling flags are the genuinely critical locations: a
    # corrupted stopped word releases the brake pressure for good.
    assert ranked[0].severe_fraction > 0.4
    assert ranked[0].module == "CALC"
    assert by_location[("CALC", "stopped")].counts[FailureMode.OVERRUN] > 0

    write_artifact("fmeca_criticality.txt", report.render())
