"""Extension: sensitivity of the TOC2 reach mass to the pair estimates.

The paper's introduction motivates propagation analysis as a
resource-management tool ("where additional resources ... would be most
cost effective").  This benchmark computes the exact gradient of the
system output's propagation mass with respect to every pair
permeability, ranks the pairs by leverage, and projects the payoff of
hardening the top pair (a what-if ERM/wrapper analysis).
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.sensitivity import output_sensitivities, what_if


def test_sensitivity_and_what_if(benchmark, estimated_matrix):
    report = benchmark(output_sensitivities, estimated_matrix, "TOC2")

    ranked = report.ranked()
    by_pair = report.by_pair()

    # The corridor pair every path crosses carries top leverage (OB5
    # re-derived as a gradient statement).
    assert ranked[0].pair == ("PRES_A", "OutValue", "TOC2")
    assert by_pair[("PRES_A", "OutValue", "TOC2")].n_paths == 22
    leading = {item.pair for item in ranked[:6]}
    assert ("V_REG", "SetValue", "OutValue") in leading

    # The gradient also exposes *latent* risk: the measured-zero
    # DIST_S -> stopped pairs rank near the top because stopped is
    # fully permeable through CALC — DIST_S's blocking of that column
    # (OB2) is load-bearing, and any regression there would open a
    # high-mass propagation route.
    stopped_entry = by_pair[("DIST_S", "PACNT", "stopped")]
    assert stopped_entry.permeability == 0.0
    assert stopped_entry.gradient > 0.5

    # What-if: an ERM halving CALC's i -> SetValue permeability.
    pair = ("CALC", "i", "SetValue")
    before, after, _ = what_if(
        estimated_matrix, {pair: estimated_matrix.get(*pair) / 2}, "TOC2"
    )
    assert after < before
    # Multilinearity: the gradient predicts the change exactly.
    predicted = -by_pair[pair].gradient * estimated_matrix.get(*pair) / 2
    assert after - before == pytest_approx(predicted)

    lines = [
        report.render(top=15),
        "",
        f"What-if: halving P{pair} lowers the TOC2 reach mass from "
        f"{before:.4f} to {after:.4f}.",
        "",
        "Note the high-gradient zero-permeability DIST_S -> stopped "
        "pairs: the analysis flags OB2's blocking behaviour as "
        "load-bearing — a regression there would open a high-mass "
        "propagation route through CALC's stop handling.",
    ]
    write_artifact("sensitivity.txt", "\n".join(lines))


def pytest_approx(value: float):
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-12)
