"""Shared fixtures for the benchmark suite.

Every table and figure of the paper has a dedicated ``bench_*`` module.
The expensive part — the injection campaign against the arrestment
system — runs once per session and is shared; the benchmarks time the
*analysis* stages and write the regenerated tables/figures to
``benchmarks/out/`` for comparison with the paper (see EXPERIMENTS.md).

Campaign scale is selected with the ``REPRO_BENCH_SCALE`` environment
variable:

* ``quick`` (default) — 2 workloads x 2 injection times x 16 bits,
  832 injection runs, about a minute;
* ``medium`` — 3 workloads x 3 times, 1 872 runs;
* ``paper`` — the full Section 7.3 grid: 25 workloads x 10 times x
  16 bits = 4 000 injections per signal (52 000 runs; hours).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.arrestment import build_arrestment_model, build_arrestment_run
from repro.arrestment.testcases import paper_test_cases, reduced_test_cases
from repro.core.analysis import PropagationAnalysis
from repro.core.permeability import PermeabilityMatrix
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.estimator import estimate_matrix
from repro.injection.selection import paper_times
from repro.model.examples import build_fig2_system, fig2_permeabilities

OUT_DIR = pathlib.Path(__file__).parent / "out"

_SCALES = {
    "quick": dict(times=(1000, 3000), n_cases=2, duration_ms=6000),
    "medium": dict(times=(800, 2200, 3600), n_cases=3, duration_ms=6000),
    "paper": dict(times=paper_times(), n_cases=25, duration_ms=6500),
}


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in _SCALES:
        raise RuntimeError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {scale!r}"
        )
    return scale


def write_artifact(name: str, text: str) -> pathlib.Path:
    """Store a regenerated table/figure under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def arrestment_system():
    return build_arrestment_model()


@pytest.fixture(scope="session")
def campaign_result(arrestment_system):
    """The session-wide injection campaign (scale via REPRO_BENCH_SCALE)."""
    params = _SCALES[bench_scale()]
    cases = (
        paper_test_cases()
        if params["n_cases"] == 25
        else reduced_test_cases(params["n_cases"])
    )
    config = CampaignConfig(
        duration_ms=params["duration_ms"],
        injection_times_ms=tuple(params["times"]),
        error_models=tuple(bit_flip_models(16)),
        seed=2001,
    )
    campaign = InjectionCampaign(
        arrestment_system, lambda case: build_arrestment_run(case), cases, config
    )
    return campaign.execute()


@pytest.fixture(scope="session")
def estimated_matrix(campaign_result):
    return estimate_matrix(campaign_result)


@pytest.fixture(scope="session")
def target_analysis(estimated_matrix):
    return PropagationAnalysis(estimated_matrix)


@pytest.fixture(scope="session")
def fig2_matrix():
    return PermeabilityMatrix.from_dict(build_fig2_system(), fig2_permeabilities())


@pytest.fixture(scope="session")
def fig2_analysis(fig2_matrix):
    return PropagationAnalysis(fig2_matrix)
