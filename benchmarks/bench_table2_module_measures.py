"""Table 2: relative permeability and error exposure per module.

Regenerates the paper's Table 2 (Eqs. 2–5) from the estimated matrix
and times the measure computation (matrix → module measures + graph →
exposures).
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.exposure import all_module_exposures
from repro.core.graph import PermeabilityGraph
from repro.core.report import render_table2


def _compute(matrix):
    measures = matrix.all_module_measures()
    exposures = all_module_exposures(PermeabilityGraph(matrix))
    return measures, exposures


def test_table2_module_measures(benchmark, estimated_matrix):
    measures, exposures = benchmark(_compute, estimated_matrix)

    # Paper-exact: P^CLOCK = 0.500, non-weighted 1.000.
    assert measures["CLOCK"].relative_permeability == 0.5
    assert measures["CLOCK"].nonweighted_relative_permeability == 1.0

    # OB1: DIST_S and PRES_S have no error exposure values.
    assert not exposures["DIST_S"].has_exposure
    assert not exposures["PRES_S"].has_exposure

    # OB1: CALC and V_REG are the most exposed modules.
    ranked = sorted(
        (e for e in exposures.values() if e.has_exposure),
        key=lambda e: -e.nonweighted_exposure,
    )
    assert {ranked[0].module, ranked[1].module} >= {"CALC"}
    assert ranked[0].module in {"CALC", "V_REG"}

    write_artifact(
        "table2_module_measures.txt", render_table2(measures, exposures)
    )
