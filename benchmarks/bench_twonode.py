"""Extension: the two-node master/slave configuration (paper Fig. 6).

The paper removed the slave node for its experiment; this benchmark
restores it and runs a reduced campaign on the distributed topology
(10 modules, 30 pairs, 2 system outputs), checking that the framework's
conclusions extend: the COMM link is a fully permeable corridor, the
slave's pressure chain mirrors the master's permeability profile, and
the backtrack tree of the slave output re-roots the master's SetValue
subtree across the node boundary.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_artifact
from repro.arrestment.testcases import ArrestmentTestCase
from repro.arrestment.twonode import build_twonode_model, build_twonode_run
from repro.core.analysis import PropagationAnalysis
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.estimator import estimate_matrix


@pytest.fixture(scope="module")
def twonode_matrix():
    system = build_twonode_model()
    config = CampaignConfig(
        duration_ms=6000,
        injection_times_ms=(1000, 3000),
        error_models=tuple(bit_flip_models(16)),
        seed=2001,
    )
    campaign = InjectionCampaign(
        system,
        lambda case: build_twonode_run(case),
        {"m14000-v60": ArrestmentTestCase(14000, 60)},
        config,
    )
    return estimate_matrix(campaign.execute())


def test_twonode_campaign(benchmark, twonode_matrix):
    analysis = benchmark(PropagationAnalysis, twonode_matrix)

    matrix = twonode_matrix
    assert matrix.is_complete()
    assert len(matrix) == 30

    # The COMM link forwards every corrupted bit: a fully permeable
    # corridor between the nodes.
    assert matrix.get("COMM", "SetValue", "SetValueS") >= 0.95

    # The slave chain mirrors the master's profile.
    assert matrix.get("PRES_S_S", "ADCS", "InValueS") <= 0.1
    assert matrix.get("V_REG_S", "SetValueS", "OutValueS") >= 0.8
    assert 0.75 <= matrix.get("PRES_A_S", "OutValueS", "TOC2S") < 1.0

    # Both outputs get a tree; the slave tree crosses the node boundary.
    assert analysis.backtrack_trees["TOC2"].n_paths() == 22
    assert analysis.backtrack_trees["TOC2S"].n_paths() == 22

    # SetValue remains the dominant corridor signal system-wide.
    exposures = analysis.signal_exposures
    leaders = sorted(exposures, key=lambda s: -exposures[s])[:3]
    assert "SetValue" in leaders

    write_artifact(
        "twonode_tables.txt",
        "\n\n".join(
            [
                analysis.render_table1(),
                analysis.render_table2(),
                analysis.render_table3(),
                analysis.render_table4("TOC2S"),
            ]
        ),
    )
