"""Extension: propagation-latency analysis of the target system.

The paper's permeability is purely probabilistic; its EDM-placement
discussion (OB3, via [18]) also involves detection latency.  This
benchmark regenerates the per-pair propagation-latency table from the
session campaign and checks the temporal structure of the target
system: regulator-chain pairs propagate within one or two scheduling
cycles, while checkpoint-driven CALC pairs can take seconds.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.injection.latency import latency_statistics, render_latency_table


def test_propagation_latency(benchmark, campaign_result):
    statistics = benchmark(latency_statistics, campaign_result)

    # Pairs that never propagated are absent; certain pairs must appear.
    assert ("CLOCK", "ms_slot_nbr", "ms_slot_nbr") in statistics
    assert ("V_REG", "SetValue", "OutValue") in statistics
    assert ("PRES_A", "OutValue", "TOC2") in statistics

    # The slot counter corrupts itself within the same frame.
    assert statistics[("CLOCK", "ms_slot_nbr", "ms_slot_nbr")].max_ms <= 1

    # The regulator chain reacts within roughly one 7 ms cycle.
    assert statistics[("V_REG", "SetValue", "OutValue")].median_ms <= 14
    assert statistics[("PRES_A", "OutValue", "TOC2")].median_ms <= 14

    # Checkpoint-driven CALC pairs can be far slower than the
    # regulator: a corrupted checkpoint index only surfaces on
    # SetValue when the *next* checkpoint is (not) detected.
    calc = statistics.get(("CALC", "i", "SetValue"))
    assert calc is not None
    assert calc.max_ms > statistics[("V_REG", "SetValue", "OutValue")].max_ms

    write_artifact("latency.txt", render_latency_table(statistics))
