"""repro — error-propagation analysis for modular software.

A complete, self-contained reproduction of

    M. Hiller, A. Jhumka, N. Suri,
    "An Approach for Analysing the Propagation of Data Errors in
    Software", DSN 2001.

The package provides:

* :mod:`repro.model` — the modular software-system model (modules
  inter-linked by signals);
* :mod:`repro.core` — the paper's contribution: error permeability
  (Eq. 1), the module measures (Eqs. 2–3), the permeability graph,
  exposure measures (Eqs. 4–6), backtrack/trace trees, propagation-path
  ranking and EDM/ERM placement recommendations;
* :mod:`repro.simulation` — a slot-scheduled embedded runtime with
  simulated hardware registers and tracing;
* :mod:`repro.injection` — a PROPANE-style fault-injection environment
  (SWIFI traps, Golden Run Comparison, campaigns, permeability
  estimation);
* :mod:`repro.arrestment` — the paper's target system: an aircraft
  arrestment controller with a physical plant simulation;
* :mod:`repro.baselines` — the comparison analyses of Section 2.

Quickstart::

    from repro import (
        PermeabilityMatrix, PropagationAnalysis, build_fig2_system,
        fig2_permeabilities,
    )

    system = build_fig2_system()
    matrix = PermeabilityMatrix.from_dict(system, fig2_permeabilities())
    analysis = PropagationAnalysis(matrix)
    print(analysis.render_table2())
"""

from repro.arrestment import (
    ArrestmentPlant,
    ArrestmentTestCase,
    PlantConfig,
    arrestment_schedule,
    build_arrestment_model,
    build_arrestment_modules,
    build_arrestment_run,
    paper_test_cases,
    reduced_test_cases,
)
from repro.baselines import (
    EdmSelection,
    UniformPropagationReport,
    analyse_uniform_propagation,
    greedy_edm_selection,
)
from repro.core import (
    BacktrackTree,
    MatrixDiff,
    PairDelta,
    SensitivityReport,
    output_reach,
    output_sensitivities,
    what_if,
    ModuleExposure,
    ModuleMeasures,
    NodeKind,
    PermeabilityEstimate,
    PermeabilityGraph,
    PermeabilityMatrix,
    PlacementAdvisor,
    PlacementReport,
    PropagationAnalysis,
    PropagationPath,
    TraceTree,
    build_all_backtrack_trees,
    build_all_trace_trees,
    build_backtrack_tree,
    build_trace_tree,
    graph_to_dot,
    nonzero_paths,
    paths_of_backtrack_tree,
    paths_of_trace_tree,
    rank_paths,
    system_to_dot,
    tree_to_dot,
)
from repro.edm import (
    ConstancyCheck,
    DeltaCheck,
    DetectorEvaluation,
    ErrorDetector,
    MonotonicCheck,
    RangeCheck,
    calibrate_delta,
    calibrate_range,
    evaluate_detectors,
)
from repro.injection import (
    BitFlip,
    CriticalityReport,
    FailureMode,
    SeverityLimits,
    classify_campaign,
    CampaignConfig,
    CampaignResult,
    GoldenRun,
    GoldenRunComparison,
    InjectionCampaign,
    InjectionOutcome,
    InputInjectionTrap,
    PermeabilityEstimator,
    StoreInjectionTrap,
    bit_flip_models,
    compare_to_golden_run,
    estimate_matrix,
    paper_grid,
    paper_times,
)
from repro.injection.latency import (
    latency_statistics,
    lifetime_statistics,
    render_latency_table,
    render_lifetime_table,
)
from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    lint_system,
)
from repro.obs import (
    CampaignObserver,
    MetricsRegistry,
    PropagationObservations,
)
from repro.model import (
    ModuleSpec,
    ReproError,
    SignalKind,
    SignalSpec,
    SoftwareModule,
    SystemBuilder,
    SystemModel,
    build_fig2_system,
    fig2_permeabilities,
)
from repro.simulation import (
    SimulationRun,
    SlotSchedule,
    TraceSet,
)
from repro.verify import (
    OracleFailure,
    generate_system,
    verify_generated,
)

__version__ = "1.0.0"

__all__ = [
    "ArrestmentPlant",
    "ArrestmentTestCase",
    "BacktrackTree",
    "BitFlip",
    "CampaignConfig",
    "CampaignObserver",
    "CampaignResult",
    "ConstancyCheck",
    "CriticalityReport",
    "FailureMode",
    "SeverityLimits",
    "DeltaCheck",
    "DetectorEvaluation",
    "Diagnostic",
    "LintReport",
    "EdmSelection",
    "ErrorDetector",
    "MonotonicCheck",
    "RangeCheck",
    "GoldenRun",
    "GoldenRunComparison",
    "InjectionCampaign",
    "InjectionOutcome",
    "InputInjectionTrap",
    "MatrixDiff",
    "MetricsRegistry",
    "ModuleExposure",
    "ModuleMeasures",
    "ModuleSpec",
    "NodeKind",
    "PairDelta",
    "PermeabilityEstimate",
    "PermeabilityEstimator",
    "PermeabilityGraph",
    "PermeabilityMatrix",
    "PlacementAdvisor",
    "PlacementReport",
    "PlantConfig",
    "PropagationAnalysis",
    "PropagationObservations",
    "PropagationPath",
    "ReproError",
    "Severity",
    "SignalKind",
    "SignalSpec",
    "SimulationRun",
    "SlotSchedule",
    "SoftwareModule",
    "StoreInjectionTrap",
    "SystemBuilder",
    "SensitivityReport",
    "SystemModel",
    "TraceSet",
    "TraceTree",
    "UniformPropagationReport",
    "analyse_uniform_propagation",
    "arrestment_schedule",
    "bit_flip_models",
    "build_all_backtrack_trees",
    "build_all_trace_trees",
    "build_arrestment_model",
    "build_arrestment_modules",
    "build_arrestment_run",
    "build_backtrack_tree",
    "build_fig2_system",
    "build_trace_tree",
    "calibrate_delta",
    "calibrate_range",
    "classify_campaign",
    "compare_to_golden_run",
    "estimate_matrix",
    "evaluate_detectors",
    "fig2_permeabilities",
    "latency_statistics",
    "lifetime_statistics",
    "lint_system",
    "render_latency_table",
    "render_lifetime_table",
    "graph_to_dot",
    "greedy_edm_selection",
    "nonzero_paths",
    "output_reach",
    "output_sensitivities",
    "paper_grid",
    "paper_test_cases",
    "paper_times",
    "paths_of_backtrack_tree",
    "paths_of_trace_tree",
    "rank_paths",
    "reduced_test_cases",
    "system_to_dot",
    "tree_to_dot",
    "what_if",
    "OracleFailure",
    "generate_system",
    "verify_generated",
    "__version__",
]
