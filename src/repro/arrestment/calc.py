"""CALC: the set-point calculation module (background task).

Paper description (Section 7.1): "CALC uses ``mscnt``, ``pulscnt``,
``slow_speed`` and ``stopped`` to calculate a set point value for the
pressure valves, ``SetValue``, at six predefined checkpoints along the
runway.  The checkpoints are detected by comparing the current
``pulscnt`` with pre-defined pulscnt-values corresponding to the various
checkpoints.  The current checkpoint is stored in ``i``.  Period = n/a
(background task, runs when other modules are dormant)."

``i`` is both an output and an input of CALC — the module feedback the
paper's trees treat specially (Figs. 10 and 12).

Set-point law
-------------
At checkpoint *i* the module estimates the current velocity from the
pulse count and millisecond clock deltas since the previous checkpoint,

.. math:: v_q = 256 \\cdot \\Delta pulscnt / \\Delta mscnt

(pulses per millisecond in Q8 fixed point), computes the deceleration
required to stop within the remaining runway,
:math:`a = v^2 / (2 d_{rem})`, and commands the hydraulic pressure that
produces this deceleration for a nominal-mass aircraft:

.. math:: SetValue = G \\cdot v_q^2 / d_{rem}

with the integer gain ``G`` =
:data:`~repro.arrestment.constants.SETPOINT_GAIN` pre-computed from the
plant constants:

``G = (m_nom * r / (2 k)) / P_supply * 65535 * (ppm / (2 * 256**2)) * 10**6 / ppm**2``

which collapses to ``G ≈ 734`` for the default plant.  While
``slow_speed`` holds, a gentle constant pull
(:data:`~repro.arrestment.constants.SLOW_SET_VALUE`) is commanded; once
``stopped`` holds, the pressure is released entirely.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.arrestment.constants import (
    CHECKPOINT_PULSES,
    MIN_REMAINING_PULSES,
    SETPOINT_GAIN,
    SLOW_SET_VALUE,
    TOTAL_PULSES,
)
from repro.model.module import BACKGROUND, ModuleSpec, SoftwareModule

__all__ = ["CALC_SPEC", "CalcModule"]

CALC_SPEC = ModuleSpec(
    name="CALC",
    inputs=("i", "mscnt", "pulscnt", "slow_speed", "stopped"),
    outputs=("i", "SetValue"),
    description="Checkpoint detection and pressure set-point calculation",
    period_ms=BACKGROUND,
)


class CalcModule(SoftwareModule):
    """Behavioural implementation of CALC."""

    def __init__(
        self,
        checkpoints: Sequence[int] = CHECKPOINT_PULSES,
        total_pulses: int = TOTAL_PULSES,
        gain: int = SETPOINT_GAIN,
        slow_set_value: int = SLOW_SET_VALUE,
        min_remaining: int = MIN_REMAINING_PULSES,
    ) -> None:
        super().__init__(CALC_SPEC)
        if not checkpoints:
            raise ValueError("at least one checkpoint is required")
        self._checkpoints = tuple(checkpoints)
        self._total_pulses = total_pulses
        self._gain = gain
        self._slow_set_value = slow_set_value
        self._min_remaining = min_remaining
        self.reset()

    def reset(self) -> None:
        #: pulscnt/mscnt at the previously passed checkpoint, for the
        #: velocity estimate.  Engagement counts as checkpoint "zero".
        self._prev_pulscnt = 0
        self._prev_mscnt = 0

    def state_dict(self) -> dict:
        return {
            "prev_pulscnt": self._prev_pulscnt,
            "prev_mscnt": self._prev_mscnt,
        }

    def load_state_dict(self, state: dict) -> None:
        self._prev_pulscnt = state["prev_pulscnt"]
        self._prev_mscnt = state["prev_mscnt"]

    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        i = inputs["i"]
        mscnt = inputs["mscnt"]
        pulscnt = inputs["pulscnt"]
        slow_speed = inputs["slow_speed"]
        stopped = inputs["stopped"]

        if stopped != 0:
            # Arrestment complete: release the pressure.
            return {"i": i, "SetValue": 0}
        if slow_speed != 0:
            # Final phase: constant gentle pull.
            return {"i": i, "SetValue": self._slow_set_value}

        if i < len(self._checkpoints) and pulscnt >= self._checkpoints[i]:
            set_value = self._set_point(mscnt, pulscnt)
            self._prev_pulscnt = pulscnt
            self._prev_mscnt = mscnt
            return {"i": i + 1, "SetValue": set_value}
        # Between checkpoints the previous set point holds (SetValue is
        # intentionally not rewritten).
        return {"i": i}

    def _set_point(self, mscnt: int, pulscnt: int) -> int:
        """The checkpoint set-point law (see the module docstring)."""
        delta_pulses = pulscnt - self._prev_pulscnt
        delta_ms = mscnt - self._prev_mscnt
        if delta_pulses < 1:
            delta_pulses = 1
        if delta_ms < 1:
            delta_ms = 1
        v_q = (delta_pulses * 256) // delta_ms
        remaining = self._total_pulses - pulscnt
        if remaining < self._min_remaining:
            remaining = self._min_remaining
        set_value = self._gain * v_q * v_q // remaining
        return min(0xFFFF, set_value)
