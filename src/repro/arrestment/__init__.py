"""The paper's target system: an aircraft-arrestment embedded controller.

Re-implements the six software modules of Section 7.1 (CLOCK, DIST_S,
PRES_S, CALC, V_REG, PRES_A), the physical plant (aircraft, cable
drums, hydraulics, tooth-wheel sensors) and the 25-case workload grid,
assembled into an executable closed-loop system for fault-injection
experiments.
"""

from repro.arrestment.calc import CALC_SPEC, CalcModule
from repro.arrestment.clock import CLOCK_SPEC, ClockModule
from repro.arrestment.dist_s import DIST_S_SPEC, DistanceSensorModule
from repro.arrestment.plant import ArrestmentPlant, PlantConfig
from repro.arrestment.pres_a import PRES_A_SPEC, PressureActuatorModule
from repro.arrestment.pres_s import PRES_S_SPEC, PressureSensorModule
from repro.arrestment.system import (
    ARRESTMENT_SIGNALS,
    arrestment_schedule,
    build_arrestment_model,
    build_arrestment_modules,
    build_arrestment_run,
)
from repro.arrestment.testcases import (
    ArrestmentTestCase,
    paper_test_cases,
    reduced_test_cases,
)
from repro.arrestment.v_reg import V_REG_SPEC, ValveRegulatorModule

__all__ = [
    "ARRESTMENT_SIGNALS",
    "ArrestmentPlant",
    "ArrestmentTestCase",
    "CALC_SPEC",
    "CLOCK_SPEC",
    "CalcModule",
    "ClockModule",
    "DIST_S_SPEC",
    "DistanceSensorModule",
    "PRES_A_SPEC",
    "PRES_S_SPEC",
    "PlantConfig",
    "PressureActuatorModule",
    "PressureSensorModule",
    "V_REG_SPEC",
    "ValveRegulatorModule",
    "arrestment_schedule",
    "build_arrestment_model",
    "build_arrestment_modules",
    "build_arrestment_run",
    "paper_test_cases",
    "reduced_test_cases",
]
