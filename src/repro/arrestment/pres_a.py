"""PRES_A: the pressure actuator drive module.

Transfers the regulator's drive command ``OutValue`` into the hardware
output-compare register ``TOC2`` that generates the valve drive pulse
width.  Period = 7 ms.

The drive electronics resolve fewer bits than the 16-bit command word;
PRES_A therefore quantises the command
(:data:`~repro.arrestment.constants.TOC2_QUANT_MASK` drops the least
significant bits).  Errors in the dropped bits consequently do not
permeate, which is why the paper measured a permeability below 1
(0.860) for this pass-through module.
"""

from __future__ import annotations

from typing import Mapping

from repro.arrestment.constants import TOC2_QUANT_MASK
from repro.model.module import ModuleSpec, SoftwareModule

__all__ = ["PRES_A_SPEC", "PressureActuatorModule"]

PRES_A_SPEC = ModuleSpec(
    name="PRES_A",
    inputs=("OutValue",),
    outputs=("TOC2",),
    description="Valve drive: quantised transfer of OutValue into TOC2",
    period_ms=7,
)


class PressureActuatorModule(SoftwareModule):
    """Behavioural implementation of PRES_A.

    ``spec`` may rename the ports (the two-node configuration runs a
    second instance on the slave).
    """

    def __init__(
        self,
        quant_mask: int = TOC2_QUANT_MASK,
        spec: ModuleSpec = PRES_A_SPEC,
    ) -> None:
        if spec.n_inputs != 1 or spec.n_outputs != 1:
            raise ValueError("a pressure actuator needs 1 input and 1 output")
        super().__init__(spec)
        self._quant_mask = quant_mask

    def state_dict(self) -> dict:
        return {}  # stateless pass-through

    def load_state_dict(self, state: dict) -> None:
        pass

    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        drive = inputs[self._spec.inputs[0]]
        return {self._spec.outputs[0]: drive & self._quant_mask}
