"""V_REG: the pressure valve regulator.

Closes the pressure loop: compares the set point ``SetValue`` from CALC
with the measured pressure ``InValue`` from PRES_S and computes the
valve drive command ``OutValue``.  Period = 7 ms.

The regulator is a fixed-point PI controller with anti-windup clamping:

* proportional term ``KP * error``;
* integral term accumulating ``error >> KI_SHIFT`` per activation,
  clamped to the drive range so saturation does not wind up.

Because every activation recomputes the drive from both inputs, errors
on either input permeate to ``OutValue`` with high probability — the
paper measured 0.884 (``SetValue``) and 0.920 (``InValue``) here.
"""

from __future__ import annotations

from typing import Mapping

from repro.arrestment.constants import VREG_KI_SHIFT, VREG_KP
from repro.model.module import ModuleSpec, SoftwareModule

__all__ = ["V_REG_SPEC", "ValveRegulatorModule"]

V_REG_SPEC = ModuleSpec(
    name="V_REG",
    inputs=("SetValue", "InValue"),
    outputs=("OutValue",),
    description="PI pressure regulator driving the valve command",
    period_ms=7,
)

#: Valve drive range (16-bit unsigned).
_DRIVE_MAX = 0xFFFF


class ValveRegulatorModule(SoftwareModule):
    """Behavioural implementation of V_REG.

    ``spec`` may rename the ports (the two-node configuration runs a
    second instance on the slave); the first input is the set point,
    the second the measurement, the single output the drive command.
    """

    def __init__(
        self,
        kp: int = VREG_KP,
        ki_shift: int = VREG_KI_SHIFT,
        spec: ModuleSpec = V_REG_SPEC,
    ) -> None:
        if spec.n_inputs != 2 or spec.n_outputs != 1:
            raise ValueError("a valve regulator needs 2 inputs and 1 output")
        super().__init__(spec)
        if kp < 0:
            raise ValueError("kp must be >= 0")
        if ki_shift < 0:
            raise ValueError("ki_shift must be >= 0")
        self._kp = kp
        self._ki_shift = ki_shift
        self.reset()

    def reset(self) -> None:
        self._integral = 0

    def state_dict(self) -> dict:
        return {"integral": self._integral}

    def load_state_dict(self, state: dict) -> None:
        self._integral = state["integral"]

    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        set_point, measurement = (inputs[name] for name in self._spec.inputs)
        error = set_point - measurement
        self._integral += error >> self._ki_shift if error >= 0 else -((-error) >> self._ki_shift)
        # Anti-windup: the integral alone may never exceed the drive range.
        if self._integral > _DRIVE_MAX:
            self._integral = _DRIVE_MAX
        elif self._integral < 0:
            self._integral = 0
        drive = self._kp * error + self._integral
        if drive < 0:
            drive = 0
        elif drive > _DRIVE_MAX:
            drive = _DRIVE_MAX
        return {self._spec.outputs[0]: drive}
