"""The two-node master/slave arrestment configuration (paper Fig. 6).

"In the real system, there are two nodes; a master node calculating the
desired pressure to be applied, and a slave node receiving the desired
pressure from the master.  Each node controls one of the rotating
drums."  The paper's experiment removed the slave; this module restores
it, exercising the framework on the distributed configuration the
system model of Section 3 explicitly includes ("distributed software
functions resident on either single or distributed hardware nodes").

Additional software:

* ``COMM`` — the master→slave set-point link: forwards ``SetValue`` as
  ``SetValueS`` with a one-cycle transmission delay (a double-buffered
  mailbox, the classic field-bus pattern);
* ``PRES_S_S`` / ``V_REG_S`` / ``PRES_A_S`` — the slave's own pressure
  chain on its drum, instantiated from the same behavioural classes
  under slave signal names (``ADCS``, ``InValueS``, ``OutValueS``,
  ``TOC2S``).

The plant becomes a :class:`TwoDrumPlant`: each cable end has its own
valve, pressure state and transducer; the aircraft is retarded by the
sum of both drum forces.  The rotation sensors stay on the master drum
(both ends see the same cable run-out).

System inputs: ``PACNT``, ``TIC1``, ``TCNT``, ``ADC``, ``ADCS``.
System outputs: ``TOC2``, ``TOC2S``.  10 modules, 30 input/output pairs.
"""

from __future__ import annotations

from typing import Mapping

from repro.arrestment import constants
from repro.arrestment.calc import CALC_SPEC, CalcModule
from repro.arrestment.clock import CLOCK_SPEC, ClockModule
from repro.arrestment.dist_s import DIST_S_SPEC, DistanceSensorModule
from repro.arrestment.plant import PlantConfig
from repro.arrestment.pres_a import PRES_A_SPEC, PressureActuatorModule
from repro.arrestment.pres_s import PRES_S_SPEC, PressureSensorModule
from repro.arrestment.system import ARRESTMENT_SIGNALS
from repro.arrestment.testcases import ArrestmentTestCase
from repro.arrestment.v_reg import V_REG_SPEC, ValveRegulatorModule
from repro.model.module import ModuleSpec, SoftwareModule
from repro.model.signal import SignalSpec
from repro.model.system import SystemModel
from repro.simulation.registers import AdcRegister, FreeRunningCounter, InputCapture, PulseAccumulator
from repro.simulation.runtime import SignalStore, SimulationRun
from repro.simulation.scheduler import SlotSchedule

__all__ = [
    "COMM_SPEC",
    "CommLinkModule",
    "TwoDrumPlant",
    "build_twonode_model",
    "twonode_schedule",
    "build_twonode_modules",
    "build_twonode_run",
]

COMM_SPEC = ModuleSpec(
    name="COMM",
    inputs=("SetValue",),
    outputs=("SetValueS",),
    description="Master-to-slave set-point link (one-cycle mailbox delay)",
    period_ms=7,
)

#: Slave-side instances of the pressure chain, renamed per node.
PRES_S_S_SPEC = ModuleSpec(
    name="PRES_S_S",
    inputs=("ADCS",),
    outputs=("InValueS",),
    description="Slave pressure transducer conditioning",
    period_ms=7,
)
V_REG_S_SPEC = ModuleSpec(
    name="V_REG_S",
    inputs=("SetValueS", "InValueS"),
    outputs=("OutValueS",),
    description="Slave PI pressure regulator",
    period_ms=7,
)
PRES_A_S_SPEC = ModuleSpec(
    name="PRES_A_S",
    inputs=("OutValueS",),
    outputs=("TOC2S",),
    description="Slave valve drive",
    period_ms=7,
)

#: Additional slave-side signals.
TWONODE_EXTRA_SIGNALS: tuple[SignalSpec, ...] = (
    SignalSpec("SetValueS", description="Set point received over the link"),
    SignalSpec("ADCS", description="Slave pressure transducer conversion"),
    SignalSpec("InValueS", description="Slave conditioned pressure"),
    SignalSpec("OutValueS", description="Slave valve drive command"),
    SignalSpec("TOC2S", description="Slave output-compare register"),
)


class CommLinkModule(SoftwareModule):
    """The master→slave set-point mailbox.

    Transmits the set point with a one-activation (7 ms) delay: the
    value written to the slave is the one sampled on the *previous*
    activation, modelling the field-bus transmission frame.
    """

    def __init__(self) -> None:
        super().__init__(COMM_SPEC)
        self.reset()

    def reset(self) -> None:
        self._in_flight = 0

    def state_dict(self) -> dict:
        return {"in_flight": self._in_flight}

    def load_state_dict(self, state: dict) -> None:
        self._in_flight = state["in_flight"]

    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        delivered = self._in_flight
        self._in_flight = inputs["SetValue"]
        return {"SetValueS": delivered}


def build_twonode_model() -> SystemModel:
    """The distributed topology: 10 modules, 30 pairs, 2 system outputs."""
    return SystemModel(
        name="arrestment-twonode",
        modules=[
            CLOCK_SPEC,
            DIST_S_SPEC,
            PRES_S_SPEC,
            CALC_SPEC,
            V_REG_SPEC,
            PRES_A_SPEC,
            COMM_SPEC,
            PRES_S_S_SPEC,
            V_REG_S_SPEC,
            PRES_A_S_SPEC,
        ],
        system_inputs=["PACNT", "TIC1", "TCNT", "ADC", "ADCS"],
        system_outputs=["TOC2", "TOC2S"],
        signals=ARRESTMENT_SIGNALS + TWONODE_EXTRA_SIGNALS,
        description=(
            "Master/slave arrestment configuration (paper Fig. 6): the "
            "master computes the set point, the slave receives it over "
            "the COMM link and controls the second drum"
        ),
    )


def twonode_schedule() -> SlotSchedule:
    """The 7-slot schedule extended with the link and the slave chain."""
    schedule = SlotSchedule(n_slots=constants.N_SLOTS)
    schedule.assign_every_slot("CLOCK")
    schedule.assign_every_slot("DIST_S")
    schedule.assign("PRES_S", [1])
    schedule.assign("PRES_S_S", [2])
    schedule.assign("V_REG", [3])
    schedule.assign("COMM", [3])
    schedule.assign("V_REG_S", [4])
    schedule.assign("PRES_A", [5])
    schedule.assign("PRES_A_S", [6])
    schedule.add_background("CALC")
    return schedule


def build_twonode_modules() -> list[SoftwareModule]:
    """Fresh behavioural instances of all ten modules."""
    return [
        ClockModule(),
        DistanceSensorModule(),
        PressureSensorModule(),
        CalcModule(),
        ValveRegulatorModule(),
        PressureActuatorModule(),
        CommLinkModule(),
        PressureSensorModule(spec=PRES_S_S_SPEC),
        ValveRegulatorModule(spec=V_REG_S_SPEC),
        PressureActuatorModule(spec=PRES_A_S_SPEC),
    ]


class TwoDrumPlant:
    """Two independently braked cable ends retarding one aircraft.

    Mirrors :class:`repro.arrestment.plant.ArrestmentPlant` with one
    pressure/valve/transducer state per drum.  Both ends see the same
    cable run-out, so the rotation sensors stay on the master drum.
    """

    def __init__(self, config: PlantConfig) -> None:
        self._config = config
        self._tcnt = FreeRunningCounter("TCNT", ticks_per_ms=config.ticks_per_ms)
        self._pacnt = PulseAccumulator("PACNT")
        self._tic1 = InputCapture("TIC1", counter=self._tcnt)
        self._adc_master = AdcRegister("ADC", 0.0, config.supply_pressure_pa)
        self._adc_slave = AdcRegister("ADCS", 0.0, config.supply_pressure_pa)
        self.reset()

    def reset(self) -> None:
        config = self._config
        self._position_m = 0.0
        self._velocity_ms = config.velocity_ms
        self._pressure_pa = [0.0, 0.0]  # master, slave
        self._valve_fraction = [0.0, 0.0]
        self._pulse_position = 0.0
        self._pulses_emitted = 0
        self._peak_decel_ms2 = 0.0
        self._stop_time_ms: int | None = None
        for register in (
            self._tcnt,
            self._pacnt,
            self._tic1,
            self._adc_master,
            self._adc_slave,
        ):
            register.reset()

    def state_dict(self) -> dict:
        """Complete two-drum physical state, including the registers."""
        return {
            "position_m": self._position_m,
            "velocity_ms": self._velocity_ms,
            "pressure_pa": list(self._pressure_pa),
            "valve_fraction": list(self._valve_fraction),
            "pulse_position": self._pulse_position,
            "pulses_emitted": self._pulses_emitted,
            "peak_decel_ms2": self._peak_decel_ms2,
            "stop_time_ms": self._stop_time_ms,
            "tcnt": self._tcnt.state_dict(),
            "pacnt": self._pacnt.state_dict(),
            "tic1": self._tic1.state_dict(),
            "adc_master": self._adc_master.state_dict(),
            "adc_slave": self._adc_slave.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed two-drum state bit-for-bit."""
        self._position_m = state["position_m"]
        self._velocity_ms = state["velocity_ms"]
        self._pressure_pa = list(state["pressure_pa"])
        self._valve_fraction = list(state["valve_fraction"])
        self._pulse_position = state["pulse_position"]
        self._pulses_emitted = state["pulses_emitted"]
        self._peak_decel_ms2 = state["peak_decel_ms2"]
        self._stop_time_ms = state["stop_time_ms"]
        self._tcnt.load_state_dict(state["tcnt"])
        self._pacnt.load_state_dict(state["pacnt"])
        self._tic1.load_state_dict(state["tic1"])
        self._adc_master.load_state_dict(state["adc_master"])
        self._adc_slave.load_state_dict(state["adc_slave"])

    # -- Environment protocol ------------------------------------------

    def before_software(self, now_ms: int, store: SignalStore) -> None:
        self._integrate_one_ms(now_ms)
        store.write("PACNT", self._pacnt.read())
        store.write("TIC1", self._tic1.read())
        store.write("TCNT", self._tcnt.read())
        store.write("ADC", self._adc_master.read())
        store.write("ADCS", self._adc_slave.read())

    def after_software(self, now_ms: int, store: SignalStore) -> None:
        self._valve_fraction[0] = store.read("TOC2") / 0xFFFF
        self._valve_fraction[1] = store.read("TOC2S") / 0xFFFF

    def telemetry(self) -> dict[str, float]:
        return {
            "position_m": self._position_m,
            "velocity_ms": self._velocity_ms,
            "pressure_master_pa": self._pressure_pa[0],
            "pressure_slave_pa": self._pressure_pa[1],
            "peak_decel_ms2": self._peak_decel_ms2,
            "stop_time_ms": float(
                self._stop_time_ms if self._stop_time_ms is not None else -1
            ),
            "pulses_emitted": float(self._pulses_emitted),
        }

    # -- physics --------------------------------------------------------

    @property
    def velocity_ms(self) -> float:
        return self._velocity_ms

    @property
    def position_m(self) -> float:
        return self._position_m

    def _brake_force_n(self) -> float:
        config = self._config
        torque = config.brake_torque_per_pa * (
            self._pressure_pa[0] + self._pressure_pa[1]
        )
        # One drum per cable end: the per-drum count is already encoded
        # in summing the two pressures.
        return torque / config.drum_radius_m

    def _integrate_one_ms(self, now_ms: int) -> None:
        import math

        config = self._config
        dt = 1.0e-3
        alpha = dt / config.valve_time_constant_s
        for end in (0, 1):
            target = config.supply_pressure_pa * self._valve_fraction[end]
            self._pressure_pa[end] += (target - self._pressure_pa[end]) * alpha

        start_position = self._pulse_position
        if self._velocity_ms > 0.0:
            decel = self._brake_force_n() / config.mass_kg + config.rolling_decel_ms2
            self._peak_decel_ms2 = max(self._peak_decel_ms2, decel)
            new_velocity = self._velocity_ms - decel * dt
            if new_velocity <= 0.0:
                new_velocity = 0.0
                if self._stop_time_ms is None:
                    self._stop_time_ms = now_ms
            self._position_m += 0.5 * (self._velocity_ms + new_velocity) * dt
            self._velocity_ms = new_velocity
            self._pulse_position = self._position_m * config.pulses_per_metre

        self._tcnt.advance_ms(1)
        end_pulses = math.floor(self._pulse_position)
        new_pulses = end_pulses - self._pulses_emitted
        if new_pulses > 0:
            self._pacnt.count(new_pulses)
            advance = self._pulse_position - start_position
            if advance > 0.0:
                fraction = (end_pulses - start_position) / advance
                fraction = min(1.0, max(0.0, fraction))
            else:  # pragma: no cover - defensive
                fraction = 1.0
            self._tic1.capture(
                ticks_ago=round((1.0 - fraction) * config.ticks_per_ms)
            )
            self._pulses_emitted = end_pulses

        self._adc_master.convert(self._pressure_pa[0])
        self._adc_slave.convert(self._pressure_pa[1])


def build_twonode_run(
    case: ArrestmentTestCase | None = None,
    plant_config: PlantConfig | None = None,
    trace_signals: tuple[str, ...] | None = None,
) -> SimulationRun:
    """A complete executable two-node closed loop."""
    if plant_config is None:
        if case is None:
            case = ArrestmentTestCase(mass_kg=14000.0, velocity_ms=60.0)
        plant_config = PlantConfig(mass_kg=case.mass_kg, velocity_ms=case.velocity_ms)
    system = build_twonode_model()
    return SimulationRun(
        system=system,
        modules=build_twonode_modules(),
        schedule=twonode_schedule(),
        environment=TwoDrumPlant(plant_config),
        slot_signal="ms_slot_nbr",
        trace_signals=trace_signals,
    )
