"""Workload grid of the paper's experiment (Section 7.3).

"In order to get a realistic load on the system and the modules, we
subjected the system to 25 test cases: 5 masses and 5 velocities of the
incoming aircraft uniformly distributed between 8,000-20,000 kg, and
between 40-80 m/s, respectively."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrestment.constants import MASS_RANGE_KG, VELOCITY_RANGE_MS

__all__ = ["ArrestmentTestCase", "paper_test_cases", "reduced_test_cases"]


@dataclass(frozen=True)
class ArrestmentTestCase:
    """One workload: an aircraft of a given mass engaging at a velocity."""

    mass_kg: float
    velocity_ms: float

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ValueError("mass_kg must be positive")
        if self.velocity_ms <= 0:
            raise ValueError("velocity_ms must be positive")

    @property
    def case_id(self) -> str:
        """Stable identifier, e.g. ``m14000-v60``."""
        return f"m{self.mass_kg:.0f}-v{self.velocity_ms:.0f}"

    def __str__(self) -> str:
        return f"{self.mass_kg:.0f} kg @ {self.velocity_ms:.0f} m/s"


def paper_test_cases() -> dict[str, ArrestmentTestCase]:
    """The paper's full 5 × 5 workload grid, keyed by case id."""
    cases = {}
    for mass in MASS_RANGE_KG:
        for velocity in VELOCITY_RANGE_MS:
            case = ArrestmentTestCase(mass_kg=mass, velocity_ms=velocity)
            cases[case.case_id] = case
    return cases


def reduced_test_cases(n_cases: int = 5) -> dict[str, ArrestmentTestCase]:
    """A structured subset of the grid for cheaper campaigns.

    Picks the grid diagonal first (covering the mass *and* velocity
    ranges jointly), then the anti-diagonal, preserving the workload
    spread that makes permeability estimates representative.
    """
    if not 1 <= n_cases <= 25:
        raise ValueError("n_cases must lie in [1, 25]")
    masses = MASS_RANGE_KG
    velocities = VELOCITY_RANGE_MS
    order: list[tuple[float, float]] = []
    for index in range(5):
        order.append((masses[index], velocities[index]))
    for index in range(5):
        pair = (masses[index], velocities[4 - index])
        if pair not in order:
            order.append(pair)
    for mass in masses:
        for velocity in velocities:
            pair = (mass, velocity)
            if pair not in order:
                order.append(pair)
    cases = {}
    for mass, velocity in order[:n_cases]:
        case = ArrestmentTestCase(mass_kg=mass, velocity_ms=velocity)
        cases[case.case_id] = case
    return cases
