"""Assembly of the arrestment target system (paper Figs. 6–8).

Provides the static topology (:func:`build_arrestment_model`), the
7-slot schedule (:func:`arrestment_schedule`), the behavioural module
set (:func:`build_arrestment_modules`) and the complete executable
closed-loop runtime (:func:`build_arrestment_run`).

Topology summary (system inputs on the left, output on the right)::

    PACNT ──┐
    TIC1  ──┼─ DIST_S ── pulscnt/slow_speed/stopped ─┐
    TCNT  ──┘                                        ├─ CALC ── SetValue ─┐
             CLOCK ── mscnt ─────────────────────────┘        (i feedback)│
    ADC ──── PRES_S ── InValue ───────────────────────────────── V_REG ───┴─ OutValue ── PRES_A ── TOC2
"""

from __future__ import annotations

from repro.arrestment.calc import CALC_SPEC, CalcModule
from repro.arrestment.clock import CLOCK_SPEC, ClockModule
from repro.arrestment.constants import N_SLOTS
from repro.arrestment.dist_s import DIST_S_SPEC, DistanceSensorModule
from repro.arrestment.plant import ArrestmentPlant, PlantConfig
from repro.arrestment.pres_a import PRES_A_SPEC, PressureActuatorModule
from repro.arrestment.pres_s import PRES_S_SPEC, PressureSensorModule
from repro.arrestment.testcases import ArrestmentTestCase
from repro.arrestment.v_reg import V_REG_SPEC, ValveRegulatorModule
from repro.model.module import SoftwareModule
from repro.model.signal import SignalKind, SignalSpec
from repro.model.system import SystemModel
from repro.simulation.runtime import SimulationRun
from repro.simulation.scheduler import SlotSchedule

__all__ = [
    "ARRESTMENT_SIGNALS",
    "build_arrestment_model",
    "arrestment_schedule",
    "build_arrestment_modules",
    "build_arrestment_run",
]

#: Signal declarations of the target system (all 16-bit, Section 7.3:
#: "The input signals were all 16 bits wide").
ARRESTMENT_SIGNALS: tuple[SignalSpec, ...] = (
    SignalSpec("PACNT", description="Tooth-wheel pulse accumulator register"),
    SignalSpec("TIC1", description="Input capture of TCNT at the last pulse edge"),
    SignalSpec("TCNT", description="Free-running 2 MHz timer register", unit="ticks"),
    SignalSpec("ADC", description="Pressure transducer conversion result"),
    SignalSpec("mscnt", description="Millisecond clock", unit="ms"),
    SignalSpec("ms_slot_nbr", description="Current execution slot (0..6)"),
    SignalSpec("pulscnt", description="Total tooth pulses this arrestment"),
    SignalSpec(
        "slow_speed",
        kind=SignalKind.BOOLEAN,
        description="Velocity below the slow threshold",
    ),
    SignalSpec(
        "stopped", kind=SignalKind.BOOLEAN, description="Aircraft has stopped"
    ),
    SignalSpec("i", description="Current checkpoint index"),
    SignalSpec("SetValue", description="Pressure set point (ADC units)"),
    SignalSpec("InValue", description="Conditioned measured pressure (ADC units)"),
    SignalSpec("OutValue", description="Valve drive command"),
    SignalSpec("TOC2", description="Output-compare register driving the valves"),
)


def build_arrestment_model() -> SystemModel:
    """The static topology of the target system (Fig. 8).

    Six modules, 14 signals, 25 input/output pairs; system inputs
    ``PACNT``, ``TIC1``, ``TCNT``, ``ADC``; system output ``TOC2``.
    """
    return SystemModel(
        name="arrestment",
        modules=[
            CLOCK_SPEC,
            DIST_S_SPEC,
            PRES_S_SPEC,
            CALC_SPEC,
            V_REG_SPEC,
            PRES_A_SPEC,
        ],
        system_inputs=["PACNT", "TIC1", "TCNT", "ADC"],
        system_outputs=["TOC2"],
        signals=ARRESTMENT_SIGNALS,
        description=(
            "Embedded control system arresting aircraft on short runways "
            "(paper Section 7.1)"
        ),
    )


def arrestment_schedule() -> SlotSchedule:
    """The 7-slot schedule of Section 7.1.

    CLOCK and DIST_S run every millisecond (period 1 ms); PRES_S, V_REG
    and PRES_A run once per 7 ms cycle in their own slots; CALC is the
    background task filling the frame slack.
    """
    schedule = SlotSchedule(n_slots=N_SLOTS)
    schedule.assign_every_slot("CLOCK")
    schedule.assign_every_slot("DIST_S")
    schedule.assign("PRES_S", [1])
    schedule.assign("V_REG", [3])
    schedule.assign("PRES_A", [5])
    schedule.add_background("CALC")
    return schedule


def build_arrestment_modules() -> list[SoftwareModule]:
    """Fresh behavioural instances of all six modules."""
    return [
        ClockModule(),
        DistanceSensorModule(),
        PressureSensorModule(),
        CalcModule(),
        ValveRegulatorModule(),
        PressureActuatorModule(),
    ]


def build_arrestment_run(
    case: ArrestmentTestCase | None = None,
    plant_config: PlantConfig | None = None,
    trace_signals: tuple[str, ...] | None = None,
) -> SimulationRun:
    """A complete executable closed-loop instance of the target system.

    Parameters
    ----------
    case:
        Workload (mass/velocity); defaults to a 14 000 kg aircraft at
        60 m/s.  Ignored when ``plant_config`` is given.
    plant_config:
        Full plant parameterisation, for ablations beyond the workload
        grid.
    trace_signals:
        Signals to record; defaults to all 14 (the paper traces every
        signal).
    """
    if plant_config is None:
        if case is None:
            case = ArrestmentTestCase(mass_kg=14000.0, velocity_ms=60.0)
        plant_config = PlantConfig(mass_kg=case.mass_kg, velocity_ms=case.velocity_ms)
    system = build_arrestment_model()
    plant = ArrestmentPlant(plant_config)
    return SimulationRun(
        system=system,
        modules=build_arrestment_modules(),
        schedule=arrestment_schedule(),
        environment=plant,
        slot_signal="ms_slot_nbr",
        trace_signals=trace_signals,
    )
