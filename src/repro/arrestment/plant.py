"""The arrestment plant: aircraft, cable drums, hydraulics and sensors.

The paper ported the original environment simulator ("the simulator
handles the rotating drum and the incoming aircraft", Section 7.1) so
that the desktop software experienced the identical environment.  This
module is our equivalent: a deterministic physical simulation that

* integrates the aircraft/cable/drum longitudinal dynamics under the
  hydraulic brake force,
* models the first-order valve/line lag between the commanded valve
  opening (``TOC2``) and the applied pressure,
* generates the tooth-wheel pulse train into the ``PACNT`` pulse
  accumulator with edge-accurate ``TIC1`` input capture against the
  free-running ``TCNT`` timer, and
* quantises the applied pressure into the ``ADC`` register.

It implements the :class:`repro.simulation.runtime.Environment`
protocol; the runtime calls :meth:`ArrestmentPlant.before_software` once
per millisecond before dispatching the software and
:meth:`ArrestmentPlant.after_software` afterwards to latch the actuator
command.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arrestment import constants
from repro.simulation.registers import (
    AdcRegister,
    FreeRunningCounter,
    InputCapture,
    PulseAccumulator,
)
from repro.simulation.runtime import SignalStore

__all__ = ["PlantConfig", "ArrestmentPlant"]


@dataclass(frozen=True)
class PlantConfig:
    """Physical parameters of one arrestment scenario.

    The defaults reproduce the standard plant; ablation studies override
    individual fields.
    """

    #: Aircraft mass at engagement [kg].
    mass_kg: float = 14000.0
    #: Engagement velocity [m/s].
    velocity_ms: float = 60.0
    #: Tape-drum radius [m].
    drum_radius_m: float = constants.DRUM_RADIUS_M
    #: Tooth-wheel pulses per metre of cable run-out.
    pulses_per_metre: float = constants.PULSES_PER_METRE
    #: Hydraulic supply pressure (ADC full scale) [Pa].
    supply_pressure_pa: float = constants.SUPPLY_PRESSURE_PA
    #: Brake torque per pascal, per drum [N·m/Pa].
    brake_torque_per_pa: float = constants.BRAKE_TORQUE_PER_PA
    #: Number of braked cable ends.
    n_drums: int = constants.N_DRUMS
    #: Valve/line first-order time constant [s].
    valve_time_constant_s: float = constants.VALVE_TIME_CONSTANT_S
    #: Constant rolling/aero deceleration while moving [m/s²].
    rolling_decel_ms2: float = constants.ROLLING_DECEL_MS2
    #: Hardware timer ticks per millisecond.
    ticks_per_ms: int = constants.TICKS_PER_MS

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ValueError("mass_kg must be positive")
        if self.velocity_ms < 0:
            raise ValueError("velocity_ms cannot be negative")
        if self.drum_radius_m <= 0 or self.pulses_per_metre <= 0:
            raise ValueError("geometry parameters must be positive")
        if self.supply_pressure_pa <= 0 or self.valve_time_constant_s <= 0:
            raise ValueError("hydraulic parameters must be positive")


class ArrestmentPlant:
    """Deterministic closed-loop environment for the arrestment system.

    Signal naming follows the paper's Fig. 8: the plant owns the
    hardware registers ``PACNT``, ``TIC1``, ``TCNT`` and ``ADC`` (the
    system inputs) and consumes ``TOC2`` (the system output).
    """

    def __init__(self, config: PlantConfig) -> None:
        self._config = config
        self._tcnt = FreeRunningCounter("TCNT", ticks_per_ms=config.ticks_per_ms)
        self._pacnt = PulseAccumulator("PACNT")
        self._tic1 = InputCapture("TIC1", counter=self._tcnt)
        self._adc = AdcRegister("ADC", 0.0, config.supply_pressure_pa)
        self.reset()

    # ------------------------------------------------------------------
    # Environment protocol
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Restore the physical state to the moment of cable engagement."""
        config = self._config
        self._position_m = 0.0
        self._velocity_ms = config.velocity_ms
        self._pressure_pa = 0.0
        self._valve_fraction = 0.0
        self._pulse_position = 0.0  # cable run-out in tooth-wheel pulses
        self._pulses_emitted = 0
        self._peak_decel_ms2 = 0.0
        self._stop_time_ms: int | None = None
        self._tcnt.reset()
        self._pacnt.reset()
        self._tic1.reset()
        self._adc.reset()

    def state_dict(self) -> dict:
        """Complete physical state, including the hardware registers."""
        return {
            "position_m": self._position_m,
            "velocity_ms": self._velocity_ms,
            "pressure_pa": self._pressure_pa,
            "valve_fraction": self._valve_fraction,
            "pulse_position": self._pulse_position,
            "pulses_emitted": self._pulses_emitted,
            "peak_decel_ms2": self._peak_decel_ms2,
            "stop_time_ms": self._stop_time_ms,
            "tcnt": self._tcnt.state_dict(),
            "pacnt": self._pacnt.state_dict(),
            "tic1": self._tic1.state_dict(),
            "adc": self._adc.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed physical state bit-for-bit."""
        self._position_m = state["position_m"]
        self._velocity_ms = state["velocity_ms"]
        self._pressure_pa = state["pressure_pa"]
        self._valve_fraction = state["valve_fraction"]
        self._pulse_position = state["pulse_position"]
        self._pulses_emitted = state["pulses_emitted"]
        self._peak_decel_ms2 = state["peak_decel_ms2"]
        self._stop_time_ms = state["stop_time_ms"]
        self._tcnt.load_state_dict(state["tcnt"])
        self._pacnt.load_state_dict(state["pacnt"])
        self._tic1.load_state_dict(state["tic1"])
        self._adc.load_state_dict(state["adc"])

    def before_software(self, now_ms: int, store: SignalStore) -> None:
        """Integrate 1 ms of physics and refresh the input registers."""
        self._integrate_one_ms(now_ms)
        store.write("PACNT", self._pacnt.read())
        store.write("TIC1", self._tic1.read())
        store.write("TCNT", self._tcnt.read())
        store.write("ADC", self._adc.read())

    def after_software(self, now_ms: int, store: SignalStore) -> None:
        """Latch the valve command written to ``TOC2``."""
        raw = store.read("TOC2")
        self._valve_fraction = raw / 0xFFFF

    def telemetry(self) -> dict[str, float]:
        """Physical quantities for reporting (invisible to the software)."""
        return {
            "position_m": self._position_m,
            "velocity_ms": self._velocity_ms,
            "pressure_pa": self._pressure_pa,
            "valve_fraction": self._valve_fraction,
            "peak_decel_ms2": self._peak_decel_ms2,
            "stop_time_ms": float(
                self._stop_time_ms if self._stop_time_ms is not None else -1
            ),
            "pulses_emitted": float(self._pulses_emitted),
        }

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------

    @property
    def config(self) -> PlantConfig:
        return self._config

    @property
    def position_m(self) -> float:
        """Cable run-out / aircraft position along the runway."""
        return self._position_m

    @property
    def velocity_ms(self) -> float:
        """Current aircraft velocity."""
        return self._velocity_ms

    @property
    def pressure_pa(self) -> float:
        """Currently applied hydraulic pressure."""
        return self._pressure_pa

    @property
    def is_stopped(self) -> bool:
        """Whether the aircraft has come to rest."""
        return self._velocity_ms <= 0.0

    def _brake_force_n(self) -> float:
        """Total retarding force on the aircraft at the current pressure."""
        config = self._config
        torque = config.brake_torque_per_pa * self._pressure_pa
        return config.n_drums * torque / config.drum_radius_m

    def _integrate_one_ms(self, now_ms: int) -> None:
        config = self._config
        dt = 1.0e-3

        # Valve/line lag toward the commanded fraction of supply pressure.
        target = config.supply_pressure_pa * self._valve_fraction
        alpha = dt / config.valve_time_constant_s
        self._pressure_pa += (target - self._pressure_pa) * alpha

        # Longitudinal dynamics.
        start_position = self._pulse_position
        if self._velocity_ms > 0.0:
            decel = self._brake_force_n() / config.mass_kg + config.rolling_decel_ms2
            self._peak_decel_ms2 = max(self._peak_decel_ms2, decel)
            new_velocity = self._velocity_ms - decel * dt
            if new_velocity <= 0.0:
                new_velocity = 0.0
                if self._stop_time_ms is None:
                    self._stop_time_ms = now_ms
            # Trapezoidal position update for a smoother pulse train.
            self._position_m += 0.5 * (self._velocity_ms + new_velocity) * dt
            self._velocity_ms = new_velocity
            self._pulse_position = self._position_m * config.pulses_per_metre

        # Tooth-wheel pulse train and timer registers.
        self._tcnt.advance_ms(1)
        end_pulses = math.floor(self._pulse_position)
        new_pulses = end_pulses - self._pulses_emitted
        if new_pulses > 0:
            self._pacnt.count(new_pulses)
            advance = self._pulse_position - start_position
            if advance > 0.0:
                # Fraction of the millisecond at which the last edge fell.
                last_edge_fraction = (end_pulses - start_position) / advance
                last_edge_fraction = min(1.0, max(0.0, last_edge_fraction))
            else:  # pragma: no cover - defensive; advance>0 when pulses>0
                last_edge_fraction = 1.0
            ticks_ago = round((1.0 - last_edge_fraction) * config.ticks_per_ms)
            self._tic1.capture(ticks_ago=ticks_ago)
            self._pulses_emitted = end_pulses

        # Pressure transducer.
        self._adc.convert(self._pressure_pa)
