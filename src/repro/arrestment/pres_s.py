"""PRES_S: the pressure sensor conditioning module.

Paper description (Section 7.1): "PRES_S reads the pressure that is
actually being applied by the pressure valves, using ``ADC`` from the
internal A/D-converter.  This value is provided in ``InValue``.
Period = 7 ms."

The paper measured this module's single input/output pair as completely
non-permeable (:math:`P^{PRES\\_S} = 0.000`, OB3) — its signal
conditioning rejects single corrupted samples.  Under an exact Golden
Run Comparison (Section 7.3) that requires two properties at once:

1. **value robustness** — one corrupted sample must not change the
   reported value.  PRES_S votes with a *median of the last five raw
   samples*: a single outlier can shift the median only by the local
   sample spread, and the output is quantised to a coarse grid
   (:data:`~repro.arrestment.constants.PRES_QUANT` counts), so a
   sub-spread shift almost never crosses a grid boundary.
2. **timing robustness** — the *instant* at which ``InValue`` changes
   must not depend on the data.  PRES_S therefore refreshes its output
   on a fixed schedule (every
   :data:`~repro.arrestment.constants.PRES_UPDATE_PERIOD`-th
   activation), never on a level/dead-band trigger whose crossing time
   a corrupted sample could advance or delay.

Together these reproduce the paper's finding: high-order bits fall
outside the median window, low-order bits vanish in the quantisation,
and no bit can move the update schedule.  The pressure loop tolerates
the coarse, slightly stale measurement easily (the valve lag dominates).
"""

from __future__ import annotations

from typing import Mapping

from repro.arrestment.constants import PRES_QUANT, PRES_UPDATE_PERIOD
from repro.model.module import ModuleSpec, SoftwareModule

__all__ = ["PRES_S_SPEC", "PressureSensorModule"]

PRES_S_SPEC = ModuleSpec(
    name="PRES_S",
    inputs=("ADC",),
    outputs=("InValue",),
    description="Pressure conditioning: median-of-5 voting, quantised, "
    "time-triggered output refresh",
    period_ms=7,
)


def _median5(values: list[int]) -> int:
    """Median of exactly five values."""
    return sorted(values)[2]


class PressureSensorModule(SoftwareModule):
    """Behavioural implementation of PRES_S."""

    def __init__(
        self,
        quant: int = PRES_QUANT,
        update_period: int = PRES_UPDATE_PERIOD,
        spec: ModuleSpec = PRES_S_SPEC,
    ) -> None:
        if spec.n_inputs != 1 or spec.n_outputs != 1:
            raise ValueError("a pressure sensor needs 1 input and 1 output")
        super().__init__(spec)
        if quant < 1:
            raise ValueError("quant must be >= 1")
        if update_period < 1:
            raise ValueError("update_period must be >= 1")
        self._quant = quant
        self._update_period = update_period
        self.reset()

    def reset(self) -> None:
        self._initialised = False
        self._history: list[int] = [0, 0, 0, 0, 0]
        self._activation = 0
        self._in_value = 0

    def state_dict(self) -> dict:
        return {
            "initialised": self._initialised,
            "history": list(self._history),
            "activation": self._activation,
            "in_value": self._in_value,
        }

    def load_state_dict(self, state: dict) -> None:
        self._initialised = state["initialised"]
        self._history = list(state["history"])
        self._activation = state["activation"]
        self._in_value = state["in_value"]

    def _quantise(self, value: int) -> int:
        return ((value + self._quant // 2) // self._quant) * self._quant

    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        sample = inputs[self._spec.inputs[0]]
        output = self._spec.outputs[0]
        if not self._initialised:
            self._history = [sample] * 5
            self._in_value = self._quantise(sample)
            self._initialised = True
            return {output: self._in_value}

        self._history = self._history[1:] + [sample]
        self._activation += 1
        if self._activation % self._update_period == 0:
            self._in_value = self._quantise(_median5(self._history))
        return {output: self._in_value}
