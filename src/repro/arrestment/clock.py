"""CLOCK: the millisecond clock and slot counter module.

Paper description (Section 7.1): "CLOCK provides a millisecond-clock,
``mscnt``.  The system operates in seven 1-ms-slots. ... The signal
``ms_slot_nbr`` tells the module scheduler the current execution slot.
Period = 1 ms."

``mscnt`` is derived from private internal state (a hardware millisecond
interrupt count), so it is unaffected by errors on ``ms_slot_nbr``.  The
slot counter, in contrast, is incremented *from its own previous value*
(the classic embedded ``slot = (slot + 1) % N`` idiom), so an error in
``ms_slot_nbr`` persists indefinitely — the source of the paper's
:math:`P^{CLOCK} = 1.000` feedback permeability.
"""

from __future__ import annotations

from typing import Mapping

from repro.arrestment.constants import N_SLOTS
from repro.model.module import ModuleSpec, SoftwareModule

__all__ = ["CLOCK_SPEC", "ClockModule"]

CLOCK_SPEC = ModuleSpec(
    name="CLOCK",
    inputs=("ms_slot_nbr",),
    outputs=("mscnt", "ms_slot_nbr"),
    description="Millisecond clock and execution-slot counter",
    period_ms=1,
)


class ClockModule(SoftwareModule):
    """Behavioural implementation of CLOCK."""

    def __init__(self, n_slots: int = N_SLOTS) -> None:
        super().__init__(CLOCK_SPEC)
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        self._n_slots = n_slots
        self._mscnt = 0

    def reset(self) -> None:
        self._mscnt = 0

    def state_dict(self) -> dict:
        return {"mscnt": self._mscnt}

    def load_state_dict(self, state: dict) -> None:
        self._mscnt = state["mscnt"]

    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        self._mscnt = (self._mscnt + 1) & 0xFFFF
        slot = (inputs["ms_slot_nbr"] + 1) % self._n_slots
        return {"mscnt": self._mscnt, "ms_slot_nbr": slot}
