"""Physical and controller constants of the arrestment target system.

The paper's target "is a medium sized embedded control system used for
arresting aircraft on short runways and aircraft carriers" (Section 7.1,
built to the specification of [19]): an incoming aircraft catches a
cable wound on rotating tape drums; hydraulic pressure valves brake the
drums; the master computer senses drum rotation through a tooth wheel
and applies a pressure set-point programme over six checkpoints along
the runway.

The constants here parameterise our physically plausible stand-in for
that system (see DESIGN.md for the substitution rationale).  All are
plain module-level values so tests and ablations can build modified
:class:`~repro.arrestment.plant.PlantConfig` objects around them.
"""

from __future__ import annotations

import math

__all__ = [
    "DRUM_RADIUS_M",
    "TEETH_PER_REV",
    "PULSES_PER_METRE",
    "RUNWAY_LENGTH_M",
    "TOTAL_PULSES",
    "SUPPLY_PRESSURE_PA",
    "BRAKE_TORQUE_PER_PA",
    "N_DRUMS",
    "VALVE_TIME_CONSTANT_S",
    "ROLLING_DECEL_MS2",
    "TICKS_PER_MS",
    "CHECKPOINTS_M",
    "CHECKPOINT_PULSES",
    "NOMINAL_MASS_KG",
    "N_SLOTS",
    "SLOW_SPEED_MS",
    "SLOW_INTERVAL_TICKS",
    "SLOW_DEBOUNCE_MS",
    "STOP_WINDOW_MS",
    "SLOW_SET_VALUE",
    "SETPOINT_GAIN",
    "MIN_REMAINING_PULSES",
    "PRES_QUANT",
    "PRES_UPDATE_PERIOD",
    "TOC2_QUANT_MASK",
    "VREG_KP",
    "VREG_KI_SHIFT",
    "MASS_RANGE_KG",
    "VELOCITY_RANGE_MS",
]

# ---------------------------------------------------------------------------
# Plant geometry and dynamics
# ---------------------------------------------------------------------------

#: Radius of the tape drum the cable unwinds from.
DRUM_RADIUS_M = 0.5

#: Teeth on the rotation-sensor tooth wheel (pulses per drum revolution).
TEETH_PER_REV = 100

#: Tooth-wheel pulses generated per metre of cable run-out.
PULSES_PER_METRE = TEETH_PER_REV / (2.0 * math.pi * DRUM_RADIUS_M)

#: Usable arrestment distance.
RUNWAY_LENGTH_M = 335.0

#: Pulse count corresponding to the full runway length.
TOTAL_PULSES = round(RUNWAY_LENGTH_M * PULSES_PER_METRE)

#: Hydraulic supply pressure (full-scale of the pressure system and ADC).
SUPPLY_PRESSURE_PA = 20.0e6

#: Brake torque per pascal of applied pressure, per drum.
BRAKE_TORQUE_PER_PA = 3.75e-3

#: The master applies retarding force on both cable ends (the paper's
#: setup removed the slave node and let the master act on both drums).
N_DRUMS = 2

#: First-order lag of the valve/line dynamics.
VALVE_TIME_CONSTANT_S = 0.05

#: Constant rolling/aero deceleration while the aircraft moves.
ROLLING_DECEL_MS2 = 0.05

#: Hardware timer rate (2 MHz E-clock: 2000 ticks per millisecond).
TICKS_PER_MS = 2000

# ---------------------------------------------------------------------------
# Controller programme
# ---------------------------------------------------------------------------

#: The six pre-defined checkpoints along the runway (metres).
CHECKPOINTS_M = (3.0, 40.0, 100.0, 170.0, 240.0, 300.0)

#: The same checkpoints in tooth-wheel pulses — CALC detects them "by
#: comparing the current pulscnt with pre-defined pulscnt-values".
CHECKPOINT_PULSES = tuple(round(metres * PULSES_PER_METRE) for metres in CHECKPOINTS_M)

#: Mass assumed by the set-point law (the controller does not know the
#: actual aircraft mass; the pressure loop absorbs the mismatch).
NOMINAL_MASS_KG = 14000.0

#: Scheduling slots per cycle ("the system operates in seven 1-ms-slots").
N_SLOTS = 7

# ---------------------------------------------------------------------------
# DIST_S velocity supervision
# ---------------------------------------------------------------------------

#: Velocity below which ``slow_speed`` is asserted.
SLOW_SPEED_MS = 5.0

#: Tooth-pulse interval (timer ticks) corresponding to SLOW_SPEED_MS.
SLOW_INTERVAL_TICKS = round(
    TICKS_PER_MS * 1000.0 / (SLOW_SPEED_MS * PULSES_PER_METRE)
)

#: Consecutive slow judgements required before ``slow_speed`` asserts.
#: The interval estimate is already EWMA-smoothed, so the supervisor
#: reacts on the first judgement; extreme corrupted interval samples
#: can therefore blip the flag — the small non-zero permeability into
#: ``slow_speed`` the paper also observed (its Table 3 lists a non-zero
#: exposure for the signal).
SLOW_DEBOUNCE_MS = 1

#: Milliseconds without any tooth pulse before ``stopped`` asserts.
STOP_WINDOW_MS = 200

# ---------------------------------------------------------------------------
# CALC set-point law
# ---------------------------------------------------------------------------

#: Pressure set-point commanded while ``slow_speed`` holds (firm final
#: pull bringing the aircraft to a complete stop).
SLOW_SET_VALUE = 12000

#: Integer gain of the set-point law:
#: ``SetValue = SETPOINT_GAIN * v_q**2 // d_rem`` with ``v_q`` the
#: velocity estimate in pulses/ms << 8 and ``d_rem`` the remaining
#: pulses.  Derived from the plant constants so that the commanded
#: pressure decelerates a NOMINAL_MASS_KG aircraft to rest at the
#: runway end (see repro.arrestment.calc for the derivation).
SETPOINT_GAIN = 734

#: Lower clamp on the remaining distance, keeping the law finite when
#: the aircraft overruns the nominal runway length.
MIN_REMAINING_PULSES = 50

# ---------------------------------------------------------------------------
# PRES_S conditioning and PRES_A drive
# ---------------------------------------------------------------------------

#: Output quantisation of PRES_S: ``InValue`` is reported on this grid
#: (512 counts is 0.8% of full scale, ~156 kPa).  A single corrupted
#: sample can shift the median-of-5 vote only by the local sample
#: spread, which almost never crosses a grid boundary.
PRES_QUANT = 512

#: PRES_S refreshes ``InValue`` every this-many activations (8 x 7 ms =
#: 56 ms).  The fixed schedule makes the *timing* of output changes
#: immune to data corruption — the property that level-triggered
#: dead-band designs lack under exact Golden Run Comparison.
PRES_UPDATE_PERIOD = 8

#: PRES_A quantises its drive command to the valve's resolution: the
#: two least significant bits of ``OutValue`` are dropped.
TOC2_QUANT_MASK = 0xFFFC

# ---------------------------------------------------------------------------
# V_REG pressure regulator
# ---------------------------------------------------------------------------

#: Proportional gain of the PI pressure regulator.
VREG_KP = 1

#: Integral term shift: the integrator accumulates ``error >> VREG_KI_SHIFT``
#: per 7 ms activation.
VREG_KI_SHIFT = 3

# ---------------------------------------------------------------------------
# Workload grid (Section 7.3)
# ---------------------------------------------------------------------------

#: The paper's aircraft masses: "5 masses ... uniformly distributed
#: between 8,000-20,000 kg".
MASS_RANGE_KG = (8000.0, 11000.0, 14000.0, 17000.0, 20000.0)

#: The paper's engagement velocities: "5 velocities ... between 40-80 m/s".
VELOCITY_RANGE_MS = (40.0, 50.0, 60.0, 70.0, 80.0)
