"""Shared report emitters used by more than one analysis subsystem.

The model linter (:mod:`repro.lint`) and the static bit-flow analysis
(:mod:`repro.flow`) both publish their findings as SARIF; the emitter
and its embedded validation schema live here exactly once so the two
tools cannot drift apart.
"""

from repro.report.sarif import (
    SARIF_MINIMAL_SCHEMA,
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    sarif_log,
    validate_sarif,
)

__all__ = [
    "SARIF_MINIMAL_SCHEMA",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "sarif_log",
    "validate_sarif",
]
