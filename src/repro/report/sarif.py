"""Generic SARIF 2.1.0 emitter shared by every analysis tool.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
the lingua franca of static-analysis tooling — code hosts render it as
inline annotations and CI systems archive it.  The analysed "source"
here is a system topology rather than a file, so findings are expressed
as *logical locations* (``module:CALC/signal:i/port:input``) instead of
physical file/region locations, which SARIF supports natively via
``locations[].logicalLocations``.

The emitter is tool-agnostic: :func:`sarif_log` takes the tool identity
and rule registry as parameters, so :mod:`repro.lint` (``repro-lint``)
and :mod:`repro.flow` (``repro-flow``) share one implementation and one
embedded schema.  Reports and rules are duck-typed — a report iterates
diagnostics carrying ``code`` / ``severity`` / ``message`` /
``location`` / ``hint``; a rule carries ``code`` / ``title`` /
``severity`` — so this module depends on no analysis package.

:data:`SARIF_MINIMAL_SCHEMA` is an embedded subset of the official
SARIF 2.1.0 JSON schema covering every construct this emitter produces;
:func:`validate_sarif` checks against it when :mod:`jsonschema` is
importable (CI additionally validates against the full upstream schema).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = [
    "SARIF_VERSION",
    "SARIF_SCHEMA_URI",
    "SARIF_MINIMAL_SCHEMA",
    "DEFAULT_TOOL_URI",
    "sarif_log",
    "validate_sarif",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

DEFAULT_TOOL_URI = "https://github.com/repro/repro"

#: SARIF ``result.level`` for each diagnostic severity label.
_LEVELS: Mapping[str, str] = {
    "error": "error",
    "warning": "warning",
    "info": "note",
}


def _level(severity: Any) -> str:
    """Map a :class:`~repro.lint.diagnostics.Severity` to a SARIF level."""
    return _LEVELS[severity.label]


def _rule_descriptor(rule: Any, tool_uri: str, doc_page: str) -> dict:
    """The ``reportingDescriptor`` for one registered rule."""
    return {
        "id": rule.code,
        "name": rule.code,
        "shortDescription": {"text": rule.title},
        "defaultConfiguration": {"level": _level(rule.severity)},
        "helpUri": f"{tool_uri}/blob/main/{doc_page}#{rule.code.lower()}",
    }


def _result(diagnostic: Any, rule_index: Mapping[str, int]) -> dict:
    """The SARIF ``result`` for one diagnostic."""
    message = diagnostic.message
    if diagnostic.hint:
        message += f" — hint: {diagnostic.hint}"
    result = {
        "ruleId": diagnostic.code,
        "level": _level(diagnostic.severity),
        "message": {"text": message},
        "locations": [
            {
                "logicalLocations": [
                    {
                        "fullyQualifiedName": diagnostic.location.fully_qualified(),
                        "kind": "member",
                    }
                ]
            }
        ],
    }
    if diagnostic.code in rule_index:
        result["ruleIndex"] = rule_index[diagnostic.code]
    return result


def sarif_log(
    report: Any,
    *,
    tool_name: str,
    rules: Iterable[Any] = (),
    tool_uri: str = DEFAULT_TOOL_URI,
    doc_page: str = "docs/LINTING.md",
    properties: Mapping[str, Any] | None = None,
) -> dict:
    """Render a diagnostic report as a SARIF 2.1.0 log (JSON-ready dict).

    Parameters
    ----------
    report:
        A :class:`~repro.lint.diagnostics.LintReport` (or anything that
        iterates diagnostics and exposes ``system_name``).
    tool_name:
        SARIF ``tool.driver.name``, e.g. ``"repro-lint"``.
    rules:
        Registered rules to publish as ``reportingDescriptor`` entries.
    tool_uri / doc_page:
        Build the per-rule ``helpUri`` anchors.
    properties:
        Extra entries merged into the run's ``properties`` bag (the
        ``system`` name is always present).
    """
    rules = tuple(rules)
    rule_index = {rule.code: index for index, rule in enumerate(rules)}
    bag: dict[str, Any] = {"system": report.system_name}
    if properties:
        bag.update(properties)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": tool_uri,
                        "rules": [
                            _rule_descriptor(rule, tool_uri, doc_page)
                            for rule in rules
                        ],
                    }
                },
                "properties": bag,
                "results": [
                    _result(diagnostic, rule_index) for diagnostic in report
                ],
            }
        ],
    }


#: Subset of the official SARIF 2.1.0 schema covering exactly the
#: constructs :func:`sarif_log` emits.  Field names, required sets and the
#: ``version`` / ``level`` enums match the upstream schema, so a log that
#: passes here passes the full schema for these constructs too.
SARIF_MINIMAL_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {"type": "string"}
                                                    },
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                                "helpUri": {
                                                    "type": "string",
                                                    "format": "uri",
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "properties": {"type": "object"},
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "logicalLocations": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "properties": {
                                                        "fullyQualifiedName": {
                                                            "type": "string"
                                                        },
                                                        "kind": {"type": "string"},
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def validate_sarif(log: dict) -> None:
    """Validate a SARIF log against :data:`SARIF_MINIMAL_SCHEMA`.

    Raises ``jsonschema.ValidationError`` on mismatch.  When
    :mod:`jsonschema` is not installed the structural ``required`` /
    ``version`` checks are performed by hand so the function still
    catches gross malformations.
    """
    try:
        import jsonschema
    except ImportError:  # pragma: no cover - depends on environment
        if log.get("version") != SARIF_VERSION:
            raise ValueError(
                f"not a SARIF {SARIF_VERSION} log: version={log.get('version')!r}"
            )
        if not isinstance(log.get("runs"), list) or not log["runs"]:
            raise ValueError("SARIF log has no runs")
        for run in log["runs"]:
            if "tool" not in run or "results" not in run:
                raise ValueError("SARIF run missing tool/results")
        return
    jsonschema.validate(log, SARIF_MINIMAL_SCHEMA)
