"""Rendering of a flow analysis: text, JSON and SARIF.

The findings layer reuses the linter's diagnostics machinery: the
flow-backed rules R013/R014 live in the ordinary rule registry
(:mod:`repro.lint.rules`, gated on the ``bounds`` ingredient), so
``repro flow`` and a bounds-equipped ``lint_system()`` call emit
byte-identical diagnostics.  SARIF output goes through the shared
emitter (:mod:`repro.report.sarif`) under the ``repro-flow`` tool
identity.
"""

from __future__ import annotations

import json

from repro.flow.analysis import FlowAnalysis
from repro.flow.bounds import FLOW_SCHEMA_VERSION
from repro.lint.diagnostics import LintReport, Severity
from repro.lint.rules import LintRule, lint_system, registered_rules
from repro.report.sarif import sarif_log

__all__ = [
    "FLOW_TOOL_NAME",
    "FLOW_RULE_CODES",
    "FlowReport",
    "flow_report",
    "flow_rules",
]

FLOW_TOOL_NAME = "repro-flow"

#: The flow-backed rules of the lint registry (the ``bounds`` ingredient).
FLOW_RULE_CODES = ("R013", "R014")


def flow_rules() -> tuple[LintRule, ...]:
    """The registered flow-backed lint rules, registry order."""
    return tuple(r for r in registered_rules() if r.code in FLOW_RULE_CODES)


class FlowReport:
    """One flow analysis plus its findings, ready for rendering."""

    def __init__(self, analysis: FlowAnalysis, findings: LintReport) -> None:
        self.analysis = analysis
        self.findings = findings

    @property
    def system_name(self) -> str:
        return self.analysis.system.name

    def fails_at(self, threshold: Severity) -> bool:
        """Whether any finding is at or above ``threshold`` (CI gating)."""
        return self.findings.fails_at(threshold)

    def summary(self) -> str:
        """One-line totals mirroring :meth:`LintReport.summary`."""
        return self.findings.summary()

    def render_text(self) -> str:
        analysis = self.analysis
        system = analysis.system
        flows = analysis.module_flows
        n_exact = sum(1 for flow in flows.values() if flow.exact)
        lines = [f"static bit-flow analysis for system {system.name!r}"]
        lines.append(
            f"  transfer masks: {n_exact}/{len(flows)} modules exact, "
            f"{len(flows) - n_exact} T (opaque)"
        )
        for part in analysis.bounds.render_text().splitlines()[1:]:
            lines.append(part)
        exposure = analysis.exposure_bounds()
        if exposure:
            lines.append("  exposure (system input -> system output):")
            for (source, out), bounds in sorted(exposure.items()):
                lines.append(f"    {source} -> {out}  {bounds}")
        prunable = analysis.prunable_targets()
        if prunable:
            lines.append("  statically-proven-zero targets (prunable):")
            for module, input_signal in prunable:
                lines.append(f"    {module}: {input_signal}")
        if len(self.findings):
            lines.append("  findings:")
            for diagnostic in self.findings:
                for part in diagnostic.render().splitlines():
                    lines.append(f"    {part}")
        lines.append(self.summary())
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        analysis = self.analysis
        return {
            "schema_version": FLOW_SCHEMA_VERSION,
            "system": self.system_name,
            "bounds": analysis.bounds.to_jsonable(),
            "exposure": [
                {
                    "input": source,
                    "output": out,
                    "lo": bounds.lo,
                    "hi": bounds.hi,
                }
                for (source, out), bounds in sorted(
                    analysis.exposure_bounds().items()
                )
            ],
            "prunable_targets": [
                {"module": module, "input": input_signal}
                for module, input_signal in analysis.prunable_targets()
            ],
            "findings": self.findings.to_jsonable(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent)

    def to_sarif(self) -> dict:
        """SARIF 2.1.0 log via the shared emitter (tool ``repro-flow``)."""
        analysis = self.analysis
        n_zero = sum(
            1 for _, bounds in analysis.bounds.items() if bounds.proves_zero
        )
        return sarif_log(
            self.findings,
            tool_name=FLOW_TOOL_NAME,
            rules=flow_rules(),
            doc_page="docs/STATIC_ANALYSIS.md",
            properties={
                "flow_schema_version": FLOW_SCHEMA_VERSION,
                "arcs": len(analysis.bounds),
                "arcs_proven_zero": n_zero,
                "prunable_targets": len(analysis.prunable_targets()),
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowReport {self.system_name!r} "
            f"arcs={len(self.analysis.bounds)} findings={len(self.findings)}>"
        )


def flow_report(analysis: FlowAnalysis) -> FlowReport:
    """Run the flow-backed lint rules over an analysis and package both."""
    findings = lint_system(
        analysis.system, bounds=analysis, select=FLOW_RULE_CODES
    )
    return FlowReport(analysis, findings)
