"""The interval abstract domain and its per-arc matrix container.

The analysis abstracts a permeability :math:`P^M_{i,k} \\in [0, 1]` by
a closed interval :class:`BoundsInterval` ``[lo, hi]``:

* a module with derived transfer masks and a fully analyzable error
  band gets a *point* interval (``lo == hi``) — the bit-linear
  semantics make the permeability exactly computable;
* the ⊤ element ``[0, 1]`` abstracts modules whose behaviour the
  analysis cannot see (no ``vector_plan()``) or error models whose
  corruption is not a pure XOR;
* mixed cases land in between — every analyzable model contributes a
  certain 0 or 1, every opaque one contributes the full interval.

:class:`StaticBoundsMatrix` mirrors the container ergonomics of
:class:`~repro.core.permeability.PermeabilityMatrix`: entries are keyed
by (module, input signal, output signal), iterated in system pair
order, validated against the system topology, and serialised to the
same ``{"system": ..., "entries": [...]}`` JSON shape.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator

from repro.core.permeability import PermeabilityMatrix
from repro.model.errors import ModelError
from repro.model.system import SystemModel

__all__ = [
    "FLOW_SCHEMA_VERSION",
    "BoundsInterval",
    "StaticBoundsMatrix",
    "UnknownArcError",
]

#: Version of the flow JSON report layout.
FLOW_SCHEMA_VERSION = 1

#: Tolerance under which an interval counts as a point (``lo == hi``).
_EXACT_ATOL = 1e-12

PairKey = tuple[str, str, str]


class UnknownArcError(ModelError):
    """A (module, input, output) key not present in the system topology."""

    def __init__(self, module: str, input_signal: str, output_signal: str):
        super().__init__(
            f"system has no arc ({module!r}, {input_signal!r}, "
            f"{output_signal!r})"
        )


@dataclass(frozen=True)
class BoundsInterval:
    """A closed sub-interval of ``[0, 1]`` bounding one permeability."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo <= self.hi <= 1.0):
            raise ValueError(
                f"invalid bounds interval [{self.lo}, {self.hi}]: "
                "need 0 <= lo <= hi <= 1"
            )

    @property
    def exact(self) -> bool:
        """Whether the interval is a point (the bound is the value)."""
        return self.hi - self.lo <= _EXACT_ATOL

    @property
    def is_top(self) -> bool:
        """Whether this is the no-information element ``[0, 1]``."""
        return self.lo == 0.0 and self.hi == 1.0

    @property
    def proves_zero(self) -> bool:
        """Whether the arc provably never propagates (``hi == 0``)."""
        return self.hi == 0.0

    def contains(self, value: float, atol: float = 1e-9) -> bool:
        """Whether a measured permeability lies within the interval."""
        return self.lo - atol <= value <= self.hi + atol

    def to_dict(self) -> dict:
        return {"lo": self.lo, "hi": self.hi}

    def __str__(self) -> str:
        if self.exact:
            return f"={self.lo:.4f}"
        return f"[{self.lo:.4f}, {self.hi:.4f}]"


#: The no-information element: any permeability is possible.
TOP = BoundsInterval(0.0, 1.0)


class StaticBoundsMatrix:
    """Interval bounds for every (module, input, output) arc.

    The static counterpart of
    :class:`~repro.core.permeability.PermeabilityMatrix`: same keying,
    same iteration order, same completeness discipline — so measured
    and statically-bounded matrices can be walked side by side.
    """

    def __init__(self, system: SystemModel) -> None:
        self._system = system
        self._entries: dict[PairKey, BoundsInterval] = {}
        self._valid_pairs = set(system.pair_index())

    @property
    def system(self) -> SystemModel:
        return self._system

    def _check_pair(
        self, module: str, input_signal: str, output_signal: str
    ) -> PairKey:
        key = (module, input_signal, output_signal)
        if key not in self._valid_pairs:
            raise UnknownArcError(module, input_signal, output_signal)
        return key

    def set(
        self,
        module: str,
        input_signal: str,
        output_signal: str,
        bounds: BoundsInterval,
    ) -> None:
        """Assign the bounds of one arc."""
        key = self._check_pair(module, input_signal, output_signal)
        self._entries[key] = bounds

    def get(
        self, module: str, input_signal: str, output_signal: str
    ) -> BoundsInterval:
        """The bounds of one arc (raises if not yet assigned)."""
        key = self._check_pair(module, input_signal, output_signal)
        try:
            return self._entries[key]
        except KeyError:
            raise UnknownArcError(module, input_signal, output_signal) from None

    def get_or_none(
        self, module: str, input_signal: str, output_signal: str
    ) -> BoundsInterval | None:
        key = self._check_pair(module, input_signal, output_signal)
        return self._entries.get(key)

    def __contains__(self, key: PairKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[tuple[PairKey, BoundsInterval]]:
        """All assigned (arc, bounds) entries in system pair order."""
        for key in self._system.pair_index():
            if key in self._entries:
                yield key, self._entries[key]

    def is_complete(self) -> bool:
        """Whether every arc of every module has bounds."""
        return len(self._entries) == len(self._valid_pairs)

    def missing_pairs(self) -> tuple[PairKey, ...]:
        """Arcs without bounds, in system pair order."""
        return tuple(
            key for key in self._system.pair_index() if key not in self._entries
        )

    def require_complete(self) -> None:
        missing = self.missing_pairs()
        if missing:
            module, input_signal, output_signal = missing[0]
            raise UnknownArcError(module, input_signal, output_signal)

    # ------------------------------------------------------------------
    # Containment against a measured matrix
    # ------------------------------------------------------------------

    def violations(
        self, measured: PermeabilityMatrix, atol: float = 1e-9
    ) -> tuple[str, ...]:
        """Arcs whose measured permeability escapes the static bounds.

        Only arcs present in *both* matrices are compared.  An empty
        tuple means the measurement is consistent with the analysis —
        the soundness contract of the abstract interpretation.
        """
        problems = []
        for (module, i, o), bounds in self.items():
            value = measured.get_or_none(module, i, o)
            if value is None:
                continue
            if not bounds.contains(value, atol):
                problems.append(
                    f"({module}, {i}, {o}): measured {value:.6f} "
                    f"outside static bounds {bounds}"
                )
        return tuple(problems)

    def contains_matrix(
        self, measured: PermeabilityMatrix, atol: float = 1e-9
    ) -> bool:
        """Whether every measured arc lies within its static bounds."""
        return not self.violations(measured, atol)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_jsonable(self) -> dict:
        return {
            "schema_version": FLOW_SCHEMA_VERSION,
            "system": self._system.name,
            "entries": [
                {
                    "module": module,
                    "input": input_signal,
                    "output": output_signal,
                    "lo": bounds.lo,
                    "hi": bounds.hi,
                }
                for (module, input_signal, output_signal), bounds in self.items()
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent)

    @classmethod
    def from_jsonable(cls, data: dict, system: SystemModel) -> "StaticBoundsMatrix":
        if data.get("system") != system.name:
            raise ValueError(
                f"bounds for system {data.get('system')!r} do not match "
                f"{system.name!r}"
            )
        matrix = cls(system)
        for entry in data["entries"]:
            matrix.set(
                entry["module"],
                entry["input"],
                entry["output"],
                BoundsInterval(entry["lo"], entry["hi"]),
            )
        return matrix

    @classmethod
    def from_json(cls, text: str, system: SystemModel) -> "StaticBoundsMatrix":
        return cls.from_jsonable(json.loads(text), system)

    def render_text(self) -> str:
        """Human-readable per-arc table in system pair order."""
        lines = [f"static permeability bounds for system {self._system.name!r}"]
        for (module, i, o), bounds in self.items():
            tag = " (T)" if bounds.is_top else ""
            lines.append(f"  {module}: {i} -> {o}  {bounds}{tag}")
        if not self._entries:
            lines.append("  (no arcs)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StaticBoundsMatrix {self._system.name!r} "
            f"{len(self._entries)}/{len(self._valid_pairs)} arcs>"
        )
