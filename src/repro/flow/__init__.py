"""Static bit-flow permeability analysis (abstract interpretation).

The paper estimates every error permeability :math:`P^M_{i,k}` by
injection — thousands of simulated runs per (module, input) target.
But for the bit-linear module family that the batched kernel already
certifies via its vectorizability contract (``vector_plan()`` /
``vector_xor_mask(width)``), permeability is *statically decidable*: a
flipped bit propagates iff it survives every AND-mask along the way.

This package runs a bit-level influence (taint) abstract interpretation
over module semantics:

* exact per-module transfer masks are derived from ``vector_plan()``
  where modules expose it; everything else (opaque modules, the
  arrestment system's behavioural modules) falls back to the
  conservative ⊤ element ``[0, 1]``;
* marked self-feedback (``ModuleSpec.feedback_signals()``) is closed
  transitively, so higher-order feedback round-trips are covered;
* the result is a :class:`StaticBoundsMatrix` of ``[lo, hi]`` interval
  bounds for every (module, input, output) arc — mirroring
  :class:`~repro.core.permeability.PermeabilityMatrix` — plus composed
  input→output exposure bounds from a fixpoint over the signal graph.

Consumers: :class:`~repro.injection.campaign.InjectionCampaign` prunes
statically-proven-zero targets (``CampaignConfig.static_prune``), the
differential oracles check measured ∈ bounds, and the linter's
flow-backed rules R013/R014 flag dead arcs and constant-masked bits.
"""

from repro.flow.analysis import (
    FlowAnalysis,
    ModuleFlow,
    analyse_run,
    analyse_system,
    derive_module_flows,
)
from repro.flow.bounds import (
    FLOW_SCHEMA_VERSION,
    BoundsInterval,
    StaticBoundsMatrix,
)
from repro.flow.report import (
    FLOW_TOOL_NAME,
    FlowReport,
    flow_report,
    flow_rules,
)

__all__ = [
    "FLOW_SCHEMA_VERSION",
    "FLOW_TOOL_NAME",
    "BoundsInterval",
    "FlowAnalysis",
    "FlowReport",
    "ModuleFlow",
    "StaticBoundsMatrix",
    "analyse_run",
    "analyse_system",
    "derive_module_flows",
    "flow_report",
    "flow_rules",
]
