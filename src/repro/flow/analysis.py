"""Transfer-mask derivation and the bit-level influence analysis.

The abstract interpretation works on the *positionwise* bit lattice:
every analysable module computes each output as
``out = XOR_i (in_i & mask[i][out])`` (the vectorizability contract of
the batched kernel), so an injected bit at position *b* of an input can
only ever appear at position *b* downstream of mask modules — influence
is a bitmask, and transfer is bitwise AND/OR.

Three sources of (im)precision:

* **Transfer masks** come from ``vector_plan()`` where a behavioural
  module instance exposes it; a module without the contract (the
  arrestment system's behavioural modules,
  :class:`~repro.verify.generators.OpaqueMaskModule`) is abstracted by
  ⊤ — any permeability in ``[0, 1]`` is possible.
* **Error models** contribute their corruption as a pure XOR mask via
  ``vector_xor_mask(width)``; models without the contract (stuck-at,
  offset, random replacement) are abstracted by ⊤ per model.
* **Feedback** — marked self-feedback (``ModuleSpec.feedback_signals``)
  is closed transitively inside the module, which is *exact* for at
  most one feedback signal (higher-order round-trips only AND-shrink
  the surviving bit set, and distinct round-trips surface at distinct
  activations, so deltas never cancel); with several feedback signals
  or a cross-module cycle the closure is kept as an upper bound only
  and the lower bound falls back to the direct term.

Soundness argument for pruning (``docs/STATIC_ANALYSIS.md`` has the
long form): a (module, input) target is prunable iff **every** arc of
its row has ``hi == 0``.  That requires every error model's flip mask
to be exactly known and to miss the transitive closure of every output
— in which case no perturbed bit ever leaves the (stateless, by the
``vector_plan`` contract) module, the system state stays equal to the
Golden Run everywhere, and every injection run would classify as
"fired, no divergence".  Recording the pruned row as exact zero-error
counts is therefore byte-identical to executing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.flow.bounds import TOP, BoundsInterval, StaticBoundsMatrix
from repro.injection.error_models import bit_flip_models
from repro.model.system import SystemModel

__all__ = [
    "FlowAnalysis",
    "ModuleFlow",
    "analyse_run",
    "analyse_system",
    "derive_module_flows",
]

TargetKey = tuple[str, str]


def _model_mask(model: Any, width: int) -> int | None:
    """The model's corruption as a pure XOR mask, or ``None``.

    Same probe as the batched kernel: only models advertising
    ``vector_xor_mask`` (pure bit-flips) are statically analysable.
    """
    probe = getattr(model, "vector_xor_mask", None)
    if not callable(probe):
        return None
    return probe(width)


@dataclass(frozen=True)
class ModuleFlow:
    """Derived transfer masks of one module, or ⊤ (``masks is None``).

    ``masks[input][output]`` is the positionwise AND-mask the module
    applies to that input when computing that output; an absent pair
    means no influence (mask 0).
    """

    name: str
    masks: Mapping[str, Mapping[str, int]] | None

    @property
    def exact(self) -> bool:
        """Whether the module's transfer function is fully known."""
        return self.masks is not None

    def mask(self, input_signal: str, output_signal: str) -> int:
        """The transfer mask of one arc (0 when absent)."""
        if self.masks is None:
            raise ValueError(f"module {self.name!r} has no derived masks (T)")
        return self.masks.get(input_signal, {}).get(output_signal, 0)


def derive_module_flows(
    system: SystemModel,
    modules: Mapping[str, Any] | None = None,
) -> dict[str, ModuleFlow]:
    """Probe behavioural instances for the vectorizability contract.

    ``modules`` maps module name to a behavioural instance (e.g.
    ``SimulationRun.modules``); any module without an instance or
    without a callable ``vector_plan`` falls back to ⊤.
    """
    instances = modules or {}
    flows: dict[str, ModuleFlow] = {}
    for name in system.module_names():
        instance = instances.get(name)
        plan_fn = getattr(instance, "vector_plan", None)
        if not callable(plan_fn):
            flows[name] = ModuleFlow(name, None)
            continue
        spec = system.module(name)
        masks: dict[str, dict[str, int]] = {i: {} for i in spec.inputs}
        for output_signal, terms in tuple(plan_fn()):
            for input_signal, mask in terms:
                masks.setdefault(input_signal, {})[output_signal] = mask
        flows[name] = ModuleFlow(name, masks)
    return flows


def _on_cross_module_cycle(system: SystemModel, module_name: str) -> bool:
    """Whether a module's outputs can re-enter it via *other* modules.

    Marked self-feedback (an output wired straight back as an input) is
    modelled exactly by the closure and does not count; any longer
    cycle makes the within-module closure an upper bound only.
    """
    spec = system.module(module_name)
    inputs = set(spec.inputs)
    frontier = list(spec.outputs)
    seen_signals: set[str] = set()
    seen_modules: set[str] = set()
    while frontier:
        signal = frontier.pop()
        if signal in seen_signals:
            continue
        seen_signals.add(signal)
        for port in system.consumers_of(signal):
            if port.module == module_name or port.module in seen_modules:
                continue
            seen_modules.add(port.module)
            for out in system.module(port.module).outputs:
                if out in inputs:
                    return True
                frontier.append(out)
    return False


class FlowAnalysis:
    """The result of one static bit-flow analysis of a system.

    Holds the per-arc :class:`StaticBoundsMatrix`, the derived
    :class:`ModuleFlow` transfer masks, the live/dead bit sets of every
    (module, input) target, and lazily-computed composed input→output
    exposure bounds.
    """

    def __init__(
        self,
        system: SystemModel,
        flows: Mapping[str, ModuleFlow],
        error_models: Sequence[Any] | None,
    ) -> None:
        self._system = system
        self._flows = dict(flows)
        self._error_models = (
            None if error_models is None else tuple(error_models)
        )
        if self._error_models is not None and not self._error_models:
            raise ValueError("error_models must be None or non-empty")
        self._wmask = {
            signal: (1 << system.signal(signal).width) - 1
            for signal in system.signal_names()
        }
        self._bounds = StaticBoundsMatrix(system)
        #: (module, input) -> live source-bit mask, or None for ⊤ modules.
        self._live: dict[TargetKey, int | None] = {}
        self._exposure: dict[TargetKey, BoundsInterval] | None = None
        self._analyse()

    # ------------------------------------------------------------------
    # Core per-arc analysis
    # ------------------------------------------------------------------

    def _closure(
        self, flow: ModuleFlow, input_signal: str
    ) -> tuple[dict[str, int], dict[str, int]]:
        """(direct, transitive-closure) survivor masks per output.

        Masks are in source-bit positions of ``input_signal`` (the
        transfer is positionwise), already truncated to each output's
        width.
        """
        spec = self._system.module(flow.name)
        w = self._wmask
        in_band = w[input_signal]
        direct = {
            o: flow.mask(input_signal, o) & in_band & w[o] for o in spec.outputs
        }
        reach = dict(direct)
        feedback = spec.feedback_signals()
        changed = True
        while changed:
            changed = False
            for fb in feedback:
                carried = reach.get(fb, 0) & w[fb]
                if not carried:
                    continue
                for o in spec.outputs:
                    add = carried & flow.mask(fb, o) & w[o]
                    if add & ~reach[o]:
                        reach[o] |= add
                        changed = True
        return direct, reach

    def _models_for(self, input_signal: str) -> Sequence[Any]:
        if self._error_models is not None:
            return self._error_models
        width = self._system.signal(input_signal).width
        return bit_flip_models(width)

    def _analyse(self) -> None:
        system = self._system
        for name in system.module_names():
            spec = system.module(name)
            flow = self._flows[name]
            if not flow.exact:
                for i in spec.inputs:
                    self._live[(name, i)] = None
                    for o in spec.outputs:
                        self._bounds.set(name, i, o, TOP)
                continue
            cross_cycle = _on_cross_module_cycle(system, name)
            exact_closure = len(spec.feedback_signals()) <= 1 and not cross_cycle
            for i in spec.inputs:
                direct, closure = self._closure(flow, i)
                escape = 0
                for o in spec.outputs:
                    escape |= closure[o]
                self._live[(name, i)] = escape
                models = self._models_for(i)
                width = system.signal(i).width
                masks = [_model_mask(model, width) for model in models]
                n = len(masks)
                for o in spec.outputs:
                    lo_mask = closure[o] if exact_closure else direct[o]
                    sure = maybe = 0
                    for m in masks:
                        if m is None:
                            maybe += 1
                        elif m & lo_mask:
                            sure += 1
                        elif m & closure[o]:
                            maybe += 1
                        elif cross_cycle and m & escape:
                            maybe += 1
                    self._bounds.set(
                        name, i, o,
                        BoundsInterval(sure / n, (sure + maybe) / n),
                    )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def system(self) -> SystemModel:
        return self._system

    @property
    def bounds(self) -> StaticBoundsMatrix:
        return self._bounds

    @property
    def module_flows(self) -> dict[str, ModuleFlow]:
        return dict(self._flows)

    @property
    def error_models(self) -> tuple[Any, ...] | None:
        """The analysed error band (``None``: full per-width bit-flip)."""
        return self._error_models

    def live_input_bits(self, module: str, input_signal: str) -> int | None:
        """Source bits of an input that may influence some output.

        ``None`` means the module is ⊤ — every bit must be assumed
        live.
        """
        return self._live[(module, input_signal)]

    def dead_input_bits(self, module: str, input_signal: str) -> int:
        """Bits *provably* unable to influence any output (0 for ⊤)."""
        live = self._live[(module, input_signal)]
        if live is None:
            return 0
        return self._wmask[input_signal] & ~live

    def prunable_targets(
        self, targets: Sequence[TargetKey] | None = None
    ) -> tuple[TargetKey, ...]:
        """Targets whose whole arc row is statically proven zero.

        Order follows ``targets`` when given, system declaration order
        otherwise.  A module without outputs is never pruned (there is
        no arc row to certify).
        """
        if targets is None:
            targets = [
                (name, i)
                for name in self._system.module_names()
                for i in self._system.module(name).inputs
            ]
        prunable = []
        for module, input_signal in targets:
            outputs = self._system.module(module).outputs
            if not outputs:
                continue
            if all(
                self._bounds.get(module, input_signal, o).proves_zero
                for o in outputs
            ):
                prunable.append((module, input_signal))
        return tuple(prunable)

    # ------------------------------------------------------------------
    # Composed input -> output exposure
    # ------------------------------------------------------------------

    def _reach_fixpoint(
        self, source: str, skip_direct: TargetKey | None = None
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Influence fixpoint over the signal graph from one system input.

        Returns ``(pos, srcany)``: per signal, the source bits whose
        influence is still position-aligned (pure mask-module paths)
        and the source bits whose position was scrambled by a ⊤ module.
        ``skip_direct=(module, output)`` zeroes the direct
        source→output term of that module — used to test whether a
        system output is influenced *only* through its direct arc.
        """
        system = self._system
        w = self._wmask
        pos = {signal: 0 for signal in system.signal_names()}
        srcany = dict(pos)
        pos[source] = w[source]
        changed = True
        while changed:
            changed = False
            for name in system.module_names():
                spec = system.module(name)
                flow = self._flows[name]
                for o in spec.outputs:
                    if flow.exact:
                        new_pos = 0
                        new_any = 0
                        for i in spec.inputs:
                            mask = flow.mask(i, o) & w[o]
                            if (
                                skip_direct == (name, o)
                                and i == source
                            ):
                                mask = 0
                            if not mask:
                                continue
                            new_pos |= pos[i] & mask
                            new_any |= srcany[i]
                    else:
                        touched = 0
                        for i in spec.inputs:
                            touched |= pos[i] | srcany[i]
                        new_pos = 0
                        new_any = touched
                    if new_pos & ~pos[o] or new_any & ~srcany[o]:
                        pos[o] |= new_pos
                        srcany[o] |= new_any
                        changed = True
        return pos, srcany

    def exposure_bounds(self) -> dict[TargetKey, BoundsInterval]:
        """Composed (system input, system output) exposure bounds.

        The upper bound counts the source bits that can reach the
        output at all (uniform single-bit-flip band at the source); the
        lower bound is non-trivial only when the output is influenced
        solely through a direct arc of its producing module, where the
        arc's own lower bound applies unchanged.
        """
        if self._exposure is not None:
            return dict(self._exposure)
        system = self._system
        exposure: dict[TargetKey, BoundsInterval] = {}
        for source in system.system_inputs:
            width = system.signal(source).width
            pos, srcany = self._reach_fixpoint(source)
            for out in system.system_outputs:
                influence = pos[out] | srcany[out]
                hi = bin(influence).count("1") / width
                hi = min(1.0, hi)
                lo = 0.0
                producer = system.producer_of(out)
                if (
                    influence
                    and producer is not None
                    and source in system.module(producer.module).inputs
                ):
                    rest_pos, rest_any = self._reach_fixpoint(
                        source, skip_direct=(producer.module, out)
                    )
                    if not (rest_pos[out] | rest_any[out]):
                        arc = self._bounds.get(producer.module, source, out)
                        lo = min(arc.lo, hi)
                exposure[(source, out)] = BoundsInterval(lo, hi)
        self._exposure = exposure
        return dict(exposure)


def analyse_system(
    system: SystemModel,
    modules: Mapping[str, Any] | None = None,
    error_models: Sequence[Any] | None = None,
) -> FlowAnalysis:
    """Run the static bit-flow analysis over one system.

    Parameters
    ----------
    system:
        The system topology.
    modules:
        Behavioural module instances to probe for transfer masks
        (e.g. ``SimulationRun.modules``).  ``None``: every module is ⊤.
    error_models:
        The error band to bound against — the campaign's model set.
        ``None``: the canonical structural band, one
        :class:`~repro.injection.error_models.BitFlip` per bit of each
        target input.
    """
    flows = derive_module_flows(system, modules)
    return FlowAnalysis(system, flows, error_models)


def analyse_run(
    runner: Any, error_models: Sequence[Any] | None = None
) -> FlowAnalysis:
    """Analyse a :class:`~repro.simulation.runtime.SimulationRun`."""
    return analyse_system(runner.system, runner.modules, error_models)
