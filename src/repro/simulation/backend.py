"""Execution backends: how a campaign's injection runs get stepped.

The campaign engine (:mod:`repro.injection.campaign`) decides *what* to
run — the (target, instant, error-model) grid of one test case — while
a :class:`SimulationBackend` decides *how* those injection runs
execute:

``reference``
    The frame-stepping runtime of :mod:`repro.simulation.runtime`, one
    injection run at a time.  Always available, always correct; every
    other backend is defined by byte-identity against it.

``batched``
    The vectorized lane kernel of :mod:`repro.simulation.batched`:
    all injection runs of one (case, injection instant) group stepped
    in lockstep as numpy bitwise ops over a ``(n_lanes, n_signals)``
    int64 array, retiring lanes individually on reconvergence.  Falls
    back to the reference path per run (or per module) whenever a
    precondition for vectorization does not hold, so arbitrary systems
    still execute correctly.  Requires numpy.

Backends do not import the injection layer.  They operate on a duck-
typed *case context* handed over by the campaign, which exposes the
planned injection points in grid order plus two callbacks: execute one
injection the reference way, or fold an already-computed
:class:`~repro.simulation.runtime.RunResult` into a campaign outcome.
This keeps ``repro.simulation`` free of upward dependencies while the
campaign retains ownership of observers, comparison and bookkeeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Protocol, runtime_checkable

from repro.model.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.runtime import RunResult

__all__ = [
    "SimulationBackend",
    "ReferenceBackend",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
]


class UnknownBackendError(SimulationError):
    """A backend name does not match any registered implementation."""


class CaseContext(Protocol):
    """What a backend receives per test case (provided by the campaign).

    ``injection_points()`` yields the case's planned injections in the
    campaign's canonical grid order; each item carries ``module``,
    ``signal``, ``time_ms``, ``model`` and ``checkpoint`` attributes.
    ``runner`` is the case's live runtime, ``golden_ref`` its prepared
    Golden-Run reference (``None`` without a recorded Golden Run),
    ``config`` the campaign configuration and ``metrics`` the
    observer's metrics registry (``None`` without observability).
    """

    runner: Any
    golden_ref: Any
    config: Any
    metrics: Any

    def injection_points(self) -> Iterator[Any]: ...

    def run_reference(self, point: Any) -> tuple[Any, "RunResult"]:
        """Execute one injection with the reference runtime."""

    def emit_result(
        self,
        point: Any,
        injected: "RunResult",
        fired_at_ms: int | None,
    ) -> tuple[Any, "RunResult"]:
        """Fold a backend-computed run into a campaign outcome."""


@runtime_checkable
class SimulationBackend(Protocol):
    """One strategy for executing a case's injection runs."""

    name: str

    def case_injections(
        self, context: CaseContext
    ) -> Iterator[tuple[Any, "RunResult"]]:
        """Yield ``(outcome, run_result)`` per injection, in grid order."""


class ReferenceBackend:
    """The frame-stepping runtime, one injection run at a time."""

    name = "reference"

    def case_injections(
        self, context: CaseContext
    ) -> Iterator[tuple[Any, "RunResult"]]:
        for point in context.injection_points():
            yield context.run_reference(point)


#: Names accepted by :func:`get_backend` (and the ``--backend`` CLI
#: flags / ``REPRO_BACKEND`` environment default).
_BACKEND_NAMES = ("reference", "batched")


def available_backends() -> tuple[str, ...]:
    """Registered backend names, reference first."""
    return _BACKEND_NAMES


def get_backend(name: str) -> SimulationBackend:
    """Instantiate the backend registered under ``name``.

    The batched backend is imported lazily so that the reference path
    never needs numpy; a missing numpy surfaces only when the batched
    backend is actually requested.
    """
    if name == "reference":
        return ReferenceBackend()
    if name == "batched":
        from repro.simulation.batched import BatchedBackend

        return BatchedBackend()
    raise UnknownBackendError(
        f"unknown simulation backend {name!r}; "
        f"expected one of {', '.join(_BACKEND_NAMES)}"
    )
