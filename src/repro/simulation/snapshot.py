"""Checkpoint state capture: the ``Snapshotable`` protocol.

Every injection run of a campaign is bit-identical to its Golden Run up
to the injection instant (exactly one one-shot trap fires at a known
time, and everything executes in simulated time).  The campaign engine
therefore records the complete runtime state at each injection instant
during the Golden Run and replays only the *suffix* of every injection
run — the compositional-reuse idea of FastFlip applied to this
simulator.

For that to be sound, state capture must be *complete*: signal store,
simulated clock, environment/plant physics and every module's internal
state.  Objects participate through two small methods:

* ``state_dict()`` returns a picklable snapshot of all mutable state;
* ``load_state_dict(state)`` restores exactly that state without
  aliasing mutable containers into the snapshot (the same snapshot is
  restored once per injection run).

Objects that do not implement the protocol fall back to a ``deepcopy``
of their instance ``__dict__`` — always correct for plain Python
state, just slower and potentially larger than an explicit snapshot.

Beyond full checkpoints, the module also provides compact per-frame
*state digests* (:func:`state_digest`, :class:`FrameDigests`): a short
cryptographic fingerprint of the complete runtime state at a frame
boundary.  The Golden Run records one digest per simulated millisecond;
an injection run that believes its error has died out proves it by
matching its own digest against the Golden Run's at the same instant —
the reconvergence test of the fast-forward optimisation (see
:meth:`repro.simulation.runtime.SimulationRun.run_from`).  Digests are
computed by pickling the state payload with a pinned protocol, so two
processes holding bit-identical state produce bit-identical digests.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "Snapshotable",
    "snapshot_state",
    "restore_state",
    "digest_payload",
    "state_digest",
    "FrameDigests",
    "DIGEST_SIZE",
]

#: Bytes per state digest (blake2b is tunable; 16 bytes keep a full
#: 8-second Golden Run's digest track at 128 KiB).
DIGEST_SIZE = 16

#: Pickle protocol pinned for digest computation.  The digest of a
#: state must be stable across processes (parent records, workers
#: verify), so the serialisation format cannot float with the
#: interpreter's default.
_DIGEST_PICKLE_PROTOCOL = 4


@runtime_checkable
class Snapshotable(Protocol):
    """State capture/restore protocol for checkpointable objects."""

    def state_dict(self) -> dict[str, Any]:
        """A picklable snapshot of all mutable state."""

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore the state captured by :meth:`state_dict`.

        Must not alias mutable containers out of ``state``: the same
        snapshot may be restored many times.
        """


def snapshot_state(obj: Any) -> dict[str, Any]:
    """Capture ``obj``'s state via the protocol or the deepcopy fallback."""
    method = getattr(obj, "state_dict", None)
    if callable(method):
        return method()
    return copy.deepcopy(vars(obj))


def restore_state(obj: Any, state: dict[str, Any]) -> None:
    """Restore state captured by :func:`snapshot_state`."""
    method = getattr(obj, "load_state_dict", None)
    if callable(method):
        method(state)
        return
    obj.__dict__.clear()
    obj.__dict__.update(copy.deepcopy(state))


def digest_payload(obj: Any) -> Any:
    """``obj``'s state for digestion, *without* defensive copies.

    Unlike :func:`snapshot_state` the result is consumed immediately
    (pickled into a digest) and never stored, so the deepcopy fallback
    is unnecessary — the live ``__dict__`` is pickled as-is.
    """
    method = getattr(obj, "state_dict", None)
    if callable(method):
        return method()
    return vars(obj)


def state_digest(payload: Any) -> bytes:
    """A :data:`DIGEST_SIZE`-byte fingerprint of a state payload.

    Determinism contract: equal payloads (same values, same dict
    insertion orders — which checkpoint restore preserves) digest to
    equal bytes in any process, because the pickle protocol is pinned.
    """
    raw = pickle.dumps(payload, protocol=_DIGEST_PICKLE_PROTOCOL)
    return hashlib.blake2b(raw, digest_size=DIGEST_SIZE).digest()


@dataclass(frozen=True)
class FrameDigests:
    """Per-frame state digests of one run, packed into a single buffer.

    ``at(t)`` is the digest of the complete runtime state at the end of
    millisecond ``t`` (i.e. after frame ``t`` executed).  The packed
    ``bytes`` form is cheap to pickle once per campaign and to ship to
    worker processes.
    """

    data: bytes
    size: int = DIGEST_SIZE

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"digest size must be >= 1, got {self.size}")
        if len(self.data) % self.size:
            raise ValueError(
                f"digest buffer of {len(self.data)} bytes is not a "
                f"multiple of the digest size {self.size}"
            )

    def __len__(self) -> int:
        """Number of frames with a recorded digest."""
        return len(self.data) // self.size

    def at(self, frame: int) -> bytes:
        """The digest of frame ``frame`` (0-based)."""
        if not 0 <= frame < len(self):
            raise IndexError(
                f"no digest for frame {frame} (have {len(self)})"
            )
        start = frame * self.size
        return self.data[start : start + self.size]

    @classmethod
    def join(cls, digests: list[bytes], size: int = DIGEST_SIZE) -> "FrameDigests":
        """Pack per-frame digests (in frame order) into one buffer."""
        return cls(data=b"".join(digests), size=size)
