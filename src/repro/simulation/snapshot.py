"""Checkpoint state capture: the ``Snapshotable`` protocol.

Every injection run of a campaign is bit-identical to its Golden Run up
to the injection instant (exactly one one-shot trap fires at a known
time, and everything executes in simulated time).  The campaign engine
therefore records the complete runtime state at each injection instant
during the Golden Run and replays only the *suffix* of every injection
run — the compositional-reuse idea of FastFlip applied to this
simulator.

For that to be sound, state capture must be *complete*: signal store,
simulated clock, environment/plant physics and every module's internal
state.  Objects participate through two small methods:

* ``state_dict()`` returns a picklable snapshot of all mutable state;
* ``load_state_dict(state)`` restores exactly that state without
  aliasing mutable containers into the snapshot (the same snapshot is
  restored once per injection run).

Objects that do not implement the protocol fall back to a ``deepcopy``
of their instance ``__dict__`` — always correct for plain Python
state, just slower and potentially larger than an explicit snapshot.
"""

from __future__ import annotations

import copy
from typing import Any, Protocol, runtime_checkable

__all__ = ["Snapshotable", "snapshot_state", "restore_state"]


@runtime_checkable
class Snapshotable(Protocol):
    """State capture/restore protocol for checkpointable objects."""

    def state_dict(self) -> dict[str, Any]:
        """A picklable snapshot of all mutable state."""

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore the state captured by :meth:`state_dict`.

        Must not alias mutable containers out of ``state``: the same
        snapshot may be restored many times.
        """


def snapshot_state(obj: Any) -> dict[str, Any]:
    """Capture ``obj``'s state via the protocol or the deepcopy fallback."""
    method = getattr(obj, "state_dict", None)
    if callable(method):
        return method()
    return copy.deepcopy(vars(obj))


def restore_state(obj: Any, state: dict[str, Any]) -> None:
    """Restore state captured by :func:`snapshot_state`."""
    method = getattr(obj, "load_state_dict", None)
    if callable(method):
        method(state)
        return
    obj.__dict__.clear()
    obj.__dict__.update(copy.deepcopy(state))
