"""The embedded runtime: signal store, dispatcher and run loop.

Reproduces the execution model of the paper's target (Section 7.1): a
slot-based, non-preemptive schedule of software modules exchanging data
through signals, closed over an environment simulator that feeds the
hardware input registers and consumes the actuator outputs, all in
simulated time.

The runtime also provides the two hook points used by the
fault-injection environment (Section 7.3: "the target system was
instrumented with high-level software traps"):

* **read interceptors** see (and may replace) every value a module reads
  from one of its input signals — consumer-scoped injection, so other
  consumers of the same signal are unaffected;
* **store mutators** run once at the start of every millisecond and may
  rewrite stored signal values — producer-scoped injection.

Tracing is built in: every signal (or a chosen subset) is sampled at
the end of each millisecond into a :class:`~repro.simulation.traces.TraceSet`.

Implementation note: campaigns execute tens of thousands of runs of
several thousand milliseconds each, so the frame loop is written for
speed — per-slot dispatch lists, per-module input tuples and per-signal
width masks are precomputed, and hot paths bypass the checked
:class:`SignalStore` accessors (which remain the public interface).
"""

from __future__ import annotations

import dataclasses
from array import array
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping, Protocol, Sequence

from repro.model.errors import SimulationError, UnknownSignalError
from repro.model.module import SoftwareModule
from repro.model.system import SystemModel
from repro.simulation.scheduler import SlotSchedule
from repro.simulation.simtime import SimClock
from repro.simulation.snapshot import (
    FrameDigests,
    digest_payload,
    restore_state,
    snapshot_state,
    state_digest,
)
from repro.simulation.traces import SignalTrace, TraceSet

__all__ = [
    "SignalStore",
    "Environment",
    "ReadInterceptor",
    "StoreMutator",
    "RunResult",
    "RunCheckpoint",
    "GoldenReference",
    "SimulationRun",
]

#: Frames between repeated reconvergence digest checks while the signal
#: divergence set stays empty but hidden (module/plant) state still
#: differs — one 7 ms scheduling cycle of the paper's target.
_DIGEST_RETRY_FRAMES = 7


class SignalStore:
    """Shared-memory signal values, one slot per declared signal.

    Values are raw bit patterns, wrapped to each signal's width on
    write (the communication style of the target: shared variables and
    hardware registers).
    """

    def __init__(self, system: SystemModel) -> None:
        self._system = system
        self._masks: dict[str, int] = {
            name: (1 << spec.width) - 1 for name, spec in system.signals.items()
        }
        self._initials: dict[str, int] = {
            name: spec.wrap(spec.initial) for name, spec in system.signals.items()
        }
        self._values: dict[str, int] = dict(self._initials)

    def reset(self) -> None:
        """Restore every signal to its declared initial value."""
        self._values = dict(self._initials)

    def read(self, signal: str) -> int:
        """Current raw value of a signal."""
        try:
            return self._values[signal]
        except KeyError:
            raise UnknownSignalError(signal) from None

    def write(self, signal: str, value: int) -> None:
        """Store a raw value, wrapped to the signal's declared width."""
        mask = self._masks.get(signal)
        if mask is None:
            raise UnknownSignalError(signal)
        self._values[signal] = value & mask

    def snapshot(self) -> dict[str, int]:
        """A copy of all current signal values."""
        return dict(self._values)

    def state_dict(self) -> dict:
        """Snapshot for checkpoint/restore (masks/initials are static)."""
        return {"values": dict(self._values)}

    def load_state_dict(self, state: dict) -> None:
        """Restore checkpointed values *in place*.

        The values dict is mutated rather than rebound: the runtime's
        hot loops hold direct references to it.
        """
        values = self._values
        values.clear()
        values.update(state["values"])

    def initial_values(self) -> dict[str, int]:
        """A copy of the declared (wrapped) initial signal values."""
        return dict(self._initials)

    @property
    def signals(self) -> tuple[str, ...]:
        return tuple(self._values)


class _WriteTrackingDict(dict):
    """A signal-values dict recording every key assigned this frame.

    Swapped into :attr:`SignalStore._values` while a fast-forward run
    executes: every write site in the runtime (module outputs,
    ``SignalStore.write`` from environments and mutators) goes through
    Python-level ``__setitem__``, so the divergence set can be updated
    incrementally from ``written`` instead of scanning the whole store
    each frame.  C-level bulk operations (``dict.update``/``clear`` as
    used by checkpoint restore) bypass the tracking on purpose —
    restores rebuild state wholesale, outside any fast-forward frame.
    """

    __slots__ = ("written",)

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.written: set[str] = set()

    def __setitem__(self, key: str, value: int) -> None:
        dict.__setitem__(self, key, value)
        self.written.add(key)


class GoldenReference:
    """A Golden Run prepared for reconvergence fast-forward.

    Holds zero-copy-capable sample buffers (``array('q')`` or
    ``memoryview`` of format ``'q'``, e.g. views into a shared-memory
    segment), the per-frame state digests recorded alongside the Golden
    Run, and the run's final store/telemetry so a fast-forwarded
    injection run can splice the Golden-Run suffix and still report
    byte-identical results.

    Not picklable by design (views aren't): worker processes build
    their own instance over the shared buffer via
    :func:`repro.simulation.traces.trace_views`.
    """

    def __init__(
        self,
        signals: Sequence[str],
        duration_ms: int,
        samples: Mapping[str, "array | memoryview"],
        digests: FrameDigests | None,
        initials: Mapping[str, int],
        final_signals: Mapping[str, int],
        telemetry: Mapping[str, float],
    ) -> None:
        self.signals = tuple(signals)
        self.duration_ms = duration_ms
        self.samples = dict(samples)
        self.digests = digests
        self.initials = dict(initials)
        self.final_signals = dict(final_signals)
        self.telemetry = dict(telemetry)
        for signal in self.signals:
            if len(self.samples[signal]) != duration_ms:
                raise SimulationError(
                    f"golden trace of {signal!r} has "
                    f"{len(self.samples[signal])} samples, expected {duration_ms}"
                )
        if digests is not None and len(digests) != duration_ms:
            raise SimulationError(
                f"golden run records {len(digests)} frame digests for a "
                f"{duration_ms} ms run"
            )
        self._changes: dict[int, tuple[str, ...]] | None = None

    @classmethod
    def from_result(
        cls,
        result: RunResult,
        digests: FrameDigests | None,
        initials: Mapping[str, int],
    ) -> "GoldenReference":
        """Build a reference from a Golden :class:`RunResult`."""
        return cls(
            signals=result.traces.signals,
            duration_ms=result.duration_ms,
            samples={trace.signal: trace.samples for trace in result.traces},
            digests=digests,
            initials=initials,
            final_signals=result.final_signals,
            telemetry=result.telemetry,
        )

    def frame_changes(self) -> dict[int, tuple[str, ...]]:
        """Signals whose Golden-Run value changed at each frame.

        ``frame_changes()[t]`` lists the signals with
        ``GR[t] != GR[t-1]`` (frame 0 compares against the declared
        initial values).  Combined with the injection run's per-frame
        write set, these are the only signals whose divergence status
        can have changed in frame ``t`` — everything else is equal on
        both sides by induction.  Computed once, lazily.
        """
        if self._changes is None:
            changes: dict[int, list[str]] = {}
            for signal in self.signals:
                samples = self.samples[signal]
                prev = self.initials[signal]
                for t in range(self.duration_ms):
                    value = samples[t]
                    if value != prev:
                        changes.setdefault(t, []).append(signal)
                        prev = value
            self._changes = {t: tuple(names) for t, names in changes.items()}
        return self._changes

    def suffix_bytes(self, signal: str, start_frame: int) -> memoryview:
        """Byte view of a signal's samples from ``start_frame`` on."""
        return memoryview(self.samples[signal])[start_frame:].cast("B")

    def prefix_array(self, signal: str, n_frames: int) -> array:
        """A mutable copy of a signal's first ``n_frames`` samples."""
        prefix = array("q")
        prefix.frombytes(memoryview(self.samples[signal])[:n_frames].cast("B"))
        return prefix


class Environment(Protocol):
    """The plant/environment simulator seen by the runtime.

    The paper's setup ported the original environment simulator ("the
    environment experienced by the real system and the desktop system
    was identical"); any object with these four methods can play that
    role.
    """

    def reset(self) -> None:
        """Restore the physical state for a fresh run."""

    def before_software(self, now_ms: int, store: SignalStore) -> None:
        """Advance physics by 1 ms and refresh the system-input signals."""

    def after_software(self, now_ms: int, store: SignalStore) -> None:
        """Consume the system-output signals (actuator commands)."""

    def telemetry(self) -> Mapping[str, float]:
        """Physical quantities for reporting (not visible to software)."""


class ReadInterceptor(Protocol):
    """Hook seeing every module input read; may replace the value."""

    def on_read(self, module: str, signal: str, value: int, now_ms: int) -> int:
        """Return the value the module should observe."""


class StoreMutator(Protocol):
    """Hook run at the start of each millisecond; may rewrite the store."""

    def apply(self, store: SignalStore, now_ms: int) -> None:
        """Mutate stored signals in place."""


@dataclass
class RunResult:
    """Everything recorded during one simulation run."""

    #: Per-signal, per-millisecond traces.
    traces: TraceSet
    #: Total simulated duration in milliseconds.
    duration_ms: int
    #: Final raw value of every signal.
    final_signals: dict[str, int]
    #: Final environment telemetry (physical quantities).
    telemetry: dict[str, float] = field(default_factory=dict)
    #: Frame at which the run provably re-matched its Golden Run and the
    #: remaining frames were spliced from the Golden-Run traces
    #: (``None``: the run was simulated to the end).  Doubles as the
    #: paper's error-lifetime measurement: the error's effect set was
    #: empty from this instant on.
    reconverged_at_ms: int | None = None
    #: Frames *not* simulated thanks to reconvergence fast-forward.
    frames_fast_forwarded: int = 0


@dataclass(frozen=True)
class RunCheckpoint:
    """Complete mid-run state of a :class:`SimulationRun`.

    Captured with :meth:`SimulationRun.checkpoint` after ``time_ms``
    simulated milliseconds; resuming with
    :meth:`SimulationRun.run_from` produces results byte-for-byte
    identical to a full run, because the capture covers *all* mutable
    state (store, clock, environment, every module) plus the trace
    prefix recorded so far.

    Checkpoints are plain picklable data, so they can be shipped to
    worker processes (the grid-sharded campaign path does exactly
    that).  Installed hooks are deliberately *not* part of a
    checkpoint — traps are per-run instrumentation.
    """

    #: Simulated milliseconds executed before the capture.
    time_ms: int
    #: :class:`SignalStore` state.
    store: dict
    #: :class:`~repro.simulation.simtime.SimClock` state.
    clock: dict
    #: Environment/plant state (snapshot or deepcopy fallback).
    environment: Any
    #: Per-module internal state, keyed by module name.
    modules: dict[str, Any]
    #: Recorded samples up to ``time_ms``, per traced signal — or
    #: ``None`` for a *stripped* checkpoint whose prefix is
    #: reconstructed from the shared Golden-Run traces at resume time
    #: (the IR prefix is bit-identical to the GR prefix by
    #: construction, so shipping it per checkpoint is pure redundancy).
    trace_prefix: tuple[tuple[str, array], ...] | None

    def without_trace_prefix(self) -> "RunCheckpoint":
        """A stripped copy for shipping alongside a shared Golden Run.

        :meth:`SimulationRun.run_from` rebuilds the prefix from the
        ``golden`` reference, so worker payloads need not repeat the
        trace prefix once per checkpoint.
        """
        return dataclasses.replace(self, trace_prefix=None)


class SimulationRun:
    """One executable instance of a modelled system.

    Parameters
    ----------
    system:
        The static topology (used for signal widths and validation).
    modules:
        Behavioural module instances; exactly one per scheduled module.
    schedule:
        The slot schedule to dispatch.
    environment:
        The plant simulator closing the loop.
    slot_signal:
        Name of the signal carrying the current slot number
        (``ms_slot_nbr`` in the target system).  ``None`` falls back to
        ``now_ms % n_slots``, for systems without a software slot
        counter.
    trace_signals:
        Signals to record; defaults to *all* signals (the paper traces
        every input and output signal).
    """

    def __init__(
        self,
        system: SystemModel,
        modules: Sequence[SoftwareModule],
        schedule: SlotSchedule,
        environment: Environment,
        slot_signal: str | None = None,
        trace_signals: Sequence[str] | None = None,
    ) -> None:
        self._system = system
        self._schedule = schedule
        self._environment = environment
        self._modules: dict[str, SoftwareModule] = {}
        for module in modules:
            if module.name in self._modules:
                raise SimulationError(f"duplicate module instance: {module.name!r}")
            if module.name not in system.modules:
                raise SimulationError(
                    f"module instance {module.name!r} not declared in system "
                    f"{system.name!r}"
                )
            self._modules[module.name] = module
        for name in schedule.all_modules():
            if name not in self._modules:
                raise SimulationError(f"scheduled module {name!r} has no instance")
        if slot_signal is not None and slot_signal not in system.signals:
            raise UnknownSignalError(slot_signal)
        self._slot_signal = slot_signal
        self._trace_signals = (
            tuple(trace_signals) if trace_signals is not None else system.signal_names()
        )
        for signal in self._trace_signals:
            if signal not in system.signals:
                raise UnknownSignalError(signal)
        self._store = SignalStore(system)
        self._clock = SimClock()
        self._read_interceptors: list[ReadInterceptor] = []
        self._store_mutators: list[StoreMutator] = []
        #: Optional metrics registry timing checkpoint save/restore
        #: (set via :meth:`set_metrics`; ``None`` means no overhead).
        self._metrics = None
        #: Live per-signal sample sinks while a run is in progress
        #: (checkpoints capture their prefix).
        self._live_samples: list[tuple[str, array]] | None = None
        # --- precomputed dispatch tables (hot loop) -------------------
        #: Per-slot dispatch: list of (module instance, activate bound
        #: method, inputs tuple, allowed outputs, masks).
        self._contexts: dict[str, tuple] = {}
        for name, module in self._modules.items():
            spec = module.spec
            masks = {
                signal: (1 << system.signal(signal).width) - 1
                for signal in spec.outputs
            }
            self._contexts[name] = (
                name,
                module,
                spec.inputs,
                frozenset(spec.outputs),
                masks,
            )
        self._dispatch: tuple[tuple, ...] = tuple(
            tuple(self._contexts[name] for name in schedule.dispatch_order(slot))
            for slot in range(schedule.n_slots)
        )

    # ------------------------------------------------------------------
    # Hook registration
    # ------------------------------------------------------------------

    @property
    def store(self) -> SignalStore:
        """The live signal store (for inspection between runs)."""
        return self._store

    @property
    def system(self) -> SystemModel:
        return self._system

    @property
    def schedule(self) -> SlotSchedule:
        """The slot schedule driving module dispatch."""
        return self._schedule

    @property
    def environment(self) -> Environment:
        """The environment instance driving this run."""
        return self._environment

    @property
    def modules(self) -> Mapping[str, SoftwareModule]:
        """Module instances by name, in construction order."""
        return MappingProxyType(self._modules)

    @property
    def slot_signal(self) -> str | None:
        """The data-driven slot-selector signal, if configured."""
        return self._slot_signal

    @property
    def trace_signals(self) -> tuple[str, ...]:
        """Signals recorded into per-run traces, in trace order."""
        return self._trace_signals

    def add_read_interceptor(self, interceptor: ReadInterceptor) -> None:
        """Install a consumer-scoped trap on module input reads."""
        self._read_interceptors.append(interceptor)

    def add_store_mutator(self, mutator: StoreMutator) -> None:
        """Install a producer-scoped trap on the signal store."""
        self._store_mutators.append(mutator)

    def clear_hooks(self) -> None:
        """Remove all installed traps (between campaign runs)."""
        self._read_interceptors.clear()
        self._store_mutators.clear()

    def set_metrics(self, registry) -> None:
        """Attach a metrics registry timing checkpoint save/restore.

        ``registry`` is any object with a ``timer(name)`` span context
        manager (see :class:`repro.obs.metrics.MetricsRegistry`);
        ``None`` detaches.  Durations land in the
        ``checkpoint.save.seconds`` / ``checkpoint.restore.seconds``
        histograms.
        """
        self._metrics = registry

    @property
    def hooks_installed(self) -> bool:
        """Whether any read interceptor or store mutator is installed.

        Campaigns assert this is ``False`` before arming a trap, so a
        leaked hook from a previous run cannot contaminate the next.
        """
        return bool(self._read_interceptors or self._store_mutators)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Restore software, store, clock and environment to time zero."""
        self._clock.reset()
        self._store.reset()
        self._environment.reset()
        for module in self._modules.values():
            module.reset()

    def _activate_context(self, context: tuple, now_ms: int) -> None:
        """Execute one module activation (hot path)."""
        name, module, input_names, allowed_outputs, masks = context
        values = self._store._values
        if self._read_interceptors:
            inputs = {}
            for signal in input_names:
                value = values[signal]
                for interceptor in self._read_interceptors:
                    value = interceptor.on_read(name, signal, value, now_ms)
                inputs[signal] = value
        else:
            inputs = {signal: values[signal] for signal in input_names}
        outputs = module.activate(inputs, now_ms)
        for signal, value in outputs.items():
            if signal not in allowed_outputs:
                raise SimulationError(
                    f"module {name!r} wrote undeclared output {signal!r}"
                )
            values[signal] = value & masks[signal]

    def step_ms(self) -> None:
        """Execute one millisecond frame."""
        now_ms = self._clock.now_ms
        self._environment.before_software(now_ms, self._store)
        for mutator in self._store_mutators:
            mutator.apply(self._store, now_ms)
        if self._slot_signal is not None:
            slot = self._store._values[self._slot_signal]
        else:
            slot = now_ms
        for context in self._dispatch[slot % self._schedule.n_slots]:
            self._activate_context(context, now_ms)
        self._environment.after_software(now_ms, self._store)
        self._clock.advance_ms(1)

    def run(
        self, duration_ms: int, golden: GoldenReference | None = None
    ) -> RunResult:
        """Execute a complete run of ``duration_ms`` milliseconds.

        The runtime resets itself first, so each call is an independent
        experiment (one Golden Run or one injection run).  With a
        ``golden`` reference the run may reconverge-fast-forward: once
        every installed trap has fired and the run's complete state
        provably re-matches the Golden Run at a frame boundary, the
        remaining frames are spliced from the Golden-Run traces instead
        of being simulated (see :meth:`run_from` for the contract).
        """
        if duration_ms < 1:
            raise SimulationError(f"duration must be >= 1 ms, got {duration_ms}")
        self.reset()
        samples: list[tuple[str, array]] = [
            (signal, array("q")) for signal in self._trace_signals
        ]
        if golden is not None and golden.digests is not None:
            self._check_golden(golden, duration_ms)
            reconverged_at, fast_forwarded = self._execute_frames_ff(
                samples, 0, duration_ms, golden
            )
            return self._build_result(
                duration_ms, samples, golden, reconverged_at, fast_forwarded
            )
        self._execute_frames(samples, duration_ms)
        return self._build_result(duration_ms, samples)

    def run_with_checkpoints(
        self,
        duration_ms: int,
        checkpoint_times_ms: Sequence[int],
        frame_digests: bool = False,
    ) -> tuple:
        """Like :meth:`run`, additionally capturing mid-run checkpoints.

        A checkpoint requested for time ``t`` is captured *before* the
        frame of millisecond ``t`` executes, i.e. after exactly ``t``
        simulated milliseconds — the state a one-shot trap scheduled at
        ``t`` would find in a full run.  Returns the run result and the
        checkpoints keyed by their time.

        With ``frame_digests=True`` a third element is returned: a
        :class:`~repro.simulation.snapshot.FrameDigests` holding one
        complete-state digest per executed frame — the verification
        track of reconvergence fast-forward.
        """
        if duration_ms < 1:
            raise SimulationError(f"duration must be >= 1 ms, got {duration_ms}")
        wanted = sorted(set(checkpoint_times_ms))
        if wanted and not 0 <= wanted[0] <= wanted[-1] < duration_ms:
            raise SimulationError(
                f"checkpoint times {wanted} must lie in [0, {duration_ms})"
            )
        self.reset()
        samples: list[tuple[str, array]] = [
            (signal, array("q")) for signal in self._trace_signals
        ]
        checkpoints: dict[int, RunCheckpoint] = {}
        digests: list[bytes] = []
        self._live_samples = samples
        try:
            step = self.step_ms
            values = self._store._values
            pending = iter(wanted)
            next_cp = next(pending, None)
            if frame_digests:
                digest = self._state_digest
                for now_ms in range(duration_ms):
                    if now_ms == next_cp:
                        checkpoints[now_ms] = self.checkpoint()
                        next_cp = next(pending, None)
                    step()
                    for signal, sink in samples:
                        sink.append(values[signal])
                    digests.append(digest())
            else:
                for now_ms in range(duration_ms):
                    if now_ms == next_cp:
                        checkpoints[now_ms] = self.checkpoint()
                        next_cp = next(pending, None)
                    step()
                    for signal, sink in samples:
                        sink.append(values[signal])
        finally:
            self._live_samples = None
        result = self._build_result(duration_ms, samples)
        if frame_digests:
            return result, checkpoints, FrameDigests.join(digests)
        return result, checkpoints

    def run_from(
        self,
        cp: RunCheckpoint,
        duration_ms: int,
        golden: GoldenReference | None = None,
    ) -> RunResult:
        """Resume from ``cp`` and complete a ``duration_ms`` run.

        Executes only the frames after ``cp.time_ms`` and stitches the
        checkpoint's trace prefix onto the recorded suffix, so the
        returned :class:`RunResult` is byte-for-byte identical to a
        full :meth:`run` of the same experiment.

        With a ``golden`` reference carrying frame digests, the suffix
        itself may be cut short by reconvergence fast-forward: the
        divergence set (signals differing from the Golden Run at the
        same instant) is maintained incrementally at write sites, and
        once it is empty after every installed trap has fired, the
        complete runtime state is digested and compared against the
        Golden Run's precomputed digest for that frame.  On a match the
        remaining frames are *spliced* from the Golden-Run traces — the
        result is still byte-for-byte identical to a full re-run, and
        :attr:`RunResult.reconverged_at_ms` records the instant the
        injected error's effect set became empty (its lifetime).

        A stripped checkpoint (``trace_prefix is None``, see
        :meth:`RunCheckpoint.without_trace_prefix`) requires ``golden``;
        its prefix is reconstructed from the Golden-Run traces.
        """
        if duration_ms <= cp.time_ms:
            raise SimulationError(
                f"duration {duration_ms} ms does not extend past the "
                f"checkpoint at {cp.time_ms} ms"
            )
        if cp.trace_prefix is None:
            if golden is None:
                raise SimulationError(
                    "checkpoint was stripped of its trace prefix; resuming "
                    "requires the golden reference it was stripped against"
                )
            self._check_golden(golden, duration_ms)
            samples = [
                (signal, golden.prefix_array(signal, cp.time_ms))
                for signal in self._trace_signals
            ]
        else:
            prefix_signals = tuple(signal for signal, _ in cp.trace_prefix)
            if prefix_signals != self._trace_signals:
                raise SimulationError(
                    "checkpoint traces different signals than this run: "
                    f"{prefix_signals} vs {self._trace_signals}"
                )
            for signal, prefix in cp.trace_prefix:
                if len(prefix) != cp.time_ms:
                    raise SimulationError(
                        f"checkpoint trace prefix of {signal!r} has "
                        f"{len(prefix)} samples, expected {cp.time_ms}"
                    )
            samples = [
                (signal, array("q", prefix)) for signal, prefix in cp.trace_prefix
            ]
        self.restore(cp)
        if golden is not None and golden.digests is not None:
            self._check_golden(golden, duration_ms)
            reconverged_at, fast_forwarded = self._execute_frames_ff(
                samples, cp.time_ms, duration_ms, golden
            )
            return self._build_result(
                duration_ms, samples, golden, reconverged_at, fast_forwarded
            )
        self._execute_frames(samples, duration_ms - cp.time_ms)
        return self._build_result(duration_ms, samples)

    def _execute_frames(
        self, samples: list[tuple[str, array]], n_frames: int
    ) -> None:
        """The sampling frame loop shared by all run entry points."""
        self._live_samples = samples
        try:
            step = self.step_ms
            values = self._store._values
            for _ in range(n_frames):
                step()
                for signal, sink in samples:
                    sink.append(values[signal])
        finally:
            self._live_samples = None

    def _check_golden(self, golden: GoldenReference, duration_ms: int) -> None:
        if golden.duration_ms != duration_ms:
            raise SimulationError(
                f"golden reference covers {golden.duration_ms} ms, "
                f"run lasts {duration_ms} ms"
            )
        if golden.signals != self._trace_signals:
            raise SimulationError(
                "golden reference traces different signals than this run: "
                f"{golden.signals} vs {self._trace_signals}"
            )

    def _execute_frames_ff(
        self,
        samples: list[tuple[str, array]],
        start_ms: int,
        duration_ms: int,
        golden: GoldenReference,
    ) -> tuple[int | None, int]:
        """Frame loop with reconvergence fast-forward.

        Simulates frames ``start_ms .. duration_ms-1`` like
        :meth:`_execute_frames`, but maintains the *divergence set* —
        the traced signals whose current value differs from the Golden
        Run at the same instant — incrementally: only signals written
        this frame or changed in the Golden Run this frame can have
        flipped status (everything else is equal on both sides by
        induction from an identical starting state).

        The divergence set is a cheap trigger, not the proof: it cannot
        see hidden module/plant state.  When it is empty at a frame
        boundary (and every installed trap has fired, so no pending
        injection can be skipped), the *complete* runtime state is
        digested and compared to the Golden Run's precomputed digest
        for that frame.  Only on a digest match are the remaining
        frames spliced from the Golden-Run traces; a mismatch (hidden
        state still diverged) backs off for ``_DIGEST_RETRY_FRAMES``
        frames before re-checking.

        Returns ``(reconverged_at_ms, frames_fast_forwarded)``.
        """
        store = self._store
        plain = store._values
        tracker = _WriteTrackingDict(plain)
        store._values = tracker
        self._live_samples = samples
        try:
            step = self.step_ms
            written = tracker.written
            gr_samples = golden.samples
            gr_changes = golden.frame_changes()
            digests = golden.digests
            assert digests is not None
            hooks: tuple = tuple(self._read_interceptors) + tuple(
                self._store_mutators
            )
            all_fired = not hooks
            diverged: set[str] = set()
            next_check = 0
            for now_ms in range(start_ms, duration_ms):
                written.clear()
                step()
                for signal, sink in samples:
                    sink.append(tracker[signal])
                was_empty = not diverged
                candidates = written.union(gr_changes.get(now_ms, ()))
                for signal in candidates:
                    gr_trace = gr_samples.get(signal)
                    if gr_trace is None:
                        # Untraced signal: invisible to the trigger, but
                        # still covered by the digest verification.
                        continue
                    if tracker[signal] != gr_trace[now_ms]:
                        diverged.add(signal)
                    else:
                        diverged.discard(signal)
                if diverged:
                    continue
                if not all_fired:
                    all_fired = all(
                        getattr(hook, "fired", False) for hook in hooks
                    )
                    if not all_fired:
                        continue
                if was_empty and now_ms < next_check:
                    continue
                if self._state_digest() != digests.at(now_ms):
                    # Hidden (module/plant) state still differs; one
                    # scheduling cycle may flush it through the signals.
                    next_check = now_ms + _DIGEST_RETRY_FRAMES
                    continue
                fast_forwarded = duration_ms - 1 - now_ms
                for signal, sink in samples:
                    sink.frombytes(golden.suffix_bytes(signal, now_ms + 1))
                self._clock.advance_ms(fast_forwarded)
                return now_ms, fast_forwarded
            return None, 0
        finally:
            store._values = dict(tracker)
            self._live_samples = None

    def _state_digest(self) -> bytes:
        """Digest of the complete current runtime state (see snapshot)."""
        payload = (
            dict(self._store._values),
            self._clock.now_ms,
            digest_payload(self._environment),
            {
                name: digest_payload(module)
                for name, module in self._modules.items()
            },
        )
        return state_digest(payload)

    def _build_result(
        self,
        duration_ms: int,
        samples: list[tuple[str, array]],
        golden: GoldenReference | None = None,
        reconverged_at_ms: int | None = None,
        frames_fast_forwarded: int = 0,
    ) -> RunResult:
        if reconverged_at_ms is not None:
            assert golden is not None
            # The spliced run *is* the Golden Run from the reconvergence
            # instant on; report its final state, not the (older) store.
            final_signals = dict(golden.final_signals)
            telemetry = dict(golden.telemetry)
        else:
            final_signals = self._store.snapshot()
            telemetry = dict(self._environment.telemetry())
        return RunResult(
            traces=TraceSet(
                SignalTrace(signal, sink) for signal, sink in samples
            ),
            duration_ms=duration_ms,
            final_signals=final_signals,
            telemetry=telemetry,
            reconverged_at_ms=reconverged_at_ms,
            frames_fast_forwarded=frames_fast_forwarded,
        )

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------

    def checkpoint(self) -> RunCheckpoint:
        """Capture the complete current state as a :class:`RunCheckpoint`.

        Covers store, clock, environment and every module (via their
        ``state_dict`` or the deepcopy fallback, see
        :mod:`repro.simulation.snapshot`) plus the trace prefix of the
        run in progress; outside a run the prefix is empty.  Installed
        hooks are not captured.
        """
        if self._metrics is not None:
            with self._metrics.timer("checkpoint.save.seconds"):
                return self._capture_checkpoint()
        return self._capture_checkpoint()

    def _capture_checkpoint(self) -> RunCheckpoint:
        if self._live_samples is not None:
            prefix = tuple(
                (signal, sink[:]) for signal, sink in self._live_samples
            )
        else:
            prefix = tuple((signal, array("q")) for signal in self._trace_signals)
        return RunCheckpoint(
            time_ms=self._clock.now_ms,
            store=snapshot_state(self._store),
            clock=snapshot_state(self._clock),
            environment=snapshot_state(self._environment),
            modules={
                name: snapshot_state(module)
                for name, module in self._modules.items()
            },
            trace_prefix=prefix,
        )

    def restore(self, cp: RunCheckpoint) -> None:
        """Load the state captured in ``cp`` (hooks are left untouched).

        The checkpoint itself stays pristine: the same checkpoint can be
        restored any number of times (once per injection run).
        """
        if self._metrics is not None:
            with self._metrics.timer("checkpoint.restore.seconds"):
                self._restore_checkpoint(cp)
            return
        self._restore_checkpoint(cp)

    def _restore_checkpoint(self, cp: RunCheckpoint) -> None:
        if set(cp.modules) != set(self._modules):
            raise SimulationError(
                "checkpoint module set does not match this run: "
                f"{sorted(cp.modules)} vs {sorted(self._modules)}"
            )
        restore_state(self._store, cp.store)
        restore_state(self._clock, cp.clock)
        restore_state(self._environment, cp.environment)
        for name, module in self._modules.items():
            restore_state(module, cp.modules[name])
        self._live_samples = None
