"""Batched lane kernel: many injection runs stepped as numpy bitwise ops.

The reference runtime steps one injection run at a time through Python
dicts.  For bit-linear systems — the XOR-mask modules of
:mod:`repro.verify.generators` are the motivating family — every
activation is a handful of AND/XOR operations, so *n* injection runs of
the same case can share one frame loop: pack each run into a **lane**
of a ``(n_lanes, n_signals)`` int64 array and evaluate each module's
mask plan once per frame as vectorized column operations.

Correctness contract: results are **byte-identical** to the reference
backend — same traces, same final signals/telemetry, same per-lane
reconvergence instants.  The kernel achieves that by reproducing the
reference semantics exactly rather than approximating them:

* lanes of one batch share an injection instant and start from the same
  Golden-Run checkpoint; the per-lane bit-flip is one XOR applied to
  the value the target module *reads* at its first activation at or
  after the instant (consumer-scoped, like
  :class:`~repro.injection.traps.InputInjectionTrap`);
* module dispatch follows the slot schedule frame by frame; modules
  exposing a ``vector_plan()`` (stateless XOR-of-masked-inputs) step as
  column ops, any other module falls back to scalar per-lane stepping
  with checkpointed state, so mixed systems still batch everything
  else;
* the environment must be *lane-invariant* (its evolution cannot read
  the store): one shared instance is stepped per frame and its writes
  are broadcast to every lane;
* fast-forward retirement mirrors
  :meth:`~repro.simulation.runtime.SimulationRun._execute_frames_ff`
  per lane — the traced-signal divergence trigger, the digest-retry
  backoff and the Golden-Run suffix splice all apply individually, so
  a retired lane reports the same ``reconverged_at_ms`` and trace
  bytes as its reference twin.

Whole cases that fail the preconditions (data-driven slot selector,
non-lane-invariant environment, missing Golden-Run reference) and
individual runs whose error model is not a pure XOR are executed
through the reference path, so the backend is safe to enable globally
(``REPRO_BACKEND=batched``).
"""

from __future__ import annotations

from array import array
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

from repro.model.errors import SimulationError
from repro.simulation.runtime import (
    _DIGEST_RETRY_FRAMES,
    GoldenReference,
    RunCheckpoint,
    RunResult,
    SimulationRun,
)
from repro.simulation.snapshot import (
    digest_payload,
    restore_state,
    snapshot_state,
    state_digest,
)
from repro.simulation.traces import SignalTrace, TraceSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.backend import CaseContext

__all__ = [
    "BatchedBackend",
    "pack_state_row",
    "unpack_state_row",
    "column_to_samples",
]

#: Soft cap on one sub-batch's trace history buffer.  Lanes beyond the
#: cap split into further sub-batches (identical semantics, bounded
#: peak memory).
_MAX_HISTORY_BYTES = 256 * 1024 * 1024

#: Sentinel frame for "this lane's trap never fires" (compares greater
#: than every valid frame index).
_NEVER = np.iinfo(np.int64).max


# ---------------------------------------------------------------------------
# Lane packing helpers (unit-tested round-trip)
# ---------------------------------------------------------------------------


def pack_state_row(
    values: Mapping[str, int], signals: tuple[str, ...]
) -> np.ndarray:
    """Pack a signal-value mapping into one int64 lane row."""
    return np.array([values[signal] for signal in signals], dtype=np.int64)


def unpack_state_row(
    row: np.ndarray, signals: tuple[str, ...]
) -> dict[str, int]:
    """Unpack one lane row back into a signal-value mapping."""
    return {signal: int(row[i]) for i, signal in enumerate(signals)}


def column_to_samples(column: np.ndarray) -> array:
    """Convert one per-frame sample column into an ``array('q')``.

    The byte layout matches the reference runtime's trace sinks
    (little-endian int64), so traces fold back byte-identically.
    """
    sink = array("q")
    sink.frombytes(np.ascontiguousarray(column, dtype="<i8").tobytes())
    return sink


def _flip_mask(model: Any, width: int) -> int | None:
    """The model's corruption as a pure XOR mask, or ``None``.

    Only models advertising ``vector_xor_mask`` (pure bit-flips) are
    vectorizable; everything else runs through the reference path.
    """
    probe = getattr(model, "vector_xor_mask", None)
    if not callable(probe):
        return None
    return probe(width)


class _EnvBroadcastStore:
    """Capture-only store handed to a lane-invariant environment.

    ``before_software`` writes land here (width-wrapped like
    :meth:`SignalStore.write`) and are broadcast to every lane.  Reads
    are forbidden: a lane-invariant environment must not depend on
    per-lane state.
    """

    __slots__ = ("_masks", "written")

    def __init__(self, masks: Mapping[str, int]) -> None:
        self._masks = masks
        self.written: dict[str, int] = {}

    def write(self, signal: str, value: int) -> None:
        mask = self._masks.get(signal)
        if mask is None:
            raise SimulationError(f"environment wrote unknown signal {signal!r}")
        self.written[signal] = value & mask

    def read(self, signal: str) -> int:
        raise SimulationError(
            "environment read the signal store during a batched step; "
            "lane-invariant environments must not depend on lane state"
        )


class _CasePlan:
    """Per-case vectorization analysis, shared by all time groups."""

    def __init__(self, runner: SimulationRun, golden_ref: GoldenReference):
        self.runner = runner
        self.golden_ref = golden_ref
        system = runner.system
        self.signals: tuple[str, ...] = runner.store.signals
        self.sig_idx = {signal: i for i, signal in enumerate(self.signals)}
        self.wmask = {
            signal: (1 << system.signal(signal).width) - 1
            for signal in self.signals
        }
        self.trace_signals = runner.trace_signals
        self.traced_idx = np.array(
            [self.sig_idx[s] for s in self.trace_signals], dtype=np.intp
        )
        schedule = runner.schedule
        self.n_slots = schedule.n_slots
        self.dispatch = tuple(
            tuple(schedule.dispatch_order(slot)) for slot in range(self.n_slots)
        )
        #: module name -> vector plan (for vectorizable modules).
        self.vector_plans: dict[str, tuple] = {}
        #: module name -> (instance, inputs, allowed outputs) for the
        #: scalar per-lane fallback.
        self.scalar_modules: dict[str, tuple] = {}
        for name, module in runner.modules.items():
            plan = getattr(module, "vector_plan", None)
            if callable(plan):
                self.vector_plans[name] = tuple(plan())
            else:
                spec = module.spec
                self.scalar_modules[name] = (
                    module,
                    spec.inputs,
                    frozenset(spec.outputs),
                )
        #: Signals-match implies digest-match: no hidden per-lane state
        #: (all modules stateless-vectorized) and the traced set covers
        #: the whole store, so the per-lane digest never needs computing.
        self.pure = not self.scalar_modules and set(self.trace_signals) == set(
            self.signals
        )
        #: Golden traces as a (duration, n_traced) matrix, trace order.
        self.golden_matrix = np.column_stack(
            [
                np.frombuffer(golden_ref.samples[s], dtype="<i8")
                for s in self.trace_signals
            ]
        )
        self._zero_checkpoint: RunCheckpoint | None = None

    def fired_frame(self, module: str, time_ms: int, duration_ms: int) -> int:
        """First frame >= ``time_ms`` at which ``module`` is dispatched.

        Mirrors the one-shot trap: it fires at the target module's
        first input read at or after the scheduled instant.  Returns
        the :data:`_NEVER` sentinel if the module never runs again.
        """
        for t in range(time_ms, min(time_ms + self.n_slots, duration_ms)):
            if module in self.dispatch[t % self.n_slots]:
                return t
        return _NEVER

    def zero_checkpoint(self) -> RunCheckpoint:
        """A synthetic frame-0 checkpoint (campaigns without prefix reuse)."""
        if self._zero_checkpoint is None:
            self.runner.reset()
            self._zero_checkpoint = self.runner.checkpoint()
        return self._zero_checkpoint


def _case_plan(context: "CaseContext") -> _CasePlan | None:
    """Analyse one case; ``None`` means the whole case must fall back."""
    runner = context.runner
    golden_ref = context.golden_ref
    if golden_ref is None:
        return None
    if runner.slot_signal is not None:
        # Data-driven slot selection couples scheduling to lane state.
        return None
    env = context.runner.environment
    if not getattr(env, "lane_invariant", False):
        return None
    if not callable(getattr(env, "lane_state_dict", None)) or not callable(
        getattr(env, "lane_telemetry", None)
    ):
        return None
    return _CasePlan(runner, golden_ref)


class BatchedBackend:
    """Vectorized lane execution with per-run reference fallback."""

    name = "batched"

    def case_injections(
        self, context: "CaseContext"
    ) -> Iterator[tuple[Any, RunResult]]:
        metrics = context.metrics
        plan = _case_plan(context)
        points = list(context.injection_points())
        if plan is None:
            if metrics is not None:
                metrics.counter("kernel.fallback.runs").inc(len(points))
            for point in points:
                yield context.run_reference(point)
            return

        # Group vectorizable points by injection instant; everything
        # else executes through the reference path at yield time.
        duration_ms = context.config.duration_ms
        groups: dict[int, list[tuple[int, Any, int]]] = {}
        for index, point in enumerate(points):
            width = plan.runner.system.signal(point.signal).width
            mask = _flip_mask(point.model, width)
            if mask is None:
                continue
            groups.setdefault(point.time_ms, []).append((index, point, mask))

        results: dict[int, tuple[RunResult, int | None]] = {}
        for time_ms, lanes in groups.items():
            for chunk in _lane_chunks(plan, lanes, duration_ms, time_ms):
                results.update(
                    _run_batch(context, plan, time_ms, chunk, duration_ms)
                )

        for index, point in enumerate(points):
            computed = results.get(index)
            if computed is None:
                if metrics is not None:
                    metrics.counter("kernel.fallback.runs").inc()
                yield context.run_reference(point)
            else:
                injected, fired_at_ms = computed
                yield context.emit_result(point, injected, fired_at_ms)


def _lane_chunks(
    plan: _CasePlan,
    lanes: list[tuple[int, Any, int]],
    duration_ms: int,
    time_ms: int,
) -> Iterator[list[tuple[int, Any, int]]]:
    """Split a time group so one history buffer stays under the cap."""
    n_frames = max(1, duration_ms - time_ms)
    bytes_per_lane = n_frames * len(plan.trace_signals) * 8
    cap = max(1, _MAX_HISTORY_BYTES // bytes_per_lane)
    for start in range(0, len(lanes), cap):
        yield lanes[start : start + cap]


def _run_batch(
    context: "CaseContext",
    plan: _CasePlan,
    time_ms: int,
    lanes: list[tuple[int, Any, int]],
    duration_ms: int,
) -> dict[int, tuple[RunResult, int | None]]:
    """Step one lane batch to completion; returns results by point index."""
    runner = plan.runner
    golden = plan.golden_ref
    metrics = context.metrics
    cp = lanes[0][1].checkpoint
    if cp is None:
        cp = plan.zero_checkpoint()
    start_ms = cp.time_ms
    n_lanes = len(lanes)
    n_frames = duration_ms - start_ms
    signals = plan.signals
    sig_idx = plan.sig_idx
    n_traced = len(plan.trace_signals)

    # --- lane state ---------------------------------------------------
    base_row = pack_state_row(cp.store["values"], signals)
    state = np.tile(base_row, (n_lanes, 1))
    hist = np.empty((n_frames, n_lanes, n_traced), dtype=np.int64)

    env = runner.environment
    restore_state(env, cp.environment)
    env_store = _EnvBroadcastStore(plan.wmask)

    scalar_states: dict[str, list] = {
        name: [cp.modules[name]] * n_lanes for name in plan.scalar_modules
    }
    if metrics is not None:
        metrics.gauge("kernel.lanes.active").set(n_lanes)
        if plan.scalar_modules:
            metrics.counter("kernel.scalar_fallback.modules").inc(
                len(plan.scalar_modules)
            )

    # --- per-lane injection plan -------------------------------------
    # One one-shot flip per lane: at the target module's first
    # activation at or after the instant, XOR the mask into the value
    # it reads (the stored signal itself is never corrupted).
    fired = np.empty(n_lanes, dtype=np.int64)
    inject_at: dict[int, dict[tuple[str, str], list[tuple[int, int]]]] = {}
    for lane, (_, point, mask) in enumerate(lanes):
        frame = plan.fired_frame(point.module, time_ms, duration_ms)
        fired[lane] = frame
        if frame != _NEVER:
            inject_at.setdefault(frame, {}).setdefault(
                (point.module, point.signal), []
            ).append((lane, mask))

    # --- fast-forward retirement state (mirrors _execute_frames_ff) ---
    retire = golden.digests is not None
    golden_matrix = plan.golden_matrix
    alive = np.ones(n_lanes, dtype=bool)
    was_empty = np.ones(n_lanes, dtype=bool)
    next_check = np.zeros(n_lanes, dtype=np.int64)
    reconverged = np.full(n_lanes, -1, dtype=np.int64)

    dispatch = plan.dispatch
    vector_plans = plan.vector_plans
    scalar_modules = plan.scalar_modules
    wmask = plan.wmask
    lanes_retired = 0

    for t in range(start_ms, duration_ms):
        frame_started = perf_counter()
        env_store.written.clear()
        env.before_software(t, env_store)
        for signal, value in env_store.written.items():
            state[:, sig_idx[signal]] = value
        pending = inject_at.get(t)
        for name in dispatch[t % plan.n_slots]:
            vplan = vector_plans.get(name)
            if vplan is not None:
                cols = {}
                for _, terms in vplan:
                    for inp, _ in terms:
                        if inp not in cols:
                            cols[inp] = state[:, sig_idx[inp]].copy()
                if pending:
                    for (module, signal), hits in pending.items():
                        if module == name and signal in cols:
                            for lane, mask in hits:
                                cols[signal][lane] ^= mask
                for out, terms in vplan:
                    acc = np.zeros(n_lanes, dtype=np.int64)
                    for inp, mask in terms:
                        acc ^= cols[inp] & mask
                    state[:, sig_idx[out]] = acc & wmask[out]
            else:
                _step_scalar_module(
                    name,
                    scalar_modules[name],
                    scalar_states[name],
                    state,
                    sig_idx,
                    wmask,
                    alive,
                    pending,
                    t,
                )
        hist[t - start_ms] = state[:, plan.traced_idx]

        if retire:
            sig_eq = (state[:, plan.traced_idx] == golden_matrix[t]).all(axis=1)
            candidates = alive & sig_eq & (t >= fired)
            candidates &= ~(was_empty & (t < next_check))
            if candidates.any():
                for lane in np.nonzero(candidates)[0]:
                    if not plan.pure and not _lane_digest_matches(
                        plan, env, scalar_states, state, int(lane), t
                    ):
                        next_check[lane] = t + _DIGEST_RETRY_FRAMES
                        continue
                    alive[lane] = False
                    reconverged[lane] = t
                    lanes_retired += 1
            was_empty = sig_eq
        if metrics is not None:
            metrics.histogram("kernel.batch_step.seconds").observe(
                perf_counter() - frame_started
            )
        if not alive.any():
            break

    if metrics is not None and lanes_retired:
        metrics.counter("kernel.lanes.retired").inc(lanes_retired)
        metrics.gauge("kernel.lanes.active").set(int(alive.sum()))

    # --- fold lanes back into RunResults ------------------------------
    results: dict[int, tuple[RunResult, int | None]] = {}
    for lane, (index, point, _) in enumerate(lanes):
        fired_at = None if fired[lane] == _NEVER else int(fired[lane])
        reconverged_at = None if reconverged[lane] < 0 else int(reconverged[lane])
        last_frame = duration_ms - 1 if reconverged_at is None else reconverged_at
        recorded = last_frame - start_ms + 1
        traces = []
        for j, signal in enumerate(plan.trace_signals):
            sink = golden.prefix_array(signal, start_ms)
            sink.frombytes(
                np.ascontiguousarray(
                    hist[:recorded, lane, j], dtype="<i8"
                ).tobytes()
            )
            if reconverged_at is not None:
                sink.frombytes(golden.suffix_bytes(signal, reconverged_at + 1))
            traces.append(SignalTrace(signal, sink))
        if reconverged_at is not None:
            final_signals = dict(golden.final_signals)
            telemetry = dict(golden.telemetry)
            fast_forwarded = duration_ms - 1 - reconverged_at
        else:
            final_signals = unpack_state_row(state[lane], signals)
            telemetry = dict(runner.environment.lane_telemetry(final_signals))
            fast_forwarded = 0
        results[index] = (
            RunResult(
                traces=TraceSet(traces),
                duration_ms=duration_ms,
                final_signals=final_signals,
                telemetry=telemetry,
                reconverged_at_ms=reconverged_at,
                frames_fast_forwarded=fast_forwarded,
            ),
            fired_at,
        )
    return results


def _step_scalar_module(
    name: str,
    entry: tuple,
    lane_states: list,
    state: np.ndarray,
    sig_idx: Mapping[str, int],
    wmask: Mapping[str, int],
    alive: np.ndarray,
    pending: dict | None,
    t: int,
) -> None:
    """Per-lane fallback activation of one non-vectorizable module."""
    module, input_names, allowed_outputs = entry
    for lane in range(len(lane_states)):
        if not alive[lane]:
            continue
        restore_state(module, lane_states[lane])
        inputs = {
            signal: int(state[lane, sig_idx[signal]]) for signal in input_names
        }
        if pending:
            for (target, signal), hits in pending.items():
                if target == name and signal in inputs:
                    for hit_lane, mask in hits:
                        if hit_lane == lane:
                            inputs[signal] ^= mask
        outputs = module.activate(inputs, t)
        for signal, value in outputs.items():
            if signal not in allowed_outputs:
                raise SimulationError(
                    f"module {name!r} wrote undeclared output {signal!r}"
                )
            state[lane, sig_idx[signal]] = value & wmask[signal]
        lane_states[lane] = snapshot_state(module)


def _lane_digest_matches(
    plan: _CasePlan,
    env: Any,
    scalar_states: Mapping[str, list],
    state: np.ndarray,
    lane: int,
    t: int,
) -> bool:
    """Full-state digest check of one lane against the Golden Run.

    Reconstructs exactly the payload of
    :meth:`SimulationRun._state_digest`: store values (store order),
    the clock *after* the frame, the environment's per-lane state and
    every module's state (construction order).
    """
    values = unpack_state_row(state[lane], plan.signals)
    module_payloads = {}
    for name, module in plan.runner.modules.items():
        if name in scalar_states:
            restore_state(module, scalar_states[name][lane])
        module_payloads[name] = digest_payload(module)
    payload = (
        values,
        t + 1,
        env.lane_state_dict(values),
        module_payloads,
    )
    digests = plan.golden_ref.digests
    assert digests is not None
    return state_digest(payload) == digests.at(t)
