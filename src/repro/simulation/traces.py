"""Signal traces: per-millisecond recordings of signal values.

PROPANE "is capable of creating traces of individual variables ...
during the execution.  Each trace of a variable from an injection
experiment is compared to the corresponding trace in the Golden Run"
(Section 6).  The traces here have millisecond resolution, like the
paper's ("The traces obtained during execution have millisecond
resolution for every logged variable", Section 7.3).

These classes are pure data structures; recording is done by the
runtime (:mod:`repro.simulation.runtime`) and comparison semantics by
the Golden Run machinery (:mod:`repro.injection.golden_run`).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.model.errors import TraceMismatchError

__all__ = ["SignalTrace", "TraceSet"]


@dataclass
class SignalTrace:
    """The recorded value of one signal, one sample per millisecond.

    ``samples[t]`` is the signal's raw value at the end of millisecond
    ``t``.

    Samples are stored in a compact ``array('q')`` (signed 64-bit, so
    every raw value of signals up to 63 bits wide fits): campaigns hold
    a Golden Run trace set per test case plus checkpoint prefixes, and
    the packed layout is ~8× smaller than a list of Python ints while
    comparing at C speed.  Any iterable of ints is accepted at
    construction; the sequence interface (indexing, slicing, ``len``,
    ``append``, iteration) is unchanged.
    """

    signal: str
    samples: array = field(default_factory=lambda: array("q"))

    def __post_init__(self) -> None:
        if not isinstance(self.samples, array) or self.samples.typecode != "q":
            self.samples = array("q", self.samples)

    def append(self, value: int) -> None:
        """Record the next millisecond's value."""
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> int:
        return self.samples[index]

    def first_divergence(self, reference: "SignalTrace") -> int | None:
        """Index of the first sample differing from ``reference``.

        Returns ``None`` when the traces agree everywhere.  "The
        comparison stopped as soon as the first difference between the
        GR trace and the IR trace was encountered" (Section 7.3).
        """
        if reference.signal != self.signal:
            raise TraceMismatchError(
                f"comparing trace of {self.signal!r} against {reference.signal!r}"
            )
        if len(reference) != len(self):
            raise TraceMismatchError(
                f"trace of {self.signal!r}: length {len(self)} vs "
                f"reference length {len(reference)}"
            )
        if self.samples == reference.samples:
            # Fast path: array equality runs at C speed, and most signals
            # agree with the Golden Run in most injection runs.
            return None
        for index, (mine, theirs) in enumerate(zip(self.samples, reference.samples)):
            if mine != theirs:
                return index
        return None

    def differs_from(self, reference: "SignalTrace") -> bool:
        """Whether any sample differs from ``reference``."""
        return self.first_divergence(reference) is not None

    def values_between(self, start_ms: int, end_ms: int) -> Sequence[int]:
        """Samples in the half-open interval ``[start_ms, end_ms)``."""
        return self.samples[start_ms:end_ms]


class TraceSet:
    """A collection of :class:`SignalTrace` objects of equal length."""

    def __init__(self, traces: Iterable[SignalTrace] = ()) -> None:
        self._traces: dict[str, SignalTrace] = {}
        for trace in traces:
            self.add(trace)

    def add(self, trace: SignalTrace) -> None:
        """Add a trace; the signal must not be present already."""
        if trace.signal in self._traces:
            raise TraceMismatchError(f"duplicate trace for signal {trace.signal!r}")
        self._traces[trace.signal] = trace

    def __contains__(self, signal: str) -> bool:
        return signal in self._traces

    def __getitem__(self, signal: str) -> SignalTrace:
        try:
            return self._traces[signal]
        except KeyError:
            raise TraceMismatchError(f"no trace recorded for signal {signal!r}") from None

    def __iter__(self) -> Iterator[SignalTrace]:
        return iter(self._traces.values())

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def signals(self) -> tuple[str, ...]:
        """Signals with recorded traces, in recording order."""
        return tuple(self._traces)

    @property
    def duration_ms(self) -> int:
        """Number of samples (identical across all traces)."""
        if not self._traces:
            return 0
        return len(next(iter(self._traces.values())))

    def check_rectangular(self) -> None:
        """Verify all traces have equal length."""
        lengths = {len(trace) for trace in self._traces.values()}
        if len(lengths) > 1:
            raise TraceMismatchError(
                f"traces have inconsistent lengths: {sorted(lengths)}"
            )

    def first_divergences(
        self, reference: "TraceSet"
    ) -> dict[str, int | None]:
        """Per-signal first divergence against a reference trace set.

        Both sets must cover the same signals.
        """
        if set(reference.signals) != set(self.signals):
            missing = set(reference.signals) ^ set(self.signals)
            raise TraceMismatchError(
                f"trace sets cover different signals; mismatched: {sorted(missing)}"
            )
        return {
            signal: self._traces[signal].first_divergence(reference[signal])
            for signal in self.signals
        }

    def to_mapping(self) -> Mapping[str, list[int]]:
        """Plain ``{signal: samples}`` view (copies the sample lists)."""
        return {signal: list(trace.samples) for signal, trace in self._traces.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceSet signals={len(self._traces)} duration={self.duration_ms}ms>"
