"""Signal traces: per-millisecond recordings of signal values.

PROPANE "is capable of creating traces of individual variables ...
during the execution.  Each trace of a variable from an injection
experiment is compared to the corresponding trace in the Golden Run"
(Section 6).  The traces here have millisecond resolution, like the
paper's ("The traces obtained during execution have millisecond
resolution for every logged variable", Section 7.3).

These classes are pure data structures; recording is done by the
runtime (:mod:`repro.simulation.runtime`) and comparison semantics by
the Golden Run machinery (:mod:`repro.injection.golden_run`).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.model.errors import TraceMismatchError

__all__ = ["SignalTrace", "TraceSet", "pack_trace_samples", "trace_views"]

#: Elements per chunk in the chunked divergence scan; 4096 signed-64
#: samples are 32 KiB — one C-speed memoryview comparison per chunk.
_SCAN_CHUNK = 4096


@dataclass
class SignalTrace:
    """The recorded value of one signal, one sample per millisecond.

    ``samples[t]`` is the signal's raw value at the end of millisecond
    ``t``.

    Samples are stored in a compact ``array('q')`` (signed 64-bit, so
    every raw value of signals up to 63 bits wide fits): campaigns hold
    a Golden Run trace set per test case plus checkpoint prefixes, and
    the packed layout is ~8× smaller than a list of Python ints while
    comparing at C speed.  Any iterable of ints is accepted at
    construction; the sequence interface (indexing, slicing, ``len``,
    ``append``, iteration) is unchanged.

    A ``memoryview`` of format ``'q'`` is kept as-is instead of being
    copied, so a Golden-Run trace set published through
    ``multiprocessing.shared_memory`` can be read zero-copy by worker
    processes (see :func:`trace_views`).  View-backed traces are
    read-only: ``append`` raises.
    """

    signal: str
    samples: array = field(default_factory=lambda: array("q"))

    def __post_init__(self) -> None:
        samples = self.samples
        if isinstance(samples, array) and samples.typecode == "q":
            return
        if isinstance(samples, memoryview) and samples.format == "q":
            return  # zero-copy view (e.g. into a shared-memory buffer)
        self.samples = array("q", samples)

    def append(self, value: int) -> None:
        """Record the next millisecond's value."""
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> int:
        return self.samples[index]

    def first_divergence(self, reference: "SignalTrace") -> int | None:
        """Index of the first sample differing from ``reference``.

        Returns ``None`` when the traces agree everywhere.  "The
        comparison stopped as soon as the first difference between the
        GR trace and the IR trace was encountered" (Section 7.3).
        """
        if reference.signal != self.signal:
            raise TraceMismatchError(
                f"comparing trace of {self.signal!r} against {reference.signal!r}"
            )
        if len(reference) != len(self):
            raise TraceMismatchError(
                f"trace of {self.signal!r}: length {len(self)} vs "
                f"reference length {len(reference)}"
            )
        mine = memoryview(self.samples)
        theirs = memoryview(reference.samples)
        if mine == theirs:
            # Fast path: buffer equality runs at C speed, and most signals
            # agree with the Golden Run in most injection runs.
            return None
        # Locate the diverging chunk with C-speed memoryview comparisons,
        # then scan per element only inside that chunk.
        length = len(mine)
        for start in range(0, length, _SCAN_CHUNK):
            stop = min(start + _SCAN_CHUNK, length)
            if mine[start:stop] != theirs[start:stop]:
                for index in range(start, stop):
                    if mine[index] != theirs[index]:
                        return index
        return None  # pragma: no cover - unreachable: buffers differed

    def differs_from(self, reference: "SignalTrace") -> bool:
        """Whether any sample differs from ``reference``."""
        return self.first_divergence(reference) is not None

    def values_between(self, start_ms: int, end_ms: int) -> Sequence[int]:
        """Samples in the half-open interval ``[start_ms, end_ms)``."""
        return self.samples[start_ms:end_ms]


class TraceSet:
    """A collection of :class:`SignalTrace` objects of equal length."""

    def __init__(self, traces: Iterable[SignalTrace] = ()) -> None:
        self._traces: dict[str, SignalTrace] = {}
        for trace in traces:
            self.add(trace)

    def add(self, trace: SignalTrace) -> None:
        """Add a trace; the signal must not be present already."""
        if trace.signal in self._traces:
            raise TraceMismatchError(f"duplicate trace for signal {trace.signal!r}")
        self._traces[trace.signal] = trace

    def __contains__(self, signal: str) -> bool:
        return signal in self._traces

    def __getitem__(self, signal: str) -> SignalTrace:
        try:
            return self._traces[signal]
        except KeyError:
            raise TraceMismatchError(f"no trace recorded for signal {signal!r}") from None

    def __iter__(self) -> Iterator[SignalTrace]:
        return iter(self._traces.values())

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def signals(self) -> tuple[str, ...]:
        """Signals with recorded traces, in recording order."""
        return tuple(self._traces)

    @property
    def duration_ms(self) -> int:
        """Number of samples (identical across all traces)."""
        if not self._traces:
            return 0
        return len(next(iter(self._traces.values())))

    def check_rectangular(self) -> None:
        """Verify all traces have equal length."""
        lengths = {len(trace) for trace in self._traces.values()}
        if len(lengths) > 1:
            raise TraceMismatchError(
                f"traces have inconsistent lengths: {sorted(lengths)}"
            )

    def first_divergences(
        self, reference: "TraceSet"
    ) -> dict[str, int | None]:
        """Per-signal first divergence against a reference trace set.

        Both sets must cover the same signals.
        """
        if set(reference.signals) != set(self.signals):
            missing = set(reference.signals) ^ set(self.signals)
            raise TraceMismatchError(
                f"trace sets cover different signals; mismatched: {sorted(missing)}"
            )
        return {
            signal: self._traces[signal].first_divergence(reference[signal])
            for signal in self.signals
        }

    def to_mapping(self) -> Mapping[str, list[int]]:
        """Plain ``{signal: samples}`` view (copies the sample lists)."""
        return {signal: list(trace.samples) for signal, trace in self._traces.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceSet signals={len(self._traces)} duration={self.duration_ms}ms>"


def pack_trace_samples(traces: TraceSet) -> tuple[tuple[str, ...], int, array]:
    """Pack a rectangular trace set into one flat ``array('q')``.

    Layout: signal ``i`` (in recording order) occupies elements
    ``[i * duration, (i + 1) * duration)``.  The flat buffer is what a
    campaign publishes through ``multiprocessing.shared_memory`` so
    worker processes can read the Golden Run without a per-chunk copy;
    :func:`trace_views` is the reading side.

    Returns ``(signals, duration_ms, flat)``.
    """
    traces.check_rectangular()
    duration = traces.duration_ms
    flat = array("q")
    for trace in traces:
        flat.extend(trace.samples)
    return traces.signals, duration, flat


def trace_views(
    buffer, signals: Sequence[str], duration_ms: int
) -> dict[str, memoryview]:
    """Zero-copy per-signal views into a :func:`pack_trace_samples` buffer.

    ``buffer`` is anything exporting a contiguous buffer — the packed
    ``array('q')`` itself, a ``bytes`` copy, or a
    ``multiprocessing.shared_memory.SharedMemory.buf``  (which may be
    longer than the payload; the excess is ignored).  Each returned
    ``memoryview`` has format ``'q'`` and can back a read-only
    :class:`SignalTrace` directly.
    """
    n_bytes = len(signals) * duration_ms * 8
    mv = memoryview(buffer)
    if mv.format != "q":
        if mv.format != "B":
            mv = mv.cast("B")
        if len(mv) < n_bytes:
            raise TraceMismatchError(
                f"packed trace buffer holds {len(mv)} bytes, need {n_bytes} "
                f"for {len(signals)} signals x {duration_ms} ms"
            )
        mv = mv[:n_bytes].cast("q")
    elif len(mv) < len(signals) * duration_ms:
        raise TraceMismatchError(
            f"packed trace buffer holds {len(mv)} samples, need "
            f"{len(signals) * duration_ms}"
        )
    return {
        signal: mv[index * duration_ms : (index + 1) * duration_ms]
        for index, signal in enumerate(signals)
    }
