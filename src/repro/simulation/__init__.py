"""Embedded-runtime substrate: simulated time, registers, scheduling.

Reproduces the execution environment of the paper's target system
(Section 7.1): a slot-based non-preemptive schedule of software modules
running in simulated time against simulated hardware registers, with
trap hook points for the fault-injection environment.
"""

from repro.simulation.backend import (
    ReferenceBackend,
    SimulationBackend,
    UnknownBackendError,
    available_backends,
    get_backend,
)
from repro.simulation.registers import (
    AdcRegister,
    FreeRunningCounter,
    HardwareRegister,
    InputCapture,
    OutputCompare,
    PulseAccumulator,
)
from repro.simulation.runtime import (
    Environment,
    ReadInterceptor,
    RunCheckpoint,
    RunResult,
    SignalStore,
    SimulationRun,
    StoreMutator,
)
from repro.simulation.scheduler import SlotSchedule
from repro.simulation.simtime import SimClock
from repro.simulation.snapshot import Snapshotable, restore_state, snapshot_state
from repro.simulation.traces import SignalTrace, TraceSet

__all__ = [
    "AdcRegister",
    "Environment",
    "FreeRunningCounter",
    "HardwareRegister",
    "InputCapture",
    "OutputCompare",
    "PulseAccumulator",
    "ReadInterceptor",
    "ReferenceBackend",
    "RunCheckpoint",
    "RunResult",
    "SignalStore",
    "SignalTrace",
    "SimClock",
    "SimulationBackend",
    "SimulationRun",
    "SlotSchedule",
    "Snapshotable",
    "StoreMutator",
    "TraceSet",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "restore_state",
    "snapshot_state",
]
