"""Slot-based non-preemptive scheduling (Section 7.1).

"The scheduling is slot-based and non-preemptive. ... The system
operates in seven 1-ms-slots.  In each slot, one or more modules (except
for CALC) are invoked."  CALC is a background task that "runs when other
modules are dormant".

:class:`SlotSchedule` captures this: a fixed number of 1 ms slots, each
holding an ordered list of module names, plus an ordered list of
background modules dispatched after the slot's periodic modules each
millisecond (the remaining slack of the 1 ms frame).

The slot selector is deliberately *data-driven*: the runtime reads the
current slot number from a configurable signal (``ms_slot_nbr`` in the
target system) so that data errors in the slot counter genuinely
disturb scheduling — one of the propagation effects the paper measures.
"""

from __future__ import annotations

from typing import Iterable

from repro.model.errors import ScheduleError

__all__ = ["SlotSchedule"]


class SlotSchedule:
    """An n-slot cyclic schedule with background tasks.

    Parameters
    ----------
    n_slots:
        Number of 1 ms slots in the scheduling cycle (the paper's
        target uses seven).
    """

    def __init__(self, n_slots: int = 7) -> None:
        if n_slots < 1:
            raise ScheduleError(f"schedule needs at least one slot, got {n_slots}")
        self._n_slots = n_slots
        self._slots: list[list[str]] = [[] for _ in range(n_slots)]
        self._background: list[str] = []

    @property
    def n_slots(self) -> int:
        """Number of slots in the cycle."""
        return self._n_slots

    @property
    def background_modules(self) -> tuple[str, ...]:
        """Background modules in dispatch order."""
        return tuple(self._background)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _check_slot(self, slot: int) -> int:
        if not 0 <= slot < self._n_slots:
            raise ScheduleError(
                f"slot {slot} outside schedule of {self._n_slots} slots"
            )
        return slot

    def assign(self, module: str, slots: Iterable[int]) -> "SlotSchedule":
        """Invoke ``module`` in each of the given slots (order of calls
        defines dispatch order within a slot)."""
        for slot in slots:
            index = self._check_slot(slot)
            if module in self._slots[index]:
                raise ScheduleError(
                    f"module {module!r} already assigned to slot {slot}"
                )
            self._slots[index].append(module)
        return self

    def assign_every_slot(self, module: str) -> "SlotSchedule":
        """Invoke ``module`` in every slot (a 1 ms-period module)."""
        return self.assign(module, range(self._n_slots))

    def assign_period(
        self, module: str, period_ms: int, phase: int = 0
    ) -> "SlotSchedule":
        """Invoke ``module`` every ``period_ms`` slots starting at ``phase``.

        ``period_ms`` must divide the cycle length so the pattern repeats
        cleanly (e.g. a 7 ms module occupies exactly one of seven slots).
        """
        if period_ms < 1:
            raise ScheduleError(f"period must be >= 1 ms, got {period_ms}")
        if self._n_slots % period_ms != 0:
            raise ScheduleError(
                f"period {period_ms} ms does not divide the "
                f"{self._n_slots}-slot cycle"
            )
        self._check_slot(phase)
        if phase >= period_ms:
            raise ScheduleError(
                f"phase {phase} must be smaller than period {period_ms}"
            )
        return self.assign(module, range(phase, self._n_slots, period_ms))

    def add_background(self, module: str) -> "SlotSchedule":
        """Dispatch ``module`` in the slack of every millisecond frame."""
        if module in self._background:
            raise ScheduleError(f"module {module!r} already a background task")
        self._background.append(module)
        return self

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def modules_for_slot(self, slot: int) -> tuple[str, ...]:
        """The periodic modules of one slot, in dispatch order.

        ``slot`` is taken modulo the cycle length: the slot number is
        read from a software signal at runtime and a corrupted value
        must still select *some* slot, exactly as the original indexing
        into a slot table would.
        """
        return tuple(self._slots[slot % self._n_slots])

    def dispatch_order(self, slot: int) -> tuple[str, ...]:
        """Periodic modules of ``slot`` followed by the background tasks."""
        return self.modules_for_slot(slot) + tuple(self._background)

    def all_modules(self) -> tuple[str, ...]:
        """Every scheduled module (periodic and background), deduplicated."""
        seen: dict[str, None] = {}
        for slot in self._slots:
            for module in slot:
                seen.setdefault(module, None)
        for module in self._background:
            seen.setdefault(module, None)
        return tuple(seen)

    def describe(self) -> str:
        """Human-readable slot table."""
        lines = [f"Slot schedule ({self._n_slots} x 1 ms):"]
        for index, modules in enumerate(self._slots):
            lines.append(f"  slot {index}: {', '.join(modules) or '(idle)'}")
        lines.append(
            f"  background: {', '.join(self._background) or '(none)'}"
        )
        return "\n".join(lines)
