"""Simulated time for the embedded runtime.

The paper's target runs in "simulated time" after being ported to a
desktop machine ("the intrusion of the traps is non-existent in our
setup as it runs in simulated time", Section 7.3).  :class:`SimClock`
provides that notion of time: a millisecond counter advanced explicitly
by the runtime, never by the wall clock.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A millisecond-resolution simulated clock.

    The clock also exposes a higher-frequency *tick* count used by the
    free-running hardware counter models (e.g. a 2 MHz timer advances by
    2000 ticks per simulated millisecond).
    """

    def __init__(self, ticks_per_ms: int = 2000) -> None:
        if ticks_per_ms < 1:
            raise ValueError("ticks_per_ms must be >= 1")
        self._now_ms = 0
        self._ticks_per_ms = ticks_per_ms

    @property
    def now_ms(self) -> int:
        """Current simulated time in milliseconds since reset."""
        return self._now_ms

    @property
    def ticks_per_ms(self) -> int:
        """Hardware timer ticks per simulated millisecond."""
        return self._ticks_per_ms

    @property
    def now_ticks(self) -> int:
        """Current simulated time in hardware timer ticks."""
        return self._now_ms * self._ticks_per_ms

    def advance_ms(self, milliseconds: int = 1) -> int:
        """Advance the clock and return the new time in milliseconds."""
        if milliseconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now_ms += milliseconds
        return self._now_ms

    def reset(self) -> None:
        """Rewind to time zero (a new simulation run)."""
        self._now_ms = 0

    def state_dict(self) -> dict:
        """Snapshot for checkpoint/restore (``ticks_per_ms`` is static)."""
        return {"now_ms": self._now_ms}

    def load_state_dict(self, state: dict) -> None:
        """Rewind/forward the clock to a checkpointed instant."""
        self._now_ms = state["now_ms"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimClock t={self._now_ms}ms>"
