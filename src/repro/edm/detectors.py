"""Executable-assertion error detection mechanisms (EDMs).

The paper's OB3 refers to the authors' companion study [7] "of a number
of error detection mechanisms based on the concept of executable
assertions" and argues that a detector's *location* matters as much as
its detection capability.  This module supplies that missing piece: a
family of assertion-style detectors that can be evaluated against
injection campaigns (see :mod:`repro.edm.evaluation`) and placed at the
locations the permeability analysis recommends.

Detectors are pure functions over a signal's per-millisecond trace —
the same observations PROPANE records — so they can be replayed over
campaign runs without re-executing the system:

* :class:`RangeCheck` — value must stay inside ``[low, high]``;
* :class:`DeltaCheck` — per-millisecond change must stay within a bound
  (a rate-of-change assertion, natural for physical quantities);
* :class:`ConstancyCheck` — the value must not freeze for longer than a
  bound (detects dead producers);
* :class:`MonotonicCheck` — the value must not decrease (for totaliser
  signals such as ``pulscnt``).

:func:`calibrate_range` and :func:`calibrate_delta` derive assertion
bounds from Golden Run traces with a safety margin, mirroring how such
assertions are tuned from field data in practice.
"""

from __future__ import annotations

import abc
from typing import Sequence

__all__ = [
    "ErrorDetector",
    "RangeCheck",
    "DeltaCheck",
    "ConstancyCheck",
    "MonotonicCheck",
    "calibrate_range",
    "calibrate_delta",
]


class ErrorDetector(abc.ABC):
    """An executable assertion monitoring one signal's trace."""

    def __init__(self, signal: str) -> None:
        self.signal = signal

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable identifier used in evaluation reports."""

    @abc.abstractmethod
    def first_detection(self, samples: Sequence[int]) -> int | None:
        """Millisecond index of the first assertion violation, or ``None``."""

    def fires_on(self, samples: Sequence[int]) -> bool:
        """Whether the assertion is violated anywhere in the trace."""
        return self.first_detection(samples) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class RangeCheck(ErrorDetector):
    """Assert ``low <= value <= high`` every millisecond."""

    def __init__(self, signal: str, low: int, high: int) -> None:
        super().__init__(signal)
        if high < low:
            raise ValueError("high must be >= low")
        self.low = low
        self.high = high

    @property
    def name(self) -> str:
        return f"range[{self.signal}:{self.low}..{self.high}]"

    def first_detection(self, samples: Sequence[int]) -> int | None:
        low, high = self.low, self.high
        for index, value in enumerate(samples):
            if value < low or value > high:
                return index
        return None


class DeltaCheck(ErrorDetector):
    """Assert ``|value[t] - value[t-1]| <= max_delta`` every millisecond."""

    def __init__(self, signal: str, max_delta: int) -> None:
        super().__init__(signal)
        if max_delta < 0:
            raise ValueError("max_delta must be >= 0")
        self.max_delta = max_delta

    @property
    def name(self) -> str:
        return f"delta[{self.signal}:<={self.max_delta}]"

    def first_detection(self, samples: Sequence[int]) -> int | None:
        max_delta = self.max_delta
        for index in range(1, len(samples)):
            if abs(samples[index] - samples[index - 1]) > max_delta:
                return index
        return None


class ConstancyCheck(ErrorDetector):
    """Assert the value changes at least once every ``max_constant_ms``."""

    def __init__(self, signal: str, max_constant_ms: int) -> None:
        super().__init__(signal)
        if max_constant_ms < 1:
            raise ValueError("max_constant_ms must be >= 1")
        self.max_constant_ms = max_constant_ms

    @property
    def name(self) -> str:
        return f"constancy[{self.signal}:<={self.max_constant_ms}ms]"

    def first_detection(self, samples: Sequence[int]) -> int | None:
        if not samples:
            return None
        run_length = 1
        for index in range(1, len(samples)):
            if samples[index] == samples[index - 1]:
                run_length += 1
                if run_length > self.max_constant_ms:
                    return index
            else:
                run_length = 1
        return None


class MonotonicCheck(ErrorDetector):
    """Assert the value never decreases (totaliser signals).

    ``allow_wrap`` tolerates a single full-range wrap-around step (a
    16-bit totaliser rolling over), detected as a decrease larger than
    half the range.
    """

    def __init__(self, signal: str, allow_wrap: bool = True, width: int = 16) -> None:
        super().__init__(signal)
        self.allow_wrap = allow_wrap
        self._half_range = 1 << (width - 1)

    @property
    def name(self) -> str:
        return f"monotonic[{self.signal}]"

    def first_detection(self, samples: Sequence[int]) -> int | None:
        for index in range(1, len(samples)):
            drop = samples[index - 1] - samples[index]
            if drop > 0:
                if self.allow_wrap and drop >= self._half_range:
                    continue
                return index
        return None


def calibrate_range(
    samples: Sequence[int], margin_fraction: float = 0.1
) -> tuple[int, int]:
    """Range-assertion bounds from a Golden Run trace plus a margin.

    The margin widens the observed envelope by ``margin_fraction`` of
    its span on each side, so workload variation inside the envelope
    never raises false alarms.
    """
    if not samples:
        raise ValueError("cannot calibrate from an empty trace")
    low, high = min(samples), max(samples)
    margin = round((high - low) * margin_fraction)
    return (low - margin, high + margin)


def calibrate_delta(
    samples: Sequence[int], margin_factor: float = 2.0
) -> int:
    """Delta-assertion bound: the largest Golden Run step times a factor."""
    if len(samples) < 2:
        raise ValueError("need at least two samples to calibrate a delta bound")
    largest = max(
        abs(b - a) for a, b in zip(samples, samples[1:])
    )
    return max(1, round(largest * margin_factor))
