"""Evaluating EDMs against injection campaigns.

Closes the loop of the paper's OB3: given a set of executable-assertion
detectors (:mod:`repro.edm.detectors`) placed at candidate locations,
replay them over every injection run of a campaign and measure

* **false-alarm freedom** — a usable assertion must stay silent on the
  Golden Run of every workload;
* **coverage** — the fraction of error-producing injections the
  detector catches (it fires *and* the fired sample genuinely deviates
  from the Golden Run);
* **latency** — milliseconds from the injection to the detection.

The evaluation plugs into
:meth:`repro.injection.campaign.InjectionCampaign.execute` through the
``inspector`` callback, so it adds no extra simulation runs.

The headline analysis, :func:`effectiveness_score`, reproduces OB3's
argument quantitatively: a detector's *usefulness* is its coverage of
propagating errors, which couples its raw detection quality with the
error exposure of the signal it watches — "it should be preferred to
put a detection mechanism with a slightly lower detection probability
at a location where errors very likely pass by".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.edm.detectors import ErrorDetector
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.golden_run import GoldenRun
from repro.injection.outcomes import InjectionOutcome
from repro.model.errors import CampaignError
from repro.model.system import SystemModel
from repro.simulation.runtime import RunResult, SimulationRun

__all__ = ["DetectorStats", "DetectorEvaluation", "evaluate_detectors"]


@dataclass
class DetectorStats:
    """Aggregated campaign statistics of one detector."""

    detector: str
    signal: str
    #: Golden runs on which the assertion (wrongly) fired.
    false_alarm_cases: list[str] = field(default_factory=list)
    #: Error-producing injections seen (the coverage denominator).
    n_detectable: int = 0
    #: Injections the detector caught.
    n_detected: int = 0
    #: Detection latencies (ms from injection to first firing).
    latencies_ms: list[int] = field(default_factory=list)

    @property
    def has_false_alarms(self) -> bool:
        return bool(self.false_alarm_cases)

    @property
    def coverage(self) -> float:
        """Detected fraction of error-producing injections."""
        if self.n_detectable == 0:
            return 0.0
        return self.n_detected / self.n_detectable

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)


@dataclass(frozen=True)
class DetectorEvaluation:
    """The full evaluation result: one :class:`DetectorStats` per detector."""

    stats: tuple[DetectorStats, ...]
    n_injections: int
    n_detectable: int

    def by_name(self) -> Mapping[str, DetectorStats]:
        return {item.detector: item for item in self.stats}

    def ranked(self) -> list[DetectorStats]:
        """Detectors ordered by coverage (false-alarming ones last)."""
        return sorted(
            self.stats,
            key=lambda s: (s.has_false_alarms, -s.coverage, s.mean_latency_ms),
        )

    def render(self) -> str:
        from repro.core.report import format_table

        rows = []
        for item in self.ranked():
            rows.append(
                (
                    item.detector,
                    item.signal,
                    f"{item.coverage:.3f}",
                    f"{item.mean_latency_ms:.0f}",
                    "YES" if item.has_false_alarms else "no",
                )
            )
        table = format_table(
            headers=("Detector", "Signal", "Coverage", "Latency[ms]", "FalseAlarm"),
            rows=rows,
            title=(
                "EDM evaluation: coverage of error-producing injections "
                f"(n={self.n_detectable} of {self.n_injections} runs)"
            ),
        )
        return table


def evaluate_detectors(
    system: SystemModel,
    run_factory: Callable[..., SimulationRun],
    test_cases: Mapping[str, object] | Sequence[object],
    config: CampaignConfig,
    detectors: Sequence[ErrorDetector],
) -> DetectorEvaluation:
    """Run one campaign and replay all detectors over every run.

    A detection is *credited* only when the detector fires at a sample
    where (or after) its signal genuinely deviates from the Golden Run;
    a firing on an untouched trace would equally fire on the GR and is
    counted as a false alarm instead.
    """
    if not detectors:
        raise CampaignError("at least one detector is required")
    for detector in detectors:
        if detector.signal not in system.signals:
            raise CampaignError(
                f"detector {detector.name} watches unknown signal "
                f"{detector.signal!r}"
            )
    stats = {
        detector.name: DetectorStats(detector=detector.name, signal=detector.signal)
        for detector in detectors
    }
    counters = {"injections": 0, "detectable": 0}
    golden_checked: set[str] = set()

    def inspector(
        outcome: InjectionOutcome, injected: RunResult, golden: GoldenRun
    ) -> None:
        counters["injections"] += 1
        if golden.case_id not in golden_checked:
            golden_checked.add(golden.case_id)
            for detector in detectors:
                fired = detector.first_detection(
                    golden.result.traces[detector.signal].samples
                )
                if fired is not None:
                    stats[detector.name].false_alarm_cases.append(golden.case_id)
        if not outcome.fired or outcome.comparison.error_free():
            return
        counters["detectable"] += 1
        assert outcome.fired_at_ms is not None
        for detector in detectors:
            item = stats[detector.name]
            item.n_detectable += 1
            fired = detector.first_detection(
                injected.traces[detector.signal].samples
            )
            if fired is None:
                continue
            divergence = outcome.comparison.divergence_time(detector.signal)
            if divergence is None or fired < divergence:
                # The assertion fired on Golden-Run-identical data: it
                # would fire on the GR too — not a genuine detection.
                continue
            item.n_detected += 1
            item.latencies_ms.append(fired - outcome.fired_at_ms)

    campaign = InjectionCampaign(system, run_factory, test_cases, config)
    campaign.execute(inspector=inspector)
    return DetectorEvaluation(
        stats=tuple(stats.values()),
        n_injections=counters["injections"],
        n_detectable=counters["detectable"],
    )


def effectiveness_score(stats: DetectorStats, signal_exposure: float) -> float:
    """OB3's usefulness measure: detection quality x location traffic.

    A perfect detector on a signal errors rarely reach scores below a
    mediocre detector on a high-exposure signal — the paper's argument
    for choosing `SetValue`/`OutValue` over `InValue` even though the
    `InValue` assertion detected errors "with a very high probability".
    """
    return stats.coverage * signal_exposure
