"""Executable-assertion EDMs and their campaign-based evaluation.

Extends the paper along its OB3 discussion (and the authors' companion
study [7]): concrete error detection mechanisms — range, rate-of-change,
constancy and monotonicity assertions — that can be placed at the
locations the permeability analysis recommends and evaluated for
coverage, latency and false alarms against an injection campaign.
"""

from repro.edm.detectors import (
    ConstancyCheck,
    DeltaCheck,
    ErrorDetector,
    MonotonicCheck,
    RangeCheck,
    calibrate_delta,
    calibrate_range,
)
from repro.edm.evaluation import (
    DetectorEvaluation,
    DetectorStats,
    effectiveness_score,
    evaluate_detectors,
)

__all__ = [
    "ConstancyCheck",
    "DeltaCheck",
    "DetectorEvaluation",
    "DetectorStats",
    "ErrorDetector",
    "MonotonicCheck",
    "RangeCheck",
    "calibrate_delta",
    "calibrate_range",
    "effectiveness_score",
    "evaluate_detectors",
]
