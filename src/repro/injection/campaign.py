"""Injection-campaign orchestration (Sections 6 and 7.3).

An :class:`InjectionCampaign` reproduces the paper's experimental
procedure:

1. for every test case (workload), record one Golden Run;
2. for every targeted module input, every injection time and every
   error model, execute one injection run with a single one-shot trap
   ("for each injection run (IR) only one error was injected at one
   time, i.e., no multiple errors were injected");
3. compare every IR against its test case's GR (Golden Run Comparison)
   and record an :class:`~repro.injection.outcomes.InjectionOutcome`.

The runtime object produced by the ``run_factory`` is reused across the
runs of one test case (``SimulationRun.run`` resets software, store,
clock and environment), so factories are invoked once per test case.

Golden-Run prefix reuse
-----------------------
Every IR is bit-identical to its Golden Run up to the injection instant
(the single one-shot trap is inert before its scheduled time, and
everything executes in simulated time).  By default the campaign
therefore records a :class:`~repro.simulation.runtime.RunCheckpoint` at
each configured injection time while the Golden Run executes, and every
IR resumes from the matching checkpoint via
:meth:`SimulationRun.run_from` — only the suffix after the injection
instant is simulated, and the Golden-Run trace prefix is stitched onto
the suffix traces.  Results are byte-for-byte identical to full
re-runs; with the paper's default grid (injection times 500–5000 ms
over an 8 s run) roughly a third of all simulated milliseconds are
skipped.  Set :attr:`CampaignConfig.reuse_golden_prefix` to ``False``
for the naive re-run-everything behaviour.

Reconvergence fast-forward
--------------------------
Prefix reuse skips the simulated milliseconds *before* each injection;
reconvergence fast-forward skips them *after* the injected error has
died out.  The paper's own data says this is the common case: most
:math:`P^M_{i,k}` pairs have low permeability, so most injected errors
are masked quickly and the IR then tracks the Golden Run
sample-for-sample.  With :attr:`CampaignConfig.fast_forward` enabled
(the default), the Golden Run additionally records one complete-state
digest per frame, and each IR maintains its divergence set against the
Golden Run incrementally at write sites; once the set is empty (and
the trap has fired), a digest match proves complete reconvergence and
the rest of the run is spliced from the Golden-Run traces — still
byte-for-byte identical to a full re-run (see
:meth:`repro.simulation.runtime.SimulationRun.run_from`).  The
reconvergence instant is recorded on each outcome as the paper's
error-lifetime measurement (:mod:`repro.injection.latency`).

Zero-copy golden-run sharing
----------------------------
:meth:`InjectionCampaign.execute_parallel` packs each Golden Run's
trace set into one flat ``array('q')`` published through
``multiprocessing.shared_memory`` and ships system/config/checkpoints
once per *worker* (pool initializer) instead of once per chunk;
checkpoints travel without their trace prefixes (reconstructed from
the shared Golden Run), and workers keep their runtime and Golden-Run
views cached across chunks.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence, TypeVar

from repro.injection.error_models import ErrorModel, bit_flip_models
from repro.injection.golden_run import GoldenRun, compare_to_golden_run
from repro.injection.outcomes import AdaptiveRow, CampaignResult, InjectionOutcome
from repro.injection.selection import paper_times
from repro.injection.traps import InputInjectionTrap
from repro.model.errors import CampaignError
from repro.model.system import SystemModel
from repro.simulation.backend import available_backends, get_backend
from repro.simulation.runtime import (
    GoldenReference,
    RunCheckpoint,
    RunResult,
    SimulationRun,
)
from repro.simulation.traces import (
    SignalTrace,
    TraceSet,
    pack_trace_samples,
    trace_views,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import CampaignObserver

__all__ = ["CampaignConfig", "InjectionCampaign"]

CaseT = TypeVar("CaseT")

#: Callback reporting campaign progress: (completed runs, total runs).
ProgressCallback = Callable[[int, int], None]

#: Callback seeing each injection run with its full traces (see
#: :meth:`InjectionCampaign.execute`).
InspectorCallback = Callable[[InjectionOutcome, RunResult, GoldenRun], None]


@dataclass(frozen=True)
class CampaignConfig:
    """Static configuration of one injection campaign.

    Parameters
    ----------
    duration_ms:
        Length of every run (GR and IR).  Must exceed the largest
        injection time.
    injection_times_ms:
        The injection instants; defaults to the paper's ten half-second
        steps from 0.5 s to 5.0 s.
    error_models:
        The corruption models; defaults to the paper's 16 single
        bit-flips.
    targets:
        The (module, input signal) pairs to inject; ``None`` targets
        every input of every module — the full Table 1 campaign.
    seed:
        Campaign master seed; per-run trap seeds are derived from it
        deterministically, so equal configurations give equal results.
    reuse_golden_prefix:
        When ``True`` (the default), Golden-Run checkpoints are captured
        at every injection time and each IR simulates only the suffix
        after its injection instant.  ``False`` re-runs every IR from
        time zero.  Both paths produce bit-identical results.
    fast_forward:
        When ``True`` (the default), the Golden Run records per-frame
        complete-state digests and every IR stops simulating once its
        injected error provably died out (divergence set empty and
        state digest matching the Golden Run's), splicing the
        Golden-Run trace suffix instead.  ``False`` (CLI:
        ``--no-fast-forward``) simulates every IR to the end.  Both
        paths produce bit-identical results; fast-forwarded outcomes
        additionally carry the reconvergence instant (the error's
        lifetime).
    lint:
        When ``True`` (the default), :func:`repro.lint.lint_system`
        runs before the first Golden Run; error-level findings abort
        the campaign with :class:`CampaignError`, warnings are reported
        through the observer (``LintReported`` event).  ``False``
        (CLI: ``--no-lint``) skips the gate.
    backend:
        The :mod:`simulation backend <repro.simulation.backend>`
        executing the injection runs: ``"reference"`` (the
        frame-stepping runtime) or ``"batched"`` (the vectorized lane
        kernel, byte-identical by contract).  Defaults to the
        ``REPRO_BACKEND`` environment variable, falling back to
        ``"reference"``.
    static_prune:
        When ``True``, the static bit-flow analysis (:mod:`repro.flow`)
        runs before the first Golden Run and every (module, input)
        target whose whole arc row is statically proven zero is
        *skipped* instead of injected.  Pruned targets are recorded as
        exact zero-error counts with the full injection denominator,
        so ``estimate_matrix()`` (and everything downstream: the
        tables, the dashboard reducer) stays complete and byte-stable
        on all arcs.  Soundness: a target prunes only when every error
        model's corruption is a known XOR mask that provably cannot
        escape the (stateless, ``vector_plan``-certified) module — see
        docs/STATIC_ANALYSIS.md.  Off by default (CLI:
        ``--static-prune``).
    dashboard:
        Optional ``host:port`` address for the live resilience
        dashboard (CLI: ``repro campaign --dash``, see
        docs/OBSERVABILITY.md).  Pure presentation wiring — the engine
        itself never opens sockets (the CLI starts the
        :class:`~repro.obs.dash.server.DashboardServer` and tees a
        :class:`~repro.obs.dash.sink.DashboardSink` into the
        observer), so the field does not participate in the config
        hash: two campaigns differing only in ``dashboard`` produce
        identical results and identical manifests.
    store:
        Optional directory of a content-addressed campaign result
        store (CLI: ``--store DIR``, see docs/INCREMENTAL.md).  Each
        (case, module, signal) target row is keyed on a content hash
        of everything its outcomes depend on; rows whose key is
        already stored are *reused* instead of injected, and freshly
        executed rows are published for the next campaign.  The
        recomposed result is byte-identical to a cold run (pinned by
        the ``incremental-parity`` verify oracle).  Like
        ``dashboard``, the field is pure execution strategy and does
        not participate in the config hash or the unit keys.
    no_cache:
        With a ``store`` configured, skip *reads* (every unit
        re-executes) but still publish results — a forced refresh
        (CLI: ``--no-cache``).  No effect without ``store``.
    adaptive:
        When ``True`` (CLI: ``--adaptive``), the campaign runs as a
        confidence-driven sequential-stopping experiment instead of the
        exhaustive grid: injections execute in rounds, each (module,
        input) target draws its trials from a seeded random permutation
        of its own exhaustive grid, and a target stops ("retires") once
        the widest Wilson interval across its output arcs is narrower
        than ``ci_width`` — see :mod:`repro.adaptive` and
        docs/ADAPTIVE.md.  Per-run seeds derive from grid coordinates,
        not execution order, so sampled outcomes are byte-identical to
        the exhaustive campaign's at the same coordinates.  Off by
        default; ``False`` leaves :meth:`InjectionCampaign.execute` /
        :meth:`~InjectionCampaign.execute_parallel` byte-identical to
        their exhaustive behaviour.
    ci_width:
        Adaptive stopping threshold: retire a target once its widest
        output-arc Wilson half-width drops below this.  ``None``
        resolves to 0.05.  Requires ``adaptive=True``.
    round_size:
        Trials distributed per adaptive round.  ``None`` resolves to
        twice the live-target count.  Requires ``adaptive=True``.
    max_trials_per_target:
        Per-target adaptive trial cap; a target hitting it retires with
        reason ``"cap"`` even while still wide.  ``None``: only pool
        exhaustion caps a target.  Requires ``adaptive=True``.
    budget_policy:
        Name of the :class:`repro.adaptive.BudgetPolicy` splitting each
        round's budget (``"widest-first"`` or ``"uniform"``).  ``None``
        resolves to ``"widest-first"``.  Requires ``adaptive=True``.
    """

    duration_ms: int = 8000
    injection_times_ms: tuple[int, ...] = field(default_factory=paper_times)
    error_models: tuple[ErrorModel, ...] = field(
        default_factory=lambda: tuple(bit_flip_models())
    )
    targets: tuple[tuple[str, str], ...] | None = None
    seed: int = 2001
    reuse_golden_prefix: bool = True
    fast_forward: bool = True
    lint: bool = True
    backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_BACKEND", "reference")
    )
    dashboard: str | None = None
    static_prune: bool = False
    store: str | None = None
    no_cache: bool = False
    adaptive: bool = False
    ci_width: float | None = None
    round_size: int | None = None
    max_trials_per_target: int | None = None
    budget_policy: str | None = None

    def __post_init__(self) -> None:
        if self.duration_ms < 1:
            raise CampaignError("duration_ms must be >= 1")
        if not self.injection_times_ms:
            raise CampaignError("at least one injection time is required")
        if not self.error_models:
            raise CampaignError("at least one error model is required")
        if max(self.injection_times_ms) >= self.duration_ms:
            raise CampaignError(
                "latest injection time "
                f"({max(self.injection_times_ms)} ms) must fall inside the "
                f"run duration ({self.duration_ms} ms)"
            )
        if self.backend not in available_backends():
            raise CampaignError(
                f"unknown simulation backend {self.backend!r}; expected one "
                f"of {', '.join(available_backends())}"
            )
        if not self.adaptive:
            stray = [
                name
                for name, value in (
                    ("ci_width", self.ci_width),
                    ("round_size", self.round_size),
                    ("max_trials_per_target", self.max_trials_per_target),
                    ("budget_policy", self.budget_policy),
                )
                if value is not None
            ]
            if stray:
                raise CampaignError(
                    f"{', '.join(stray)} require(s) adaptive=True "
                    "(--adaptive)"
                )
            return
        if self.ci_width is not None and not 0.0 < self.ci_width < 0.5:
            raise CampaignError(
                f"ci_width must lie in (0, 0.5), got {self.ci_width}"
            )
        if self.round_size is not None and self.round_size < 1:
            raise CampaignError(
                f"round_size must be >= 1, got {self.round_size}"
            )
        if (
            self.max_trials_per_target is not None
            and self.max_trials_per_target < 1
        ):
            raise CampaignError(
                "max_trials_per_target must be >= 1, "
                f"got {self.max_trials_per_target}"
            )
        if self.budget_policy is not None:
            from repro.adaptive import get_policy

            try:
                get_policy(self.budget_policy)
            except ValueError as exc:
                raise CampaignError(str(exc)) from None

    def runs_per_target(self) -> int:
        """IRs per targeted signal per test case (the paper: 16·10 = 160)."""
        return len(self.injection_times_ms) * len(self.error_models)

    def simulated_ms_skipped_per_target(self) -> int:
        """Simulated milliseconds prefix reuse saves per target per case.

        Each IR at injection time *t* skips exactly *t* of its
        ``duration_ms`` milliseconds; summed over the grid of one
        target this is ``n_models · Σt``.
        """
        if not self.reuse_golden_prefix:
            return 0
        return len(self.error_models) * sum(self.injection_times_ms)


def _derive_seed(
    master: int, case_id: str, module: str, signal: str, time_ms: int, model: str
) -> int:
    """Stable per-run seed (process-independent, unlike ``hash``)."""
    text = f"{master}|{case_id}|{module}|{signal}|{time_ms}|{model}"
    return zlib.crc32(text.encode("utf-8"))


#: Per-worker state built by :func:`_worker_init` and reused across all
#: chunks the worker processes: the campaign-wide payload (shipped once
#: per worker through the pool initializer, not once per chunk) plus
#: lazily materialised per-case runtimes and zero-copy Golden-Run views.
_WORKER_STATE: dict | None = None


def _worker_init(payload: tuple) -> None:
    """Pool initializer: receive the campaign payload once per worker."""
    global _WORKER_STATE
    system, run_factory, config, observe, case_blobs = payload
    _WORKER_STATE = {
        "system": system,
        "run_factory": run_factory,
        "config": config,
        "observe": observe,
        "blobs": {blob["case_id"]: blob for blob in case_blobs},
        "cases": {},
        "segments": [],
        "views": [],
    }
    import atexit

    atexit.register(_worker_shutdown)


def _worker_shutdown() -> None:
    """Release Golden-Run views before the shared segments detach.

    The worker's cached traces are ``memoryview``\\ s into shared
    memory; the segment cannot be closed while any view is exported, so
    drop the caches, release the root views and only then close.
    """
    state = _WORKER_STATE
    if state is None:
        return
    state["cases"].clear()
    state["blobs"].clear()
    for view in state["views"]:
        try:
            view.release()
        except BufferError:  # pragma: no cover - stray derived view
            pass
    state["views"].clear()
    for segment in state["segments"]:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - stray derived view
            pass
    state["segments"].clear()


def _materialize_case(state: dict, case_id: str) -> dict:
    """Build (once per worker) a case's runtime and Golden-Run views."""
    blob = state["blobs"][case_id]
    if blob["shm_name"] is not None:
        import multiprocessing
        from multiprocessing import resource_tracker, shared_memory

        segment = shared_memory.SharedMemory(name=blob["shm_name"])
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            # The parent owns the segment's lifetime.  A spawned worker
            # runs its own resource tracker, which would unlink the
            # segment when this worker exits — deregister it there.
            # (Forked workers share the parent's tracker: attaching
            # added nothing, so there is nothing to deregister.)
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker API is private
                pass
        state["segments"].append(segment)
        buffer = segment.buf
    else:
        buffer = blob["raw"]
    views = trace_views(buffer, blob["signals"], blob["duration_ms"])
    state["views"].extend(views.values())
    traces = TraceSet(
        SignalTrace(signal, view) for signal, view in views.items()
    )
    golden = GoldenRun(
        case_id=case_id,
        result=RunResult(
            traces=traces,
            duration_ms=blob["duration_ms"],
            final_signals=dict(blob["final_signals"]),
            telemetry=dict(blob["telemetry"]),
        ),
        digests=blob["digests"],
        initials=blob["initials"],
    )
    runner = state["run_factory"](blob["case"])
    runner.clear_hooks()
    entry = {
        "case": blob["case"],
        "runner": runner,
        "golden": golden,
        "checkpoints": blob["checkpoints"],
    }
    state["cases"][case_id] = entry
    return entry


def _run_shard(
    task: tuple[str, tuple[tuple[str, str], ...]],
) -> tuple[list[InjectionOutcome], dict | None, float]:
    """Worker entry point: run one shard of the target grid.

    The campaign payload (system, config, Golden Runs, checkpoints) is
    already worker-resident — a task is just ``(case_id, targets)``.
    Returns the shard's outcome list (IR traces stay worker-local)
    plus, when the parent campaign observes, the worker's observability
    payload and the shard's wall-clock seconds.
    """
    case_id, targets = task
    started = time.perf_counter()
    state = _WORKER_STATE
    assert state is not None, "worker used before _worker_init ran"
    entry = state["cases"].get(case_id)
    if entry is None:
        entry = _materialize_case(state, case_id)
    observer = None
    if state["observe"]:
        from repro.obs.observer import CampaignObserver

        observer = CampaignObserver.for_worker(state["system"])
    runner = entry["runner"]
    if observer is not None and observer.metrics is not None:
        runner.set_metrics(observer.metrics)
    try:
        campaign = InjectionCampaign(
            state["system"],
            state["run_factory"],
            {case_id: entry["case"]},
            state["config"],
            observer=observer,
        )
        outcomes = [
            outcome
            for outcome, _ in campaign._case_injections(
                runner, entry["golden"], targets, entry["checkpoints"]
            )
        ]
    finally:
        runner.set_metrics(None)
    obs_payload = observer.worker_payload() if observer is not None else None
    return outcomes, obs_payload, time.perf_counter() - started


def _run_adaptive_shard(
    task: tuple[str, tuple[tuple[str, str, int, int], ...]],
) -> tuple[list[InjectionOutcome], dict | None, float]:
    """Worker entry point for one adaptive round's fresh trials of a case.

    A task is ``(case_id, specs)`` where each spec is ``(module, signal,
    time_ms, model_index)`` — the parent's round scheduler decides the
    exact points, so no grid expansion happens worker-side.  Outcomes
    return in spec order.
    """
    case_id, specs = task
    started = time.perf_counter()
    state = _WORKER_STATE
    assert state is not None, "worker used before _worker_init ran"
    entry = state["cases"].get(case_id)
    if entry is None:
        entry = _materialize_case(state, case_id)
    observer = None
    if state["observe"]:
        from repro.obs.observer import CampaignObserver

        observer = CampaignObserver.for_worker(state["system"])
    runner = entry["runner"]
    if observer is not None and observer.metrics is not None:
        runner.set_metrics(observer.metrics)
    config = state["config"]
    checkpoints = entry["checkpoints"]
    try:
        campaign = InjectionCampaign(
            state["system"],
            state["run_factory"],
            {case_id: entry["case"]},
            config,
            observer=observer,
        )
        points = [
            _InjectionPoint(
                module,
                signal,
                time_ms,
                config.error_models[model_index],
                checkpoints.get(time_ms),
            )
            for module, signal, time_ms, model_index in specs
        ]
        context = _PointsContext(
            campaign, runner, entry["golden"], points, checkpoints
        )
        outcomes = [
            outcome
            for outcome, _ in campaign._exec_backend.case_injections(context)
        ]
    finally:
        runner.set_metrics(None)
    obs_payload = observer.worker_payload() if observer is not None else None
    return outcomes, obs_payload, time.perf_counter() - started


@dataclass(frozen=True)
class _InjectionPoint:
    """One planned injection of a case grid (backend work unit)."""

    module: str
    signal: str
    time_ms: int
    model: ErrorModel
    checkpoint: RunCheckpoint | None


class _CaseContext:
    """The campaign-side view a simulation backend works against.

    Owns grid order, observer emission, Golden-Run comparison and
    outcome records for one test case, so backends only decide *how*
    runs execute (see :mod:`repro.simulation.backend`).
    """

    def __init__(
        self,
        campaign: "InjectionCampaign",
        runner: SimulationRun,
        golden: GoldenRun,
        targets: Sequence[tuple[str, str]],
        checkpoints: Mapping[int, RunCheckpoint],
    ) -> None:
        self._campaign = campaign
        self.runner = runner
        self.golden = golden
        self.golden_ref = golden.reference
        self.config = campaign.config
        self._targets = tuple(targets)
        self._checkpoints = checkpoints

    @property
    def metrics(self):
        """The observer's metrics registry, if observability is on."""
        obs = self._campaign.observer
        return None if obs is None else obs.metrics

    def injection_points(self) -> Iterator[_InjectionPoint]:
        """The case's planned injections, in canonical grid order."""
        config = self.config
        for module, signal in self._targets:
            for time_ms in config.injection_times_ms:
                checkpoint = self._checkpoints.get(time_ms)
                for model in config.error_models:
                    yield _InjectionPoint(
                        module, signal, time_ms, model, checkpoint
                    )

    def run_reference(
        self, point: _InjectionPoint
    ) -> tuple[InjectionOutcome, RunResult]:
        """Execute one injection with the frame-stepping runtime."""
        return self._campaign._one_injection(
            self.runner,
            self.golden,
            self.golden.case_id,
            point.module,
            point.signal,
            point.time_ms,
            point.model,
            point.checkpoint,
            self.golden_ref,
        )

    def emit_result(
        self,
        point: _InjectionPoint,
        injected: RunResult,
        fired_at_ms: int | None,
    ) -> tuple[InjectionOutcome, RunResult]:
        """Fold a backend-computed run into the campaign record.

        Emits the same observer event sequence as the reference path
        (``RunStarted``, ``CheckpointReused``, then the outcome chain),
        so event streams stay comparable across backends.
        """
        campaign = self._campaign
        obs = campaign.observer
        case_id = self.golden.case_id
        if obs is not None:
            obs.on_run_started(
                case_id,
                kind="injection",
                module=point.module,
                signal=point.signal,
                time_ms=point.time_ms,
                error_model=point.model.name,
            )
            if point.checkpoint is not None:
                obs.on_checkpoint_reused(
                    case_id, point.time_ms, skipped_ms=point.checkpoint.time_ms
                )
        return campaign._finish_injection(
            self.golden,
            case_id,
            point.module,
            point.signal,
            point.time_ms,
            point.model,
            injected,
            fired_at_ms,
        )


class _PointsContext(_CaseContext):
    """A case context over an explicit list of injection points.

    The adaptive round loop schedules arbitrary subsets of the
    exhaustive grid; wrapping them in a context keeps execution on the
    normal backend path (:meth:`SimulationBackend.case_injections`), so
    adaptive campaigns run under both the reference and the batched
    backend without backend changes.
    """

    def __init__(
        self,
        campaign: "InjectionCampaign",
        runner: SimulationRun,
        golden: GoldenRun,
        points: Sequence[_InjectionPoint],
        checkpoints: Mapping[int, RunCheckpoint],
    ) -> None:
        super().__init__(campaign, runner, golden, (), checkpoints)
        self._points = tuple(points)

    def injection_points(self) -> Iterator[_InjectionPoint]:
        return iter(self._points)


class InjectionCampaign:
    """Runs the full GR/IR experiment grid over a set of test cases.

    Parameters
    ----------
    system:
        The static system model (defines targets and signal widths).
    run_factory:
        Builds a fresh :class:`SimulationRun` for a given test case.
        Called once per test case.
    test_cases:
        Mapping from case id to the (opaque) case object handed to the
        factory; a sequence is accepted and auto-labelled ``case00`` ...
    config:
        The campaign grid.
    observer:
        Optional :class:`~repro.obs.observer.CampaignObserver` receiving
        structured events, span metrics and propagation observations
        while the campaign executes.  ``None`` (the default) disables
        observability at the cost of one pointer test per hook site.
    """

    def __init__(
        self,
        system: SystemModel,
        run_factory: Callable[[CaseT], SimulationRun],
        test_cases: Mapping[str, CaseT] | Sequence[CaseT],
        config: CampaignConfig | None = None,
        observer: "CampaignObserver | None" = None,
    ) -> None:
        self._system = system
        self._run_factory = run_factory
        self._observer = observer
        if isinstance(test_cases, Mapping):
            self._test_cases: dict[str, CaseT] = dict(test_cases)
        else:
            self._test_cases = {
                f"case{index:02d}": case for index, case in enumerate(test_cases)
            }
        if not self._test_cases:
            raise CampaignError("at least one test case is required")
        self._config = config if config is not None else CampaignConfig()
        self._exec_backend = get_backend(self._config.backend)
        self._targets = self._resolve_targets()
        self._golden_runs: dict[str, GoldenRun] = {}
        #: Store traffic of the most recent execute()/execute_parallel()
        #: (a :class:`repro.store.StoreStats`), ``None`` without a store.
        self.last_store_stats = None

    def _resolve_targets(self) -> tuple[tuple[str, str], ...]:
        if self._config.targets is not None:
            for module, signal in self._config.targets:
                spec = self._system.module(module)
                spec.input_index(signal)  # validates
            return tuple(self._config.targets)
        targets: list[tuple[str, str]] = []
        for module_name in self._system.module_names():
            for signal in self._system.module(module_name).inputs:
                targets.append((module_name, signal))
        return tuple(targets)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def config(self) -> CampaignConfig:
        return self._config

    @property
    def observer(self) -> "CampaignObserver | None":
        """The attached observability façade, if any."""
        return self._observer

    @property
    def targets(self) -> tuple[tuple[str, str], ...]:
        """The (module, input signal) pairs that will be injected."""
        return self._targets

    def case_ids(self) -> tuple[str, ...]:
        """Identifiers of the campaign's test cases, in grid order."""
        return tuple(self._test_cases)

    def total_runs(self) -> int:
        """Total IR count of the campaign (excluding Golden Runs)."""
        return (
            len(self._test_cases)
            * len(self._targets)
            * self._config.runs_per_target()
        )

    def simulated_ms_total(self) -> int:
        """Simulated milliseconds a naive campaign executes (IRs only)."""
        return self.total_runs() * self._config.duration_ms

    def simulated_ms_skipped(self) -> int:
        """Simulated milliseconds prefix reuse skips across the campaign."""
        return (
            len(self._test_cases)
            * len(self._targets)
            * self._config.simulated_ms_skipped_per_target()
        )

    def golden_runs(self) -> Mapping[str, GoldenRun]:
        """Golden runs recorded so far (populated during execution)."""
        return dict(self._golden_runs)

    # ------------------------------------------------------------------
    # Static pruning (repro.flow)
    # ------------------------------------------------------------------

    def _plan_pruning(
        self,
    ) -> tuple[tuple[tuple[str, str], ...], tuple[tuple[str, str], ...]]:
        """Split the target grid into (live, statically-pruned) targets.

        With :attr:`CampaignConfig.static_prune` off this is the
        identity.  Otherwise one probe runtime is built to derive
        transfer masks and every target whose whole arc row is proven
        zero under this campaign's error models is moved to the pruned
        set (grid order preserved on both sides).
        """
        if not self._config.static_prune:
            return self._targets, ()
        from repro.flow import analyse_run

        probe = self._run_factory(next(iter(self._test_cases.values())))
        analysis = analyse_run(probe, error_models=self._config.error_models)
        pruned = set(analysis.prunable_targets(self._targets))
        live = tuple(t for t in self._targets if t not in pruned)
        return live, tuple(t for t in self._targets if t in pruned)

    def _record_pruned(
        self,
        result: CampaignResult,
        pruned: Sequence[tuple[str, str]],
        runs_per_target: int,
    ) -> int:
        """Record pruned targets as exact zero-error counts; return arcs."""
        n_arcs = 0
        for module, signal in pruned:
            result.record_pruned(module, signal, runs_per_target)
            n_arcs += len(self._system.module(module).outputs)
        return n_arcs

    # ------------------------------------------------------------------
    # Incremental execution (repro.store)
    # ------------------------------------------------------------------

    def _store_session(self):
        """Open the configured result store, or ``None`` without one.

        Returns ``(store, key_builder, stats)``; digest-mismatch
        rejections are routed to the observer as warning events.
        """
        if self._config.store is None:
            return None
        from repro.store import ResultStore, StoreStats, UnitKeyBuilder

        stats = StoreStats()
        obs = self._observer

        def reject(key: str, path: str, reason: str) -> None:
            stats.rejected += 1
            if obs is not None:
                obs.on_store_artifact_rejected(key, path, reason)

        store = ResultStore(self._config.store, on_reject=reject)
        builder = UnitKeyBuilder(self._system, self._run_factory, self._config)
        return store, builder, stats

    def _encode_unit(
        self,
        case_id: str,
        module: str,
        signal: str,
        outcomes: Sequence[InjectionOutcome],
    ) -> dict:
        """Store payload of one executed target row.

        The outcome records are the authoritative data (recomposition
        rebuilds :class:`CampaignResult` from them alone); the per-arc
        direct-error counts and lifetime records ride along so
        ``repro store ls`` is informative without re-deriving.
        """
        spec = self._system.module(module)
        input_is_feedback = signal in spec.outputs
        arc_counts = {}
        for output in spec.outputs:
            n_errors = sum(
                1
                for outcome in outcomes
                if outcome.fired
                and outcome.direct_output_error(
                    output, input_is_feedback=input_is_feedback
                )
            )
            arc_counts[output] = [len(outcomes), n_errors]
        return {
            "kind": "unit",
            "case_id": case_id,
            "module": module,
            "signal": signal,
            "n_runs": len(outcomes),
            "outcomes": [outcome.to_jsonable() for outcome in outcomes],
            "arc_counts": arc_counts,
            "lifetimes_ms": [
                outcome.error_lifetime_ms
                for outcome in outcomes
                if outcome.error_lifetime_ms is not None
            ],
            "n_fired": sum(1 for outcome in outcomes if outcome.fired),
            "n_reconverged": sum(
                1 for outcome in outcomes if outcome.reconverged
            ),
        }

    def _decode_unit(
        self, payload: dict, case_id: str, module: str, signal: str
    ) -> list[InjectionOutcome] | None:
        """Outcomes of a stored unit, or ``None`` when it cannot be reused.

        Pruned records (``kind != "unit"``) carry no per-run data and a
        payload whose outcome count does not match this campaign's grid
        cannot recompose byte-identically — both are treated as misses.
        """
        if payload.get("kind") != "unit":
            return None
        raw = payload.get("outcomes")
        if not isinstance(raw, list) or len(raw) != self._config.runs_per_target():
            return None
        try:
            decoded = [InjectionOutcome.from_jsonable(entry) for entry in raw]
        except (KeyError, TypeError):
            return None
        for outcome in decoded:
            if (
                outcome.case_id != case_id
                or outcome.module != module
                or outcome.input_signal != signal
            ):
                return None
        return decoded

    def _decode_adaptive_unit(
        self, payload: dict, case_id: str, module: str, signal: str
    ) -> list[InjectionOutcome] | None:
        """Outcomes of a stored adaptive row, or ``None`` on any mismatch.

        Unlike :meth:`_decode_unit` the outcome count is free — an
        adaptive row holds however many trials the stopping rule needed.
        Reuse stays sound at trial granularity: the round loop only
        consumes cached outcomes whose exact grid coordinates it
        scheduled, and per-run seeds depend on coordinates alone.
        """
        if payload.get("kind") != "adaptive-unit":
            return None
        raw = payload.get("outcomes")
        if not isinstance(raw, list) or not raw:
            return None
        try:
            decoded = [InjectionOutcome.from_jsonable(entry) for entry in raw]
        except (KeyError, TypeError):
            return None
        for outcome in decoded:
            if (
                outcome.case_id != case_id
                or outcome.module != module
                or outcome.input_signal != signal
            ):
                return None
        return decoded

    def _plan_case_store(
        self,
        store,
        builder,
        stats,
        case_id: str,
        case: CaseT,
        live_targets: Sequence[tuple[str, str]],
        pruned: Sequence[tuple[str, str]],
    ) -> tuple[dict, dict]:
        """Compute one case's unit keys and fetch every reusable row.

        Returns ``(keys, cached)`` where ``cached`` maps hit targets to
        their decoded outcome lists.  Keys cover pruned targets too so
        their records can be published.
        """
        obs = self._observer
        keys = builder.keys_for_case(
            case_id, case, (*live_targets, *pruned)
        )
        cached: dict[tuple[str, str], list[InjectionOutcome]] = {}
        for target in live_targets:
            key = keys[target]
            if not key.cacheable:
                stats.uncacheable += 1
                continue
            if self._config.no_cache:
                continue
            payload = store.fetch(key.digest)
            decoded = (
                None
                if payload is None
                else self._decode_unit(payload, case_id, *target)
            )
            if decoded is None:
                stats.misses += 1
                if obs is not None:
                    obs.on_store_miss(case_id, *target)
            else:
                cached[target] = decoded
                stats.hits += 1
                stats.runs_reused += len(decoded)
        return keys, cached

    def _publish_case_units(
        self,
        store,
        keys: dict,
        case_id: str,
        fresh: Mapping[tuple[str, str], list[InjectionOutcome]],
        pruned: Sequence[tuple[str, str]],
    ) -> None:
        """Publish freshly executed rows and pruned-target records.

        A pruned record shares its key with the full unit the target
        would produce if executed (the key excludes ``static_prune``),
        so it is only written where nothing is stored yet — a full unit
        is never clobbered by the poorer pruned form.
        """
        for (module, signal), outcomes in fresh.items():
            key = keys[(module, signal)]
            if key.cacheable:
                store.put(
                    key.digest,
                    self._encode_unit(case_id, module, signal, outcomes),
                )
        for module, signal in pruned:
            key = keys[(module, signal)]
            if key.cacheable and not store.contains(key.digest):
                store.put(
                    key.digest,
                    {
                        "kind": "pruned",
                        "case_id": case_id,
                        "module": module,
                        "signal": signal,
                        "n_runs": self._config.runs_per_target(),
                    },
                )

    # ------------------------------------------------------------------
    # Adaptive execution (repro.adaptive)
    # ------------------------------------------------------------------

    def _execute_adaptive(
        self,
        progress: ProgressCallback | None,
        mode: str,
        make_run_batches,
    ) -> CampaignResult:
        """The confidence-driven round loop shared by both execute paths.

        ``make_run_batches(need_cases)`` returns ``(run_batches,
        cleanup)``: ``run_batches`` executes one round's fresh trial
        batches (``[(case_id, specs)]`` with specs ``(module, signal,
        time_ms, model_index)``) and returns ``{case_id: [outcomes in
        spec order]}``; ``cleanup`` releases executor resources.
        ``need_cases`` are the cases that may execute at all (rows not
        fully covered by the result store) so the parallel path only
        records Golden Runs and ships worker blobs for those.
        """
        from repro.adaptive import (
            AdaptiveController,
            TargetMeasurement,
            get_policy,
        )
        from repro.obs.propagation import PropagationObservations

        obs = self._observer
        config = self._config
        started = time.perf_counter()
        if obs is not None:
            obs.on_campaign_started(self, mode=mode)
            obs.on_backend_selected(self._exec_backend.name)
        self._lint_gate()
        live_targets, pruned = self._plan_pruning()
        session = self._store_session()
        result = CampaignResult(self._system)
        completed = 0
        total = self.total_runs()
        if pruned:
            per_target = len(self._test_cases) * config.runs_per_target()
            n_arcs = self._record_pruned(result, pruned, per_target)
            if obs is not None:
                obs.on_arcs_pruned(pruned, per_target, n_arcs)
            completed = len(pruned) * per_target
            if progress is not None:
                progress(completed, total)

        # Resolved stopping parameters (store keys use the resolved
        # values, so configs that only spell the defaults differently
        # share adaptive rows).
        z = 1.96
        ci_width = config.ci_width if config.ci_width is not None else 0.05
        round_size = (
            config.round_size
            if config.round_size is not None
            else max(1, 2 * len(live_targets))
        )
        cap = config.max_trials_per_target
        policy_name = (
            config.budget_policy
            if config.budget_policy is not None
            else "widest-first"
        )
        case_ids = tuple(self._test_cases)
        runs_per_target = config.runs_per_target()
        n_pool = len(case_ids) * runs_per_target

        # Store planning: per (case, target) a map of cached outcomes
        # keyed by exact grid coordinates.  A full exhaustive unit
        # satisfies any adaptive request; failing that, a previously
        # published adaptive row under the resolved stopping parameters.
        cache: dict[
            tuple[str, tuple[str, str]],
            dict[tuple[int, str], InjectionOutcome],
        ] = {}
        row_key: dict[tuple[str, tuple[str, str]], str] = {}
        full_rows: set[tuple[str, tuple[str, str]]] = set()
        case_keys: dict[str, dict] = {}
        if session is not None:
            from repro.store.fingerprints import content_digest

            store, builder, stats = session
            for case_id, case in self._test_cases.items():
                keys = builder.keys_for_case(
                    case_id, case, (*live_targets, *pruned)
                )
                case_keys[case_id] = keys
                for target in live_targets:
                    key = keys[target]
                    if not key.cacheable:
                        stats.uncacheable += 1
                        continue
                    row_key[(case_id, target)] = content_digest(
                        {
                            "kind": "adaptive",
                            "base": key.digest,
                            "ci_width": ci_width,
                            "round_size": round_size,
                            "max_trials_per_target": (
                                cap if cap is not None else n_pool
                            ),
                            "z": z,
                            "policy": policy_name,
                        }
                    )
                    if config.no_cache:
                        continue
                    payload = store.fetch(key.digest)
                    decoded = (
                        None
                        if payload is None
                        else self._decode_unit(payload, case_id, *target)
                    )
                    if decoded is None:
                        payload = store.fetch(row_key[(case_id, target)])
                        decoded = (
                            None
                            if payload is None
                            else self._decode_adaptive_unit(
                                payload, case_id, *target
                            )
                        )
                    if decoded is None:
                        stats.misses += 1
                        if obs is not None:
                            obs.on_store_miss(case_id, *target)
                        continue
                    stats.hits += 1
                    trial_map = {
                        (o.scheduled_time_ms, o.error_model): o
                        for o in decoded
                    }
                    cache[(case_id, target)] = trial_map
                    if len(trial_map) >= runs_per_target:
                        full_rows.add((case_id, target))

        need_cases = tuple(
            case_id
            for case_id in case_ids
            if any(
                (case_id, target) not in full_rows for target in live_targets
            )
        )
        pool_triples = tuple(
            (case_id, time_ms, model_index)
            for case_id in case_ids
            for time_ms in config.injection_times_ms
            for model_index in range(len(config.error_models))
        )
        controller: AdaptiveController[tuple[str, int, int]] = (
            AdaptiveController(
                {target: pool_triples for target in live_targets},
                ci_width=ci_width,
                round_size=round_size,
                max_trials_per_target=cap,
                seed=config.seed,
                z=z,
                policy=get_policy(policy_name),
            )
        )
        observations = PropagationObservations(self._system)
        achieved: dict[
            tuple[str, tuple[str, str]], list[InjectionOutcome]
        ] = {}
        fresh_rows: set[tuple[str, tuple[str, str]]] = set()
        run_batches, cleanup = make_run_batches(need_cases)
        try:
            while not controller.finished:
                schedule = controller.next_round()
                per_case: dict[str, list] = {cid: [] for cid in case_ids}
                for target, trials in schedule.items():
                    for case_id, time_ms, model_index in trials:
                        per_case[case_id].append(
                            (target, time_ms, model_index)
                        )
                batches = []
                plan: list[tuple[str, list]] = []
                for case_id in case_ids:
                    entries = per_case[case_id]
                    if not entries:
                        continue
                    specs: list[tuple[str, str, int, int]] = []
                    rows: list = []
                    for target, time_ms, model_index in entries:
                        model_name = config.error_models[model_index].name
                        trial_map = cache.get((case_id, target))
                        outcome = (
                            None
                            if trial_map is None
                            else trial_map.get((time_ms, model_name))
                        )
                        if outcome is None:
                            rows.append((target, None, len(specs)))
                            specs.append(
                                (target[0], target[1], time_ms, model_index)
                            )
                        else:
                            rows.append((target, outcome, -1))
                    if specs:
                        batches.append((case_id, tuple(specs)))
                    plan.append((case_id, rows))
                executed = run_batches(batches) if batches else {}
                n_round = 0
                for case_id, rows in plan:
                    fresh_list = executed.get(case_id, [])
                    for target, cached_outcome, index in rows:
                        if cached_outcome is None:
                            outcome = fresh_list[index]
                            fresh_rows.add((case_id, target))
                            if session is not None:
                                session[2].runs_executed += 1
                        else:
                            outcome = cached_outcome
                            if session is not None:
                                session[2].runs_reused += 1
                            if obs is not None:
                                obs.on_outcome(outcome)
                        observations.record(outcome)
                        result.add(outcome)
                        achieved.setdefault((case_id, target), []).append(
                            outcome
                        )
                        n_round += 1
                        completed += 1
                if progress is not None:
                    progress(completed, total)
                measurements = {}
                for target in controller.open_targets():
                    module, signal = target
                    if controller.n_taken(target) == 0:
                        measurements[target] = TargetMeasurement(0.5, 0.5)
                        continue
                    half = -1.0
                    point = 0.0
                    for output in self._system.module(module).outputs:
                        arc = observations.arc(module, signal, output)
                        lo, hi = arc.wilson_interval(z)
                        if (hi - lo) / 2.0 > half:
                            half = (hi - lo) / 2.0
                            point = arc.observed_permeability
                    if half < 0.0:
                        half = 0.0  # a target with no output arcs
                    measurements[target] = TargetMeasurement(
                        half_width=half, point_estimate=point
                    )
                for retiree in controller.complete_round(measurements):
                    result.record_adaptive(
                        AdaptiveRow(
                            module=retiree.module,
                            input_signal=retiree.signal,
                            n_trials=retiree.n_trials,
                            n_grid=n_pool,
                            half_width=retiree.half_width,
                            reason=retiree.reason,
                            round_index=retiree.round_index,
                        )
                    )
                    if obs is not None:
                        obs.on_target_retired(
                            retiree.module,
                            retiree.signal,
                            retiree.n_trials,
                            retiree.half_width,
                            retiree.reason,
                            retiree.round_index,
                        )
                if obs is not None:
                    obs.on_round_completed(
                        controller.round_index,
                        n_round,
                        len(controller.open_targets()),
                    )
        finally:
            cleanup()
        unconverged: dict[str, int] = {}
        for retiree in controller.retired():
            if retiree.reason != "confidence":
                unconverged[retiree.reason] = (
                    unconverged.get(retiree.reason, 0) + 1
                )
        if unconverged and obs is not None:
            obs.on_budget_exhausted(unconverged)
        if session is not None:
            store, builder, stats = session
            for case_id in case_ids:
                self._publish_case_units(
                    store, case_keys[case_id], case_id, {}, pruned
                )
                for target in live_targets:
                    row = (case_id, target)
                    if row not in fresh_rows or row not in row_key:
                        continue
                    payload = self._encode_unit(
                        case_id, target[0], target[1], achieved[row]
                    )
                    payload["kind"] = "adaptive-unit"
                    store.put(row_key[row], payload)
            self.last_store_stats = stats
        else:
            self.last_store_stats = None
        if obs is not None:
            obs.on_campaign_finished(result, time.perf_counter() - started)
        return result

    def _execute_adaptive_serial(
        self,
        progress: ProgressCallback | None,
        inspector: "InspectorCallback | None",
    ) -> CampaignResult:
        """Adaptive rounds on the serial path (lazy Golden Runs per case)."""
        config = self._config
        case_state: dict[str, tuple] = {}

        def run_batches(batches):
            executed: dict[str, list[InjectionOutcome]] = {}
            for case_id, specs in batches:
                entry = case_state.get(case_id)
                if entry is None:
                    entry = self._golden_for_case(
                        case_id, self._test_cases[case_id]
                    )
                    self._golden_runs[case_id] = entry[1]
                    case_state[case_id] = entry
                runner, golden, checkpoints = entry
                points = [
                    _InjectionPoint(
                        module,
                        signal,
                        time_ms,
                        config.error_models[model_index],
                        checkpoints.get(time_ms),
                    )
                    for module, signal, time_ms, model_index in specs
                ]
                context = _PointsContext(
                    self, runner, golden, points, checkpoints
                )
                outcomes = []
                for outcome, injected in self._exec_backend.case_injections(
                    context
                ):
                    if inspector is not None:
                        inspector(outcome, injected, golden)
                    outcomes.append(outcome)
                executed[case_id] = outcomes
            return executed

        def make(need_cases):
            return run_batches, (lambda: None)

        return self._execute_adaptive(progress, "serial", make)

    def _execute_adaptive_parallel(
        self,
        max_workers: int | None,
        progress: ProgressCallback | None,
    ) -> CampaignResult:
        """Adaptive rounds over a long-lived worker pool.

        Golden Runs (and shared-memory blobs) are prepared only for the
        cases the store cannot fully answer; the pool stays up across
        rounds so workers keep their per-case runtimes cached.
        """
        import concurrent.futures
        from multiprocessing import shared_memory

        obs = self._observer
        segments: list = []
        chunk_counter = [0]

        def make(need_cases):
            case_blobs = []
            for case_id in need_cases:
                runner, golden, checkpoints = self._golden_for_case(
                    case_id, self._test_cases[case_id]
                )
                self._golden_runs[case_id] = golden
                signals, duration_ms, flat = pack_trace_samples(
                    golden.result.traces
                )
                n_bytes = len(flat) * flat.itemsize
                shm_name = None
                raw = None
                try:
                    segment = shared_memory.SharedMemory(
                        create=True, size=max(1, n_bytes)
                    )
                    segment.buf[:n_bytes] = memoryview(flat).cast("B")
                    segments.append(segment)
                    shm_name = segment.name
                except OSError:
                    raw = flat.tobytes()
                case_blobs.append(
                    {
                        "case_id": case_id,
                        "case": self._test_cases[case_id],
                        "signals": signals,
                        "duration_ms": duration_ms,
                        "shm_name": shm_name,
                        "raw": raw,
                        "checkpoints": {
                            time_ms: cp.without_trace_prefix()
                            for time_ms, cp in checkpoints.items()
                        },
                        "digests": golden.digests,
                        "initials": golden.initials,
                        "final_signals": golden.result.final_signals,
                        "telemetry": golden.result.telemetry,
                    }
                )
            pool = None
            if case_blobs:
                payload = (
                    self._system,
                    self._run_factory,
                    self._config,
                    obs is not None,
                    tuple(case_blobs),
                )
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=max_workers,
                    initializer=_worker_init,
                    initargs=(payload,),
                )

            def run_batches(batches):
                assert pool is not None, "fresh trials without worker blobs"
                executed: dict[str, list[InjectionOutcome]] = {}
                for index, (outcomes, obs_payload, elapsed_s) in enumerate(
                    pool.map(_run_adaptive_shard, batches)
                ):
                    case_id, specs = batches[index]
                    executed[case_id] = outcomes
                    if obs is not None:
                        if obs_payload is not None:
                            obs.absorb_worker(obs_payload)
                        if obs.propagation is not None:
                            obs.propagation.record_all(outcomes)
                        obs.on_chunk_completed(
                            chunk_index=chunk_counter[0],
                            case_id=case_id,
                            n_targets=len(
                                {(m, s) for m, s, _, _ in specs}
                            ),
                            n_runs=len(outcomes),
                            elapsed_s=elapsed_s,
                        )
                        chunk_counter[0] += 1
                return executed

            def cleanup():
                if pool is not None:
                    pool.shutdown()
                for segment in segments:
                    try:
                        segment.close()
                        segment.unlink()
                    except OSError:  # pragma: no cover - already gone
                        pass

            return run_batches, cleanup

        return self._execute_adaptive(progress, "parallel", make)

    # ------------------------------------------------------------------
    # Lint gate
    # ------------------------------------------------------------------

    def lint(self):
        """Lint the system model against this campaign's target grid.

        Returns the :class:`~repro.lint.LintReport`; :meth:`execute`
        and :meth:`execute_parallel` run this automatically unless
        :attr:`CampaignConfig.lint` is ``False``.
        """
        from repro.lint import lint_system

        return lint_system(self._system, targets=self._targets)

    def _lint_gate(self) -> None:
        """Refuse to start a campaign on an error-level lint finding.

        Injecting into a malformed model silently produces meaningless
        permeability estimates, so the check is on by default and runs
        *before* any (expensive) Golden Run.  The report also goes to
        the observer, making an aborted ``events.jsonl`` self-explaining.
        """
        if not self._config.lint:
            return
        report = self.lint()
        if self._observer is not None:
            self._observer.on_lint_report(report)
        if report.has_errors:
            summary = "; ".join(
                f"{d.code} {d.message}" for d in report.errors()
            )
            raise CampaignError(
                f"lint found {len(report.errors())} error-level problem(s) "
                f"in system {self._system.name!r}: {summary} "
                "(fix the model, or bypass with CampaignConfig(lint=False) "
                "/ --no-lint)"
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        progress: ProgressCallback | None = None,
        inspector: "InspectorCallback | None" = None,
    ) -> CampaignResult:
        """Run the whole campaign and return the collected outcomes.

        Parameters
        ----------
        progress:
            Optional ``(completed, total)`` callback, invoked once per
            completed injection run.
        inspector:
            Optional callback invoked for every injection run *while
            its full traces are still available* (they are discarded
            afterwards to bound memory).  Receives the outcome record,
            the injection run's :class:`RunResult` and the test case's
            Golden Run.  Used e.g. by the EDM evaluation layer to replay
            detectors over the traces.  With a result store configured,
            only freshly *executed* runs reach the inspector — reused
            rows carry outcome records, not traces.
        """
        if self._config.adaptive:
            return self._execute_adaptive_serial(progress, inspector)
        obs = self._observer
        started = time.perf_counter()
        if obs is not None:
            obs.on_campaign_started(self, mode="serial")
            obs.on_backend_selected(self._exec_backend.name)
        self._lint_gate()
        live_targets, pruned = self._plan_pruning()
        session = self._store_session()
        result = CampaignResult(self._system)
        completed = 0
        total = self.total_runs()
        if pruned:
            per_target = len(self._test_cases) * self._config.runs_per_target()
            n_arcs = self._record_pruned(result, pruned, per_target)
            if obs is not None:
                obs.on_arcs_pruned(pruned, per_target, n_arcs)
            completed = len(pruned) * per_target
            if progress is not None:
                progress(completed, total)
        for case_id, case in self._test_cases.items():
            if session is None:
                runner, golden, checkpoints = self._golden_for_case(
                    case_id, case
                )
                self._golden_runs[case_id] = golden
                for outcome, injected in self._case_injections(
                    runner, golden, live_targets, checkpoints
                ):
                    if inspector is not None:
                        inspector(outcome, injected, golden)
                    result.add(outcome)
                    completed += 1
                    if progress is not None:
                        progress(completed, total)
                continue
            store, builder, stats = session
            keys, cached = self._plan_case_store(
                store, builder, stats, case_id, case, live_targets, pruned
            )
            miss_targets = tuple(
                target for target in live_targets if target not in cached
            )
            fresh: dict[tuple[str, str], list[InjectionOutcome]] = {}
            if miss_targets:
                # Fully reused cases skip even their Golden Run.
                runner, golden, checkpoints = self._golden_for_case(
                    case_id, case
                )
                self._golden_runs[case_id] = golden
                for outcome, injected in self._case_injections(
                    runner, golden, miss_targets, checkpoints
                ):
                    if inspector is not None:
                        inspector(outcome, injected, golden)
                    fresh.setdefault(
                        (outcome.module, outcome.input_signal), []
                    ).append(outcome)
                    stats.runs_executed += 1
                    completed += 1
                    if progress is not None:
                        progress(completed, total)
            self._publish_case_units(store, keys, case_id, fresh, pruned)
            # Recompose in canonical grid order: cache hits interleave
            # with fresh rows exactly where a cold run would put them.
            for target in live_targets:
                if target in cached:
                    outcomes = cached[target]
                    if obs is not None:
                        obs.on_unit_reused(
                            case_id,
                            target[0],
                            target[1],
                            len(outcomes),
                            keys[target].digest,
                        )
                        for outcome in outcomes:
                            obs.on_outcome(outcome)
                    for outcome in outcomes:
                        result.add(outcome)
                    completed += len(outcomes)
                    if progress is not None:
                        progress(completed, total)
                else:
                    for outcome in fresh.get(target, []):
                        result.add(outcome)
        self.last_store_stats = session[2] if session is not None else None
        if obs is not None:
            obs.on_campaign_finished(result, time.perf_counter() - started)
        return result

    def _golden_for_case(
        self, case_id: str, case: CaseT
    ) -> tuple[SimulationRun, GoldenRun, dict[int, RunCheckpoint]]:
        """Build the runtime and record the Golden Run of one test case.

        With prefix reuse enabled, checkpoints are captured at every
        configured injection time while the Golden Run executes.
        """
        obs = self._observer
        config = self._config
        runner = self._run_factory(case)
        runner.clear_hooks()
        if obs is not None:
            if obs.metrics is not None:
                runner.set_metrics(obs.metrics)
            obs.on_run_started(case_id, kind="golden")
        checkpoint_times = (
            config.injection_times_ms if config.reuse_golden_prefix else ()
        )
        digests = None

        def record():
            if config.fast_forward:
                return runner.run_with_checkpoints(
                    config.duration_ms, checkpoint_times, frame_digests=True
                )
            if checkpoint_times:
                return runner.run_with_checkpoints(
                    config.duration_ms, checkpoint_times
                )
            return runner.run(config.duration_ms), {}

        if obs is not None and obs.metrics is not None:
            with obs.metrics.timer("phase.golden_run.seconds"):
                recorded = record()
        else:
            recorded = record()
        if config.fast_forward:
            golden_result, checkpoints, digests = recorded
        else:
            golden_result, checkpoints = recorded
        if obs is not None and checkpoints:
            obs.on_checkpoints_saved(case_id, sorted(checkpoints))
        golden = GoldenRun(
            case_id=case_id,
            result=golden_result,
            digests=digests,
            initials=runner.store.initial_values(),
        )
        return runner, golden, checkpoints

    def _case_injections(
        self,
        runner: SimulationRun,
        golden: GoldenRun,
        targets: Sequence[tuple[str, str]],
        checkpoints: Mapping[int, RunCheckpoint],
    ) -> Iterator[tuple[InjectionOutcome, RunResult]]:
        """Yield every IR of ``targets`` for one test case, in grid order.

        Execution is delegated to the configured simulation backend;
        the campaign retains ownership of grid order, observers,
        comparison and outcome records via the case context.
        """
        context = _CaseContext(self, runner, golden, targets, checkpoints)
        return self._exec_backend.case_injections(context)

    def _one_injection(
        self,
        runner: SimulationRun,
        golden: GoldenRun,
        case_id: str,
        module: str,
        signal: str,
        time_ms: int,
        model: ErrorModel,
        checkpoint: RunCheckpoint | None = None,
        golden_ref: GoldenReference | None = None,
    ) -> tuple[InjectionOutcome, "RunResult"]:
        if runner.hooks_installed:
            raise CampaignError(
                "runtime has hooks installed from a previous run; "
                "refusing to arm a trap on a dirty runtime"
            )
        obs = self._observer
        if obs is not None:
            obs.on_run_started(
                case_id,
                kind="injection",
                module=module,
                signal=signal,
                time_ms=time_ms,
                error_model=model.name,
            )
            if checkpoint is not None:
                obs.on_checkpoint_reused(
                    case_id, time_ms, skipped_ms=checkpoint.time_ms
                )
        trap = InputInjectionTrap.for_system(
            self._system,
            module=module,
            signal=signal,
            time_ms=time_ms,
            error_model=model,
            seed=_derive_seed(
                self._config.seed, case_id, module, signal, time_ms, model.name
            ),
        )
        runner.add_read_interceptor(trap)
        try:
            if obs is not None and obs.metrics is not None:
                with obs.metrics.timer("phase.injection_run.seconds"):
                    if checkpoint is not None:
                        injected = runner.run_from(
                            checkpoint, self._config.duration_ms, golden_ref
                        )
                    else:
                        injected = runner.run(
                            self._config.duration_ms, golden_ref
                        )
            elif checkpoint is not None:
                injected = runner.run_from(
                    checkpoint, self._config.duration_ms, golden_ref
                )
            else:
                injected = runner.run(self._config.duration_ms, golden_ref)
        finally:
            runner.clear_hooks()
        return self._finish_injection(
            golden, case_id, module, signal, time_ms, model,
            injected, trap.fired_at_ms,
        )

    def _finish_injection(
        self,
        golden: GoldenRun,
        case_id: str,
        module: str,
        signal: str,
        time_ms: int,
        model: ErrorModel,
        injected: "RunResult",
        fired_at_ms: int | None,
    ) -> tuple[InjectionOutcome, "RunResult"]:
        """Compare an executed IR to its Golden Run and record the outcome."""
        obs = self._observer
        if obs is not None and obs.metrics is not None:
            with obs.metrics.timer("phase.comparison.seconds"):
                comparison = compare_to_golden_run(golden, injected)
        else:
            comparison = compare_to_golden_run(golden, injected)
        outcome = InjectionOutcome(
            case_id=case_id,
            module=module,
            input_signal=signal,
            scheduled_time_ms=time_ms,
            fired_at_ms=fired_at_ms,
            error_model=model.name,
            comparison=comparison,
            reconverged_at_ms=injected.reconverged_at_ms,
            frames_fast_forwarded=injected.frames_fast_forwarded,
        )
        if obs is not None:
            obs.on_outcome(outcome)
        return outcome, injected

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------

    def execute_parallel(
        self,
        max_workers: int | None = None,
        progress: ProgressCallback | None = None,
        chunk_size: int | None = None,
    ) -> CampaignResult:
        """Run the campaign grid-sharded over a process pool.

        The ``(case, module, signal)`` target grid is split into chunks
        of ``chunk_size`` targets; each chunk is one work item, so the
        usable worker count scales with the grid size rather than being
        capped at the number of test cases.  Golden Runs (and their
        prefix-reuse checkpoints and fast-forward digests) are computed
        once per test case in the parent process; the workers replay
        only the injection suffixes.

        The campaign-wide payload is shipped *once per worker* through
        the pool initializer, not once per chunk: each Golden-Run trace
        set is packed into one flat ``array('q')`` published via
        ``multiprocessing.shared_memory`` (workers map it zero-copy;
        when shared memory is unavailable the packed bytes ride along
        in the payload instead), checkpoints travel stripped of their
        trace prefixes (reconstructed worker-side from the shared
        Golden Run), and each worker keeps its runtime and Golden-Run
        views cached across chunks.  A chunk task is then just
        ``(case_id, targets)``.

        Produces bit-identical outcomes to :meth:`execute` (per-run
        seeds are derived from the configuration, not from execution
        order, and chunks are collected in grid order).  Restrictions
        compared to the serial path:

        * ``run_factory`` must be picklable (a module-level callable,
          e.g. :func:`repro.arrestment.build_arrestment_run`);
        * no ``inspector`` hook (IR traces never leave the workers).

        Parameters
        ----------
        max_workers:
            Worker processes (defaults to the machine's CPU count).
        progress:
            Optional ``(completed, total)`` callback reporting
            *completed injection runs* after each finished chunk.
        chunk_size:
            Targets per work item.  Defaults to an even split aiming at
            ~4 chunks per worker, so stragglers rebalance.  Chunks are
            cheap (the Golden Run is already worker-resident), so
            fine sharding costs little.
        """
        if self._config.adaptive:
            return self._execute_adaptive_parallel(max_workers, progress)
        import concurrent.futures
        import dataclasses
        import os
        from multiprocessing import shared_memory

        obs = self._observer
        started = time.perf_counter()
        if obs is not None:
            obs.on_campaign_started(self, mode="parallel")
            obs.on_backend_selected(self._exec_backend.name)
        self._lint_gate()
        live_targets, pruned = self._plan_pruning()
        session = self._store_session()
        config = dataclasses.replace(
            self._config, targets=live_targets
        )
        total = self.total_runs()
        if chunk_size is None:
            workers = max_workers or os.cpu_count() or 1
            grid = len(self._test_cases) * len(live_targets)
            chunk_size = max(1, -(-grid // (4 * workers)))
        elif chunk_size < 1:
            raise CampaignError(f"chunk_size must be >= 1, got {chunk_size}")

        case_blobs = []
        segments: list = []
        tasks: list[tuple[str, tuple[tuple[str, str], ...]]] = []
        result = CampaignResult(self._system)
        completed = 0
        if pruned:
            per_target = len(self._test_cases) * self._config.runs_per_target()
            n_arcs = self._record_pruned(result, pruned, per_target)
            if obs is not None:
                obs.on_arcs_pruned(pruned, per_target, n_arcs)
            completed = len(pruned) * per_target
            if progress is not None:
                progress(completed, total)
        case_plans: dict[str, tuple[dict, dict]] = {}
        fresh_by_case: dict[str, dict[tuple[str, str], list[InjectionOutcome]]] = {}
        try:
            for case_id, case in self._test_cases.items():
                case_targets = live_targets
                if session is not None:
                    store, builder, stats = session
                    keys, cached = self._plan_case_store(
                        store, builder, stats, case_id, case,
                        live_targets, pruned,
                    )
                    case_plans[case_id] = (keys, cached)
                    case_targets = tuple(
                        target
                        for target in live_targets
                        if target not in cached
                    )
                    completed += sum(len(runs) for runs in cached.values())
                    if cached and progress is not None:
                        progress(completed, total)
                    if not case_targets:
                        # Fully reused: no Golden Run, no blob, no tasks.
                        continue
                runner, golden, checkpoints = self._golden_for_case(
                    case_id, case
                )
                self._golden_runs[case_id] = golden
                signals, duration_ms, flat = pack_trace_samples(
                    golden.result.traces
                )
                n_bytes = len(flat) * flat.itemsize
                shm_name = None
                raw = None
                try:
                    segment = shared_memory.SharedMemory(
                        create=True, size=max(1, n_bytes)
                    )
                    segment.buf[:n_bytes] = memoryview(flat).cast("B")
                    segments.append(segment)
                    shm_name = segment.name
                except OSError:
                    raw = flat.tobytes()
                case_blobs.append(
                    {
                        "case_id": case_id,
                        "case": case,
                        "signals": signals,
                        "duration_ms": duration_ms,
                        "shm_name": shm_name,
                        "raw": raw,
                        "checkpoints": {
                            time_ms: cp.without_trace_prefix()
                            for time_ms, cp in checkpoints.items()
                        },
                        "digests": golden.digests,
                        "initials": golden.initials,
                        "final_signals": golden.result.final_signals,
                        "telemetry": golden.result.telemetry,
                    }
                )
                for start in range(0, len(case_targets), chunk_size):
                    tasks.append(
                        (case_id, case_targets[start : start + chunk_size])
                    )

            if tasks:
                payload = (
                    self._system,
                    self._run_factory,
                    config,
                    obs is not None,
                    tuple(case_blobs),
                )
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=max_workers,
                    initializer=_worker_init,
                    initargs=(payload,),
                ) as pool:
                    for index, (outcomes, obs_payload, elapsed_s) in enumerate(
                        pool.map(_run_shard, tasks)
                    ):
                        if session is None:
                            for outcome in outcomes:
                                result.add(outcome)
                        else:
                            per_case = fresh_by_case.setdefault(
                                tasks[index][0], {}
                            )
                            for outcome in outcomes:
                                per_case.setdefault(
                                    (outcome.module, outcome.input_signal), []
                                ).append(outcome)
                            session[2].runs_executed += len(outcomes)
                        completed += len(outcomes)
                        if obs is not None:
                            if obs_payload is not None:
                                obs.absorb_worker(obs_payload)
                            if obs.propagation is not None:
                                obs.propagation.record_all(outcomes)
                            chunk_case, chunk_targets = tasks[index]
                            obs.on_chunk_completed(
                                chunk_index=index,
                                case_id=chunk_case,
                                n_targets=len(chunk_targets),
                                n_runs=len(outcomes),
                                elapsed_s=elapsed_s,
                            )
                        if progress is not None:
                            progress(completed, total)
        finally:
            for segment in segments:
                try:
                    segment.close()
                    segment.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
        if session is not None:
            store, builder, stats = session
            for case_id in self._test_cases:
                keys, cached = case_plans[case_id]
                fresh = fresh_by_case.get(case_id, {})
                self._publish_case_units(store, keys, case_id, fresh, pruned)
                # Recompose in canonical grid order (see execute()).
                for target in live_targets:
                    if target in cached:
                        for_unit = cached[target]
                        if obs is not None:
                            obs.on_unit_reused(
                                case_id,
                                target[0],
                                target[1],
                                len(for_unit),
                                keys[target].digest,
                            )
                            for outcome in for_unit:
                                obs.on_outcome(outcome)
                        for outcome in for_unit:
                            result.add(outcome)
                    else:
                        for outcome in fresh.get(target, []):
                            result.add(outcome)
            self.last_store_stats = stats
        else:
            self.last_store_stats = None
        if obs is not None:
            obs.on_campaign_finished(result, time.perf_counter() - started)
        return result
