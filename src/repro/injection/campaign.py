"""Injection-campaign orchestration (Sections 6 and 7.3).

An :class:`InjectionCampaign` reproduces the paper's experimental
procedure:

1. for every test case (workload), record one Golden Run;
2. for every targeted module input, every injection time and every
   error model, execute one injection run with a single one-shot trap
   ("for each injection run (IR) only one error was injected at one
   time, i.e., no multiple errors were injected");
3. compare every IR against its test case's GR (Golden Run Comparison)
   and record an :class:`~repro.injection.outcomes.InjectionOutcome`.

The runtime object produced by the ``run_factory`` is reused across the
runs of one test case (``SimulationRun.run`` resets software, store,
clock and environment), so factories are invoked once per test case.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence, TypeVar

from repro.injection.error_models import ErrorModel, bit_flip_models
from repro.injection.golden_run import GoldenRun, compare_to_golden_run
from repro.injection.outcomes import CampaignResult, InjectionOutcome
from repro.injection.selection import paper_times
from repro.injection.traps import InputInjectionTrap
from repro.model.errors import CampaignError
from repro.model.system import SystemModel
from repro.simulation.runtime import RunResult, SimulationRun

__all__ = ["CampaignConfig", "InjectionCampaign"]

CaseT = TypeVar("CaseT")

#: Callback reporting campaign progress: (completed runs, total runs).
ProgressCallback = Callable[[int, int], None]

#: Callback seeing each injection run with its full traces (see
#: :meth:`InjectionCampaign.execute`).
InspectorCallback = Callable[[InjectionOutcome, RunResult, GoldenRun], None]


@dataclass(frozen=True)
class CampaignConfig:
    """Static configuration of one injection campaign.

    Parameters
    ----------
    duration_ms:
        Length of every run (GR and IR).  Must exceed the largest
        injection time.
    injection_times_ms:
        The injection instants; defaults to the paper's ten half-second
        steps from 0.5 s to 5.0 s.
    error_models:
        The corruption models; defaults to the paper's 16 single
        bit-flips.
    targets:
        The (module, input signal) pairs to inject; ``None`` targets
        every input of every module — the full Table 1 campaign.
    seed:
        Campaign master seed; per-run trap seeds are derived from it
        deterministically, so equal configurations give equal results.
    """

    duration_ms: int = 8000
    injection_times_ms: tuple[int, ...] = field(default_factory=paper_times)
    error_models: tuple[ErrorModel, ...] = field(
        default_factory=lambda: tuple(bit_flip_models())
    )
    targets: tuple[tuple[str, str], ...] | None = None
    seed: int = 2001

    def __post_init__(self) -> None:
        if self.duration_ms < 1:
            raise CampaignError("duration_ms must be >= 1")
        if not self.injection_times_ms:
            raise CampaignError("at least one injection time is required")
        if not self.error_models:
            raise CampaignError("at least one error model is required")
        if max(self.injection_times_ms) >= self.duration_ms:
            raise CampaignError(
                "latest injection time "
                f"({max(self.injection_times_ms)} ms) must fall inside the "
                f"run duration ({self.duration_ms} ms)"
            )

    def runs_per_target(self) -> int:
        """IRs per targeted signal per test case (the paper: 16·10 = 160)."""
        return len(self.injection_times_ms) * len(self.error_models)


def _derive_seed(
    master: int, case_id: str, module: str, signal: str, time_ms: int, model: str
) -> int:
    """Stable per-run seed (process-independent, unlike ``hash``)."""
    text = f"{master}|{case_id}|{module}|{signal}|{time_ms}|{model}"
    return zlib.crc32(text.encode("utf-8"))


def _execute_one_case(payload: tuple) -> list[InjectionOutcome]:
    """Worker entry point for :meth:`InjectionCampaign.execute_parallel`.

    Rebuilds a single-case campaign inside the worker process and
    returns its outcome list (traces stay worker-local).
    """
    system, run_factory, case_id, case, config = payload
    campaign = InjectionCampaign(system, run_factory, {case_id: case}, config)
    return list(campaign.execute())


class InjectionCampaign:
    """Runs the full GR/IR experiment grid over a set of test cases.

    Parameters
    ----------
    system:
        The static system model (defines targets and signal widths).
    run_factory:
        Builds a fresh :class:`SimulationRun` for a given test case.
        Called once per test case.
    test_cases:
        Mapping from case id to the (opaque) case object handed to the
        factory; a sequence is accepted and auto-labelled ``case00`` ...
    config:
        The campaign grid.
    """

    def __init__(
        self,
        system: SystemModel,
        run_factory: Callable[[CaseT], SimulationRun],
        test_cases: Mapping[str, CaseT] | Sequence[CaseT],
        config: CampaignConfig | None = None,
    ) -> None:
        self._system = system
        self._run_factory = run_factory
        if isinstance(test_cases, Mapping):
            self._test_cases: dict[str, CaseT] = dict(test_cases)
        else:
            self._test_cases = {
                f"case{index:02d}": case for index, case in enumerate(test_cases)
            }
        if not self._test_cases:
            raise CampaignError("at least one test case is required")
        self._config = config if config is not None else CampaignConfig()
        self._targets = self._resolve_targets()
        self._golden_runs: dict[str, GoldenRun] = {}

    def _resolve_targets(self) -> tuple[tuple[str, str], ...]:
        if self._config.targets is not None:
            for module, signal in self._config.targets:
                spec = self._system.module(module)
                spec.input_index(signal)  # validates
            return tuple(self._config.targets)
        targets: list[tuple[str, str]] = []
        for module_name in self._system.module_names():
            for signal in self._system.module(module_name).inputs:
                targets.append((module_name, signal))
        return tuple(targets)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def config(self) -> CampaignConfig:
        return self._config

    @property
    def targets(self) -> tuple[tuple[str, str], ...]:
        """The (module, input signal) pairs that will be injected."""
        return self._targets

    def total_runs(self) -> int:
        """Total IR count of the campaign (excluding Golden Runs)."""
        return (
            len(self._test_cases)
            * len(self._targets)
            * self._config.runs_per_target()
        )

    def golden_runs(self) -> Mapping[str, GoldenRun]:
        """Golden runs recorded so far (populated during execution)."""
        return dict(self._golden_runs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        progress: ProgressCallback | None = None,
        inspector: "InspectorCallback | None" = None,
    ) -> CampaignResult:
        """Run the whole campaign and return the collected outcomes.

        Parameters
        ----------
        progress:
            Optional ``(completed, total)`` callback.
        inspector:
            Optional callback invoked for every injection run *while
            its full traces are still available* (they are discarded
            afterwards to bound memory).  Receives the outcome record,
            the injection run's :class:`RunResult` and the test case's
            Golden Run.  Used e.g. by the EDM evaluation layer to replay
            detectors over the traces.
        """
        result = CampaignResult(self._system)
        completed = 0
        total = self.total_runs()
        for case_id, case in self._test_cases.items():
            runner = self._run_factory(case)
            runner.clear_hooks()
            golden = GoldenRun(
                case_id=case_id, result=runner.run(self._config.duration_ms)
            )
            self._golden_runs[case_id] = golden
            for module, signal in self._targets:
                for time_ms in self._config.injection_times_ms:
                    for model in self._config.error_models:
                        outcome, injected = self._one_injection(
                            runner, golden, case_id, module, signal, time_ms, model
                        )
                        if inspector is not None:
                            inspector(outcome, injected, golden)
                        result.add(outcome)
                        completed += 1
                        if progress is not None:
                            progress(completed, total)
        return result

    def _one_injection(
        self,
        runner: SimulationRun,
        golden: GoldenRun,
        case_id: str,
        module: str,
        signal: str,
        time_ms: int,
        model: ErrorModel,
    ) -> tuple[InjectionOutcome, "RunResult"]:
        trap = InputInjectionTrap.for_system(
            self._system,
            module=module,
            signal=signal,
            time_ms=time_ms,
            error_model=model,
            seed=_derive_seed(
                self._config.seed, case_id, module, signal, time_ms, model.name
            ),
        )
        runner.clear_hooks()
        runner.add_read_interceptor(trap)
        injected = runner.run(self._config.duration_ms)
        runner.clear_hooks()
        comparison = compare_to_golden_run(golden, injected)
        outcome = InjectionOutcome(
            case_id=case_id,
            module=module,
            input_signal=signal,
            scheduled_time_ms=time_ms,
            fired_at_ms=trap.fired_at_ms,
            error_model=model.name,
            comparison=comparison,
        )
        return outcome, injected

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------

    def execute_parallel(
        self,
        max_workers: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> CampaignResult:
        """Run the campaign with one worker process per test case.

        Produces bit-identical outcomes to :meth:`execute` (per-run
        seeds are derived from the configuration, not from execution
        order).  Restrictions compared to the serial path:

        * ``run_factory`` must be picklable (a module-level callable,
          e.g. :func:`repro.arrestment.build_arrestment_run`);
        * :meth:`golden_runs` stays empty — Golden Run traces are not
          shipped back across the process boundary;
        * no ``inspector`` hook (traces never leave the workers).

        ``progress`` is reported at test-case granularity.
        """
        import concurrent.futures
        import dataclasses

        config = dataclasses.replace(self._config, targets=self._targets)
        payloads = [
            (self._system, self._run_factory, case_id, case, config)
            for case_id, case in self._test_cases.items()
        ]
        result = CampaignResult(self._system)
        completed = 0
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            for outcomes in pool.map(_execute_one_case, payloads):
                for outcome in outcomes:
                    result.add(outcome)
                completed += 1
                if progress is not None:
                    progress(completed, len(payloads))
        return result
