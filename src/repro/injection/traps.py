"""Software traps: the SWIFI instrumentation points.

"For logging and injection, the target system was instrumented with
high-level software traps.  As a trap is reached during execution, an
error is injected and/or data logged" (Section 7.3).

Two trap flavours are provided, matching the runtime's two hook points:

* :class:`InputInjectionTrap` — consumer-scoped: corrupts the value a
  *specific module* reads from a *specific input signal*, leaving the
  stored signal (and every other consumer) untouched.  This is the trap
  used for permeability estimation: "injecting errors in the input
  signals of the module and logging its output signals" (Section 6).
* :class:`StoreInjectionTrap` — producer-scoped: corrupts the stored
  value itself, visible to all consumers; used to model errors arising
  in the producing computation or the shared memory.

Both fire exactly once, at the first opportunity at or after their
scheduled time ("although only at one time in each IR", Section 7.3);
after firing they are inert, and they record when and what they changed.
"""

from __future__ import annotations

import random

from repro.injection.error_models import ErrorModel
from repro.model.system import SystemModel
from repro.simulation.runtime import SignalStore

__all__ = ["InputInjectionTrap", "StoreInjectionTrap"]


class InputInjectionTrap:
    """One-shot consumer-scoped injection on a module input read.

    Implements the :class:`repro.simulation.runtime.ReadInterceptor`
    protocol.

    Parameters
    ----------
    module, signal:
        The module input to corrupt.
    time_ms:
        Earliest millisecond at which to fire; the trap triggers on the
        first matching read at or after this time.
    error_model:
        The corruption to apply.
    width:
        Bit width of the signal (for the error model).
    seed:
        Seed for the trap-local RNG used by stochastic error models.
    """

    def __init__(
        self,
        module: str,
        signal: str,
        time_ms: int,
        error_model: ErrorModel,
        width: int = 16,
        seed: int = 0,
    ) -> None:
        if time_ms < 0:
            raise ValueError(f"time_ms must be >= 0, got {time_ms}")
        self.module = module
        self.signal = signal
        self.time_ms = time_ms
        self.error_model = error_model
        self.width = width
        self._rng = random.Random(seed)
        self.fired_at_ms: int | None = None
        self.original_value: int | None = None
        self.injected_value: int | None = None

    @property
    def fired(self) -> bool:
        """Whether the trap has triggered."""
        return self.fired_at_ms is not None

    def on_read(self, module: str, signal: str, value: int, now_ms: int) -> int:
        """ReadInterceptor hook: corrupt the first matching read."""
        if self.fired:
            return value
        if module != self.module or signal != self.signal or now_ms < self.time_ms:
            return value
        corrupted = self.error_model.apply(value, self.width, self._rng)
        self.fired_at_ms = now_ms
        self.original_value = value
        self.injected_value = corrupted
        return corrupted

    @classmethod
    def for_system(
        cls,
        system: SystemModel,
        module: str,
        signal: str,
        time_ms: int,
        error_model: ErrorModel,
        seed: int = 0,
    ) -> "InputInjectionTrap":
        """Build a trap with the width taken from the system's signal spec."""
        spec = system.module(module)
        spec.input_index(signal)  # validates the signal is an input
        return cls(
            module=module,
            signal=signal,
            time_ms=time_ms,
            error_model=error_model,
            width=system.signal(signal).width,
            seed=seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"fired@{self.fired_at_ms}" if self.fired else "armed"
        return (
            f"<InputInjectionTrap {self.module}.{self.signal} "
            f"t>={self.time_ms} {self.error_model.name} {state}>"
        )


class StoreInjectionTrap:
    """One-shot producer-scoped injection on a stored signal value.

    Implements the :class:`repro.simulation.runtime.StoreMutator`
    protocol: fires at the start of the first millisecond at or after
    ``time_ms``.
    """

    def __init__(
        self,
        signal: str,
        time_ms: int,
        error_model: ErrorModel,
        width: int = 16,
        seed: int = 0,
    ) -> None:
        if time_ms < 0:
            raise ValueError(f"time_ms must be >= 0, got {time_ms}")
        self.signal = signal
        self.time_ms = time_ms
        self.error_model = error_model
        self.width = width
        self._rng = random.Random(seed)
        self.fired_at_ms: int | None = None
        self.original_value: int | None = None
        self.injected_value: int | None = None

    @property
    def fired(self) -> bool:
        """Whether the trap has triggered."""
        return self.fired_at_ms is not None

    def apply(self, store: SignalStore, now_ms: int) -> None:
        """StoreMutator hook: corrupt the stored value once."""
        if self.fired or now_ms < self.time_ms:
            return
        value = store.read(self.signal)
        corrupted = self.error_model.apply(value, self.width, self._rng)
        store.write(self.signal, corrupted)
        self.fired_at_ms = now_ms
        self.original_value = value
        self.injected_value = corrupted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"fired@{self.fired_at_ms}" if self.fired else "armed"
        return (
            f"<StoreInjectionTrap {self.signal} t>={self.time_ms} "
            f"{self.error_model.name} {state}>"
        )
