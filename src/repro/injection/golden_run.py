"""Golden Run capture and Golden Run Comparison (GRC).

"A Golden Run (GR) is a trace of the system executing without any
injections being made, hence, this trace is used as reference and is
stated to be 'correct'.  All traces obtained from the injection runs
(IR's ...) are compared to the GR, and any difference indicates that an
error has occurred" (Section 6).

The comparison semantics follow Section 7.3: per signal, "the comparison
stopped as soon as the first difference between the GR trace and the IR
trace was encountered" — exact equality is a valid criterion here
because both runs execute "in simulated time, in a simulated
environment, and on simulated hardware".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Mapping

from repro.model.errors import TraceMismatchError
from repro.simulation.runtime import GoldenReference, RunResult
from repro.simulation.snapshot import FrameDigests

__all__ = ["GoldenRun", "GoldenRunComparison", "compare_to_golden_run"]


@dataclass(frozen=True)
class GoldenRun:
    """The reference (injection-free) execution of one test case."""

    #: Identifier of the workload/test case the GR belongs to.
    case_id: str
    #: The recorded reference execution.
    result: RunResult
    #: Per-frame complete-state digests recorded alongside the GR —
    #: the verification track of reconvergence fast-forward (``None``
    #: when the campaign ran with fast-forward disabled).
    digests: FrameDigests | None = None
    #: Declared initial signal values of the run's store (needed to
    #: seed the Golden Run's per-frame change lists).
    initials: Mapping[str, int] | None = None

    @property
    def duration_ms(self) -> int:
        return self.result.duration_ms

    def signal_trace(self, signal: str):
        """The reference trace of one signal."""
        return self.result.traces[signal]

    @cached_property
    def reference(self) -> GoldenReference | None:
        """This Golden Run as a runtime fast-forward reference.

        ``None`` when the GR was recorded without the store's initial
        values (legacy construction); otherwise a
        :class:`~repro.simulation.runtime.GoldenReference` — with frame
        digests when they were recorded, enabling reconvergence
        fast-forward, and without them still usable for reconstructing
        stripped checkpoint prefixes.  Cached: the reference's lazy
        per-frame change lists are computed at most once per GR.
        """
        if self.initials is None:
            return None
        return GoldenReference.from_result(
            self.result, self.digests, self.initials
        )


@dataclass(frozen=True)
class GoldenRunComparison:
    """Outcome of comparing one injection run against its Golden Run.

    ``first_divergence_ms[signal]`` is the millisecond of the first
    differing sample for that signal, or ``None`` if the traces agree —
    i.e. no error was observed on the signal.
    """

    case_id: str
    first_divergence_ms: dict[str, int | None]

    def diverged(self, signal: str) -> bool:
        """Whether any error was observed on ``signal``."""
        try:
            return self.first_divergence_ms[signal] is not None
        except KeyError:
            raise TraceMismatchError(f"signal {signal!r} was not compared") from None

    def divergence_time(self, signal: str) -> int | None:
        """First divergence time of ``signal``, or ``None``."""
        try:
            return self.first_divergence_ms[signal]
        except KeyError:
            raise TraceMismatchError(f"signal {signal!r} was not compared") from None

    def diverged_signals(self) -> tuple[str, ...]:
        """All signals on which errors were observed, earliest first."""
        hit = [
            (time, signal)
            for signal, time in self.first_divergence_ms.items()
            if time is not None
        ]
        hit.sort()
        return tuple(signal for _, signal in hit)

    def error_free(self) -> bool:
        """Whether the injection left every compared trace untouched."""
        return all(time is None for time in self.first_divergence_ms.values())

    def latency_ms(self, signal: str, injection_time_ms: int) -> int | None:
        """Detection latency: first divergence minus injection time.

        Used by the EDM-selection baseline ([18] uses coverage *and*
        latency estimates).  ``None`` when the signal never diverged.
        """
        time = self.divergence_time(signal)
        if time is None:
            return None
        return time - injection_time_ms

    def to_jsonable(self) -> dict:
        """JSON-safe form; signal order is preserved (it is trace order)."""
        return {
            "case_id": self.case_id,
            "first_divergence_ms": dict(self.first_divergence_ms),
        }

    @classmethod
    def from_jsonable(cls, data: Mapping) -> "GoldenRunComparison":
        """Rebuild a comparison persisted by :meth:`to_jsonable`."""
        return cls(
            case_id=data["case_id"],
            first_divergence_ms=dict(data["first_divergence_ms"]),
        )


def compare_to_golden_run(
    golden: GoldenRun, injected: RunResult, case_id: str | None = None
) -> GoldenRunComparison:
    """Run the GRC of one injection run against its Golden Run."""
    divergences = injected.traces.first_divergences(golden.result.traces)
    return GoldenRunComparison(
        case_id=case_id if case_id is not None else golden.case_id,
        first_divergence_ms=divergences,
    )
