"""Permeability estimation from campaign results (Section 6).

"Suppose, for module M, we inject :math:`n_{inj}` distinct errors in
input *i*, and at output *k* observe :math:`n_{err}` differences
compared to the GR's, then we can directly estimate the error
permeability :math:`P_{i,k}` to be :math:`n_{err} / n_{inj}`."

:func:`estimate_matrix` turns a :class:`CampaignResult` into a
:class:`PermeabilityMatrix`; :class:`PermeabilityEstimator` bundles
campaign execution and aggregation behind one call.

Statically-pruned targets (``CampaignConfig(static_prune=True)``) need
no special handling here: ``CampaignResult.pair_counts`` merges them as
their full injection count with exactly zero errors, so the estimated
matrix — and every table derived from it — is byte-identical to the
unpruned campaign's.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.permeability import PermeabilityMatrix
from repro.injection.campaign import CampaignConfig, InjectionCampaign, ProgressCallback
from repro.injection.outcomes import CampaignResult, InjectionOutcome
from repro.model.errors import CampaignError
from repro.model.system import SystemModel
from repro.simulation.runtime import SimulationRun

__all__ = ["estimate_matrix", "pair_trial_counts", "PermeabilityEstimator"]


def pair_trial_counts(
    matrix: PermeabilityMatrix,
) -> dict[tuple[str, str, str], tuple[int, int]]:
    """Per-pair ``(n_errors, n_injections)`` of an estimated matrix.

    Exposes the raw trial counts behind every experimental estimate —
    the inputs confidence-interval math needs (see
    :meth:`~repro.core.permeability.PermeabilityEstimate.wilson_interval`).
    Raises :class:`ValueError` if any assigned pair carries no counts
    (i.e. the matrix is analytical, not measured).
    """
    counts: dict[tuple[str, str, str], tuple[int, int]] = {}
    for (module, input_signal, output_signal), estimate in matrix.items():
        if estimate.n_injections is None or estimate.n_errors is None:
            raise ValueError(
                "pair without trial counts (analytical estimate?): "
                f"{module}: {input_signal} -> {output_signal}"
            )
        key = (module, input_signal, output_signal)
        counts[key] = (estimate.n_errors, estimate.n_injections)
    return counts


def estimate_matrix(
    result: CampaignResult,
    direct_only: bool = True,
    predicate: Callable[[InjectionOutcome], bool] | None = None,
    require_complete: bool = True,
) -> PermeabilityMatrix:
    """Aggregate a campaign into a permeability matrix.

    Parameters
    ----------
    result:
        The campaign's collected outcomes.
    direct_only:
        Apply the paper's direct-error rule (Section 7.3).
    predicate:
        Optional outcome filter (e.g. a single test case or error
        model) for ablation studies.
    require_complete:
        Verify every pair of every module received injections; disable
        when deliberately estimating a subset of the system.

    Targets skipped by static pruning still count: they arrive from
    ``pair_counts`` as ``(n_errors=0, n_injections=<full grid>)``, so a
    pruned campaign satisfies ``require_complete`` and estimates the
    same matrix as an unpruned one.
    """
    matrix = PermeabilityMatrix(result.system)
    counts = result.pair_counts(direct_only=direct_only, predicate=predicate)
    for (module, input_signal, output_signal), pair in counts.items():
        if pair.n_injections == 0:
            # A target that never produced a countable injection (all
            # filtered out); leave the pair unset rather than invent 0.
            continue
        matrix.set_counts(
            module,
            input_signal,
            output_signal,
            n_errors=pair.n_errors,
            n_injections=pair.n_injections,
        )
    if require_complete:
        missing = matrix.missing_pairs()
        if missing:
            module, input_signal, output_signal = missing[0]
            raise CampaignError(
                "campaign produced no estimate for pair "
                f"{module}: {input_signal} -> {output_signal} "
                "(was the input targeted?)"
            )
    return matrix


class PermeabilityEstimator:
    """One-call experimental estimation of a system's permeability matrix.

    Wraps :class:`InjectionCampaign` + :func:`estimate_matrix`::

        estimator = PermeabilityEstimator(system, factory, cases, config)
        matrix = estimator.estimate()
        analysis = PropagationAnalysis(matrix)
    """

    def __init__(
        self,
        system: SystemModel,
        run_factory: Callable[..., SimulationRun],
        test_cases: Mapping[str, object] | Sequence[object],
        config: CampaignConfig | None = None,
        direct_only: bool = True,
    ) -> None:
        self._campaign = InjectionCampaign(system, run_factory, test_cases, config)
        self._direct_only = direct_only
        self._result: CampaignResult | None = None

    @property
    def campaign(self) -> InjectionCampaign:
        """The underlying campaign (for introspection before execution)."""
        return self._campaign

    @property
    def result(self) -> CampaignResult | None:
        """The campaign result, once :meth:`estimate` has run."""
        return self._result

    def estimate(self, progress: ProgressCallback | None = None) -> PermeabilityMatrix:
        """Execute the campaign (once) and aggregate the matrix."""
        if self._result is None:
            self._result = self._campaign.execute(progress=progress)
        return estimate_matrix(self._result, direct_only=self._direct_only)
