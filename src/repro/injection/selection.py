"""Injection-point selection strategies: times and error models.

The paper's grid (Section 7.3): bit-flips in each of 16 bit positions at
10 time instances "distributed in half-second intervals between 0.5 s
and 5.0 s from start of arrestment" — 160 injections per signal per test
case.  :func:`paper_times` and :func:`paper_grid` reproduce that layout;
:func:`sampled_grid` draws a random subset for cheaper campaigns, which
keeps the grid's coverage structure while reducing cost.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.injection.error_models import ErrorModel, bit_flip_models

__all__ = ["paper_times", "full_grid", "paper_grid", "sampled_grid"]


def paper_times(
    start_ms: int = 500, end_ms: int = 5000, n_times: int = 10
) -> tuple[int, ...]:
    """The paper's injection instants: evenly spaced, inclusive of both ends.

    Defaults reproduce "10 different time instances distributed in
    half-second intervals between 0.5 s and 5.0 s".
    """
    if n_times < 1:
        raise ValueError("n_times must be >= 1")
    if n_times == 1:
        return (start_ms,)
    if end_ms <= start_ms:
        raise ValueError("end_ms must exceed start_ms")
    step = (end_ms - start_ms) / (n_times - 1)
    return tuple(round(start_ms + index * step) for index in range(n_times))


def full_grid(
    times_ms: Sequence[int], models: Sequence[ErrorModel]
) -> list[tuple[int, ErrorModel]]:
    """The cartesian product of injection times and error models."""
    return [(time_ms, model) for time_ms in times_ms for model in models]


def paper_grid(
    width: int = 16,
    start_ms: int = 500,
    end_ms: int = 5000,
    n_times: int = 10,
) -> list[tuple[int, ErrorModel]]:
    """The paper's per-signal grid: every bit position at every instant.

    With the defaults this is :math:`16 \\cdot 10 = 160` injections per
    signal per test case (4 000 over the 25-case workload).
    """
    return full_grid(paper_times(start_ms, end_ms, n_times), bit_flip_models(width))


def sampled_grid(
    times_ms: Sequence[int],
    models: Sequence[ErrorModel],
    n_samples: int,
    seed: int = 0,
) -> list[tuple[int, ErrorModel]]:
    """A uniform random subset of the full grid (without replacement)."""
    grid = full_grid(times_ms, models)
    if n_samples >= len(grid):
        return grid
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    rng = random.Random(seed)
    return rng.sample(grid, n_samples)
