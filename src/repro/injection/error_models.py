"""Error models: how injected data errors corrupt a signal value.

The paper's campaign injects single bit-flips ("We injected bit-flips in
each bit position", Section 7.3).  Because "the type of injected errors
can also effect the estimates" (Section 6), the framework supports a
family of models so the sensitivity can be studied (the error-model
ablation benchmark):

* :class:`BitFlip` — invert one fixed bit position (the paper's model);
* :class:`RandomBitFlip` — invert a uniformly chosen bit;
* :class:`DoubleBitFlip` — invert two distinct fixed positions;
* :class:`StuckAtZero` / :class:`StuckAtOne` — clear/set one bit;
* :class:`Offset` — add a signed offset (wrapping), modelling
  computation slips rather than bus glitches;
* :class:`RandomReplacement` — replace the value with a uniform random
  word.

Models are deterministic given their parameters and the supplied RNG,
so campaigns are reproducible from a seed.
"""

from __future__ import annotations

import abc
import random

from repro.model.signal import wrap_unsigned

__all__ = [
    "ErrorModel",
    "BitFlip",
    "RandomBitFlip",
    "DoubleBitFlip",
    "StuckAtZero",
    "StuckAtOne",
    "Offset",
    "RandomReplacement",
    "bit_flip_models",
]


class ErrorModel(abc.ABC):
    """A transformation corrupting one raw signal value."""

    @abc.abstractmethod
    def apply(self, value: int, width: int, rng: random.Random) -> int:
        """Return the corrupted value (wrapped to ``width`` bits)."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable identifier used in campaign records."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class BitFlip(ErrorModel):
    """Invert one fixed bit position — the paper's error model."""

    def __init__(self, bit: int) -> None:
        if bit < 0:
            raise ValueError(f"bit position must be >= 0, got {bit}")
        self.bit = bit

    def apply(self, value: int, width: int, rng: random.Random) -> int:
        if self.bit >= width:
            raise ValueError(
                f"bit {self.bit} outside the {width}-bit signal width"
            )
        return wrap_unsigned(value ^ (1 << self.bit), width)

    def vector_xor_mask(self, width: int) -> int | None:
        """The corruption as a pure XOR mask (batched-backend contract).

        ``None`` means not vectorizable at this width — the run then
        executes through the reference path, which raises the same
        width error :meth:`apply` would.
        """
        if self.bit >= width:
            return None
        return 1 << self.bit

    @property
    def name(self) -> str:
        return f"bitflip[{self.bit}]"


class RandomBitFlip(ErrorModel):
    """Invert a uniformly random bit position."""

    def apply(self, value: int, width: int, rng: random.Random) -> int:
        bit = rng.randrange(width)
        return wrap_unsigned(value ^ (1 << bit), width)

    @property
    def name(self) -> str:
        return "bitflip[random]"


class DoubleBitFlip(ErrorModel):
    """Invert two distinct fixed bit positions (burst-style corruption)."""

    def __init__(self, bit_a: int, bit_b: int) -> None:
        if bit_a == bit_b:
            raise ValueError("the two bit positions must differ")
        if min(bit_a, bit_b) < 0:
            raise ValueError("bit positions must be >= 0")
        self.bit_a = bit_a
        self.bit_b = bit_b

    def apply(self, value: int, width: int, rng: random.Random) -> int:
        if max(self.bit_a, self.bit_b) >= width:
            raise ValueError(
                f"bits {self.bit_a},{self.bit_b} outside the "
                f"{width}-bit signal width"
            )
        return wrap_unsigned(value ^ (1 << self.bit_a) ^ (1 << self.bit_b), width)

    def vector_xor_mask(self, width: int) -> int | None:
        """The burst as a pure XOR mask (see :meth:`BitFlip.vector_xor_mask`)."""
        if max(self.bit_a, self.bit_b) >= width:
            return None
        return (1 << self.bit_a) | (1 << self.bit_b)

    @property
    def name(self) -> str:
        return f"bitflip2[{self.bit_a},{self.bit_b}]"


class StuckAtZero(ErrorModel):
    """Force one bit position to zero."""

    def __init__(self, bit: int) -> None:
        if bit < 0:
            raise ValueError(f"bit position must be >= 0, got {bit}")
        self.bit = bit

    def apply(self, value: int, width: int, rng: random.Random) -> int:
        if self.bit >= width:
            raise ValueError(f"bit {self.bit} outside the {width}-bit width")
        return wrap_unsigned(value & ~(1 << self.bit), width)

    @property
    def name(self) -> str:
        return f"stuck0[{self.bit}]"


class StuckAtOne(ErrorModel):
    """Force one bit position to one."""

    def __init__(self, bit: int) -> None:
        if bit < 0:
            raise ValueError(f"bit position must be >= 0, got {bit}")
        self.bit = bit

    def apply(self, value: int, width: int, rng: random.Random) -> int:
        if self.bit >= width:
            raise ValueError(f"bit {self.bit} outside the {width}-bit width")
        return wrap_unsigned(value | (1 << self.bit), width)

    @property
    def name(self) -> str:
        return f"stuck1[{self.bit}]"


class Offset(ErrorModel):
    """Add a signed offset to the value (wrapping at the signal width)."""

    def __init__(self, delta: int) -> None:
        if delta == 0:
            raise ValueError("an offset of zero injects no error")
        self.delta = delta

    def apply(self, value: int, width: int, rng: random.Random) -> int:
        return wrap_unsigned(value + self.delta, width)

    @property
    def name(self) -> str:
        return f"offset[{self.delta:+d}]"


class RandomReplacement(ErrorModel):
    """Replace the value with a uniformly random word (guaranteed change)."""

    def apply(self, value: int, width: int, rng: random.Random) -> int:
        limit = 1 << width
        corrupted = rng.randrange(limit)
        if corrupted == value:
            corrupted = wrap_unsigned(corrupted + 1, width)
        return corrupted

    @property
    def name(self) -> str:
        return "replace[random]"


def bit_flip_models(width: int = 16) -> list[BitFlip]:
    """One :class:`BitFlip` per bit position — the paper's model set."""
    return [BitFlip(bit) for bit in range(width)]
