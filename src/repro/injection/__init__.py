"""PROPANE-equivalent fault-injection environment (Sections 6 and 7.3).

SWIFI-style trap instrumentation, error models, Golden Run Comparison,
campaign orchestration over a test-case grid, and the aggregation of
outcomes into experimental permeability estimates.
"""

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import (
    BitFlip,
    DoubleBitFlip,
    ErrorModel,
    Offset,
    RandomBitFlip,
    RandomReplacement,
    StuckAtOne,
    StuckAtZero,
    bit_flip_models,
)
from repro.injection.estimator import PermeabilityEstimator, estimate_matrix
from repro.injection.failure_modes import (
    CriticalityReport,
    FailureMode,
    SeverityLimits,
    classify_campaign,
    classify_run,
)
from repro.injection.latency import latency_statistics, render_latency_table
from repro.injection.golden_run import (
    GoldenRun,
    GoldenRunComparison,
    compare_to_golden_run,
)
from repro.injection.outcomes import CampaignResult, InjectionOutcome, PairCounts
from repro.injection.selection import full_grid, paper_grid, paper_times, sampled_grid
from repro.injection.traps import InputInjectionTrap, StoreInjectionTrap

__all__ = [
    "BitFlip",
    "CampaignConfig",
    "CampaignResult",
    "CriticalityReport",
    "FailureMode",
    "SeverityLimits",
    "DoubleBitFlip",
    "ErrorModel",
    "GoldenRun",
    "GoldenRunComparison",
    "InjectionCampaign",
    "InjectionOutcome",
    "InputInjectionTrap",
    "Offset",
    "PairCounts",
    "PermeabilityEstimator",
    "RandomBitFlip",
    "RandomReplacement",
    "StoreInjectionTrap",
    "StuckAtOne",
    "StuckAtZero",
    "bit_flip_models",
    "classify_campaign",
    "classify_run",
    "compare_to_golden_run",
    "estimate_matrix",
    "full_grid",
    "paper_grid",
    "latency_statistics",
    "paper_times",
    "render_latency_table",
    "sampled_grid",
]
