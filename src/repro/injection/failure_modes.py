"""Failure-mode classification of injection runs (FMECA support).

Section 1 of the paper: "Analysing error propagation can also
complement other analysis activities, for instance FMECA (Failure Mode
Effect and Criticality Analysis).  Consequently, modules and signals
found to be vulnerable and/or critical during propagation analysis
might be given more attention during design activities."

The Golden Run Comparison says *whether* an error propagated; for
criticality one also needs the *physical consequence*.  This module
classifies every injection run by its end-of-run plant telemetry:

* :attr:`FailureMode.NO_EFFECT` — no trace deviated from the GR;
* :attr:`FailureMode.TOLERATED` — traces deviated, but the arrestment
  outcome stayed within limits;
* :attr:`FailureMode.DEGRADED` — the arrestment succeeded but missed a
  comfort/margin limit (longer roll-out or harder deceleration than
  the Golden Run by more than the configured tolerances);
* :attr:`FailureMode.OVERRUN` — the aircraft left the usable runway;
* :attr:`FailureMode.OVERLOAD` — the deceleration exceeded the
  structural limit (cable/airframe);
* :attr:`FailureMode.HUNG` — the Golden Run stopped the aircraft inside
  the horizon but the injected run did not.

Aggregating the classes per injection location yields the FMECA-style
criticality matrix: which module inputs produce *severe* failures, not
merely propagating errors.

Classification runs inside the campaign's ``inspector`` hook (the
telemetry is only available while the run result is alive), see
:func:`classify_campaign`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.golden_run import GoldenRun
from repro.injection.outcomes import InjectionOutcome
from repro.model.system import SystemModel
from repro.simulation.runtime import RunResult, SimulationRun

__all__ = [
    "FailureMode",
    "SeverityLimits",
    "LocationCriticality",
    "CriticalityReport",
    "classify_run",
    "classify_campaign",
]


class FailureMode(enum.Enum):
    """Physical consequence classes, ordered by severity."""

    NO_EFFECT = 0
    TOLERATED = 1
    DEGRADED = 2
    HUNG = 3
    OVERLOAD = 4
    OVERRUN = 5

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_severe(self) -> bool:
        """Whether the mode endangers the arrestment mission."""
        return self in (FailureMode.HUNG, FailureMode.OVERLOAD, FailureMode.OVERRUN)


@dataclass(frozen=True)
class SeverityLimits:
    """Acceptance limits for one arrestment.

    Defaults fit the default plant: a 335 m runway with some paved
    overrun margin, a 3 g structural limit, and tolerances on how much
    worse than the Golden Run a run may be before counting as degraded.
    """

    #: Absolute overrun limit [m].
    max_position_m: float = 350.0
    #: Structural deceleration limit [m/s^2] (~3 g).
    max_decel_ms2: float = 30.0
    #: Extra roll-out beyond the Golden Run tolerated as benign [m].
    position_tolerance_m: float = 10.0
    #: Extra peak deceleration beyond the Golden Run tolerated [m/s^2].
    decel_tolerance_ms2: float = 2.0


def classify_run(
    injected: RunResult,
    golden: GoldenRun,
    outcome: InjectionOutcome,
    limits: SeverityLimits,
) -> FailureMode:
    """Classify one injection run against its Golden Run."""
    if outcome.comparison.error_free():
        return FailureMode.NO_EFFECT
    telemetry = injected.telemetry
    reference = golden.result.telemetry
    if telemetry["position_m"] > limits.max_position_m:
        return FailureMode.OVERRUN
    if telemetry["peak_decel_ms2"] > limits.max_decel_ms2:
        return FailureMode.OVERLOAD
    golden_stopped = reference["stop_time_ms"] >= 0
    injected_stopped = telemetry["stop_time_ms"] >= 0
    if golden_stopped and not injected_stopped:
        return FailureMode.HUNG
    position_excess = telemetry["position_m"] - reference["position_m"]
    decel_excess = telemetry["peak_decel_ms2"] - reference["peak_decel_ms2"]
    if (
        position_excess > limits.position_tolerance_m
        or decel_excess > limits.decel_tolerance_ms2
    ):
        return FailureMode.DEGRADED
    return FailureMode.TOLERATED


@dataclass
class LocationCriticality:
    """FMECA row: failure-mode distribution of one injection location."""

    module: str
    input_signal: str
    counts: dict[FailureMode, int] = field(
        default_factory=lambda: {mode: 0 for mode in FailureMode}
    )

    @property
    def n_injections(self) -> int:
        return sum(self.counts.values())

    @property
    def severe_fraction(self) -> float:
        """Fraction of injections with mission-endangering consequence."""
        if self.n_injections == 0:
            return 0.0
        severe = sum(
            count for mode, count in self.counts.items() if mode.is_severe
        )
        return severe / self.n_injections

    @property
    def effect_fraction(self) -> float:
        """Fraction of injections with any observable effect."""
        if self.n_injections == 0:
            return 0.0
        return 1.0 - self.counts[FailureMode.NO_EFFECT] / self.n_injections


@dataclass(frozen=True)
class CriticalityReport:
    """The criticality matrix over all injected locations."""

    locations: tuple[LocationCriticality, ...]
    limits: SeverityLimits

    def ranked(self) -> list[LocationCriticality]:
        """Locations by descending severe-failure fraction."""
        return sorted(
            self.locations,
            key=lambda loc: (-loc.severe_fraction, -loc.effect_fraction),
        )

    def by_location(self) -> Mapping[tuple[str, str], LocationCriticality]:
        return {(loc.module, loc.input_signal): loc for loc in self.locations}

    def render(self) -> str:
        from repro.core.report import format_table

        rows = []
        for loc in self.ranked():
            rows.append(
                (
                    f"{loc.module}.{loc.input_signal}",
                    loc.n_injections,
                    f"{loc.effect_fraction:.3f}",
                    f"{loc.severe_fraction:.3f}",
                    loc.counts[FailureMode.OVERRUN],
                    loc.counts[FailureMode.OVERLOAD],
                    loc.counts[FailureMode.HUNG],
                    loc.counts[FailureMode.DEGRADED],
                )
            )
        return format_table(
            headers=(
                "Location", "n", "effect", "severe",
                "overrun", "overload", "hung", "degraded",
            ),
            rows=rows,
            title="Criticality matrix (FMECA view of the campaign)",
        )


def classify_campaign(
    system: SystemModel,
    run_factory: Callable[..., SimulationRun],
    test_cases: Mapping[str, object] | Sequence[object],
    config: CampaignConfig,
    limits: SeverityLimits | None = None,
) -> tuple[CriticalityReport, "CampaignResult"]:
    """Run one campaign and classify every injection's consequence.

    Returns the criticality report together with the ordinary campaign
    result (so permeability estimation does not need a second campaign).
    """
    from repro.injection.outcomes import CampaignResult  # local: avoid cycle

    if limits is None:
        limits = SeverityLimits()
    locations: dict[tuple[str, str], LocationCriticality] = {}

    def inspector(
        outcome: InjectionOutcome, injected: RunResult, golden: GoldenRun
    ) -> None:
        key = (outcome.module, outcome.input_signal)
        if key not in locations:
            locations[key] = LocationCriticality(*key)
        mode = classify_run(injected, golden, outcome, limits)
        locations[key].counts[mode] += 1

    campaign = InjectionCampaign(system, run_factory, test_cases, config)
    result = campaign.execute(inspector=inspector)
    report = CriticalityReport(
        locations=tuple(locations.values()), limits=limits
    )
    return report, result
