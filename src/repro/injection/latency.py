"""Propagation-latency and error-lifetime analysis (beyond the paper).

The paper's permeability is a *probability*; reference [18] (whose EDM
selection the paper discusses) also uses detection *latency*.  This
module adds the temporal dimension to campaign results: for every
(module, input, output) pair, the distribution of the delay between the
injection and the first divergence of the output trace.

Latency matters for ERM placement: a recovery mechanism can only act
before the error reaches the system boundary, so pairs with short
propagation latency need in-line (synchronous) mechanisms while pairs
with long latency can be guarded by periodic scrubbing.

Reconvergence fast-forward contributes the complementary measurement
for free: every fast-forwarded IR records the instant its complete
state provably re-matched the Golden Run, i.e. the injected error's
*lifetime* (:func:`lifetime_statistics`).  Errors still alive when the
run ends are right-censored, not zero — they are reported separately
as ``n_censored``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.injection.outcomes import CampaignResult

__all__ = [
    "PairLatency",
    "latency_statistics",
    "render_latency_table",
    "InputLifetime",
    "lifetime_statistics",
    "render_lifetime_table",
]


@dataclass(frozen=True)
class PairLatency:
    """Latency statistics of one (module, input, output) pair."""

    module: str
    input_signal: str
    output_signal: str
    #: Number of injections whose error reached the output.
    n_samples: int
    #: Milliseconds from injection (trap firing) to first divergence.
    min_ms: int
    max_ms: int
    mean_ms: float
    #: Median latency (50th percentile).
    median_ms: float

    @property
    def is_synchronous(self) -> bool:
        """Whether propagation is immediate (within one activation cycle).

        Pairs whose *maximum* observed latency is below one 7 ms
        scheduling cycle propagate within the same frame: only in-line
        mechanisms can intercept them.
        """
        return self.max_ms <= 7


def _percentile(sorted_values: list[int], fraction: float) -> float:
    """Linear-interpolated percentile of a pre-sorted sample list."""
    if not sorted_values:
        raise ValueError("no samples")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(sorted_values[low])
    weight = position - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


def latency_statistics(
    result: CampaignResult, direct_only: bool = True
) -> dict[tuple[str, str, str], PairLatency]:
    """Per-pair propagation-latency statistics of a campaign.

    Only pairs with at least one propagated error appear.  Latency is
    measured from the actual trap firing time (not the scheduled time),
    so scheduling slack does not pollute the distribution.
    """
    samples: dict[tuple[str, str, str], list[int]] = {}
    for outcome in result:
        if not outcome.fired:
            continue
        assert outcome.fired_at_ms is not None
        spec = result.system.module(outcome.module)
        input_is_feedback = outcome.input_signal in spec.outputs
        for output_signal in spec.outputs:
            if direct_only and not outcome.direct_output_error(
                output_signal, input_is_feedback=input_is_feedback
            ):
                continue
            divergence = outcome.comparison.divergence_time(output_signal)
            if divergence is None:
                continue
            key = (outcome.module, outcome.input_signal, output_signal)
            samples.setdefault(key, []).append(divergence - outcome.fired_at_ms)
    statistics: dict[tuple[str, str, str], PairLatency] = {}
    for key, values in samples.items():
        values.sort()
        module, input_signal, output_signal = key
        statistics[key] = PairLatency(
            module=module,
            input_signal=input_signal,
            output_signal=output_signal,
            n_samples=len(values),
            min_ms=values[0],
            max_ms=values[-1],
            mean_ms=sum(values) / len(values),
            median_ms=_percentile(values, 0.5),
        )
    return statistics


@dataclass(frozen=True)
class InputLifetime:
    """Error-lifetime statistics of injections into one module input.

    Lifetime is measured from the trap firing to the proven
    reconvergence instant (complete-state digest match with the Golden
    Run); a lifetime of 0 means the error was masked within its own
    frame — the write the corrupted read produced was identical to the
    Golden Run's.
    """

    module: str
    input_signal: str
    #: Fired injections whose error provably died before the run ended.
    n_samples: int
    #: Fired injections whose error was still alive at the end of the
    #: run (right-censored: lifetime >= remaining run length).
    n_censored: int
    min_ms: int
    max_ms: int
    mean_ms: float
    median_ms: float

    @property
    def observed_fraction(self) -> float:
        """Fraction of fired injections with a measured (finite) lifetime."""
        total = self.n_samples + self.n_censored
        return self.n_samples / total if total else 0.0


def lifetime_statistics(
    result: CampaignResult,
) -> dict[tuple[str, str], InputLifetime]:
    """Per-input error-lifetime statistics of a campaign.

    Requires a campaign executed with reconvergence fast-forward
    (:attr:`~repro.injection.campaign.CampaignConfig.fast_forward`);
    without it no run records a reconvergence instant and every fired
    injection counts as censored.  Only inputs with at least one fired
    injection appear.
    """
    samples: dict[tuple[str, str], list[int]] = {}
    censored: dict[tuple[str, str], int] = {}
    for outcome in result:
        if not outcome.fired:
            continue
        key = (outcome.module, outcome.input_signal)
        lifetime = outcome.error_lifetime_ms
        if lifetime is None:
            censored[key] = censored.get(key, 0) + 1
            samples.setdefault(key, [])
        else:
            samples.setdefault(key, []).append(lifetime)
    statistics: dict[tuple[str, str], InputLifetime] = {}
    for key, values in samples.items():
        values.sort()
        module, input_signal = key
        statistics[key] = InputLifetime(
            module=module,
            input_signal=input_signal,
            n_samples=len(values),
            n_censored=censored.get(key, 0),
            min_ms=values[0] if values else 0,
            max_ms=values[-1] if values else 0,
            mean_ms=sum(values) / len(values) if values else 0.0,
            median_ms=_percentile(values, 0.5) if values else 0.0,
        )
    return statistics


def render_lifetime_table(
    statistics: dict[tuple[str, str], InputLifetime]
) -> str:
    """Monospace table of per-input error lifetimes."""
    from repro.core.report import format_table

    rows = []
    for (module, input_signal), stats in sorted(statistics.items()):
        if stats.n_samples:
            spread = (
                f"{stats.min_ms}",
                f"{stats.median_ms:.0f}",
                f"{stats.mean_ms:.1f}",
                f"{stats.max_ms}",
            )
        else:
            spread = ("-", "-", "-", "-")
        rows.append(
            (
                f"{module}: {input_signal}",
                stats.n_samples,
                stats.n_censored,
                *spread,
            )
        )
    return format_table(
        headers=("Input", "died", "alive", "min", "p50", "mean", "max"),
        rows=rows,
        title="Error lifetime from injection to proven reconvergence [ms]",
    )


def render_latency_table(
    statistics: dict[tuple[str, str, str], PairLatency]
) -> str:
    """Monospace table of per-pair propagation latencies."""
    from repro.core.report import format_table

    rows = []
    for (module, input_signal, output_signal), stats in sorted(statistics.items()):
        rows.append(
            (
                f"{module}: {input_signal} -> {output_signal}",
                stats.n_samples,
                stats.min_ms,
                f"{stats.median_ms:.0f}",
                f"{stats.mean_ms:.1f}",
                stats.max_ms,
                "sync" if stats.is_synchronous else "async",
            )
        )
    return format_table(
        headers=("Pair", "n", "min", "p50", "mean", "max", "class"),
        rows=rows,
        title="Propagation latency from injection to first output divergence [ms]",
    )
