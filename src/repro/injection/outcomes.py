"""Records of individual injection experiments and their aggregation.

Each injection run (IR) produces one :class:`InjectionOutcome`; a
campaign produces a :class:`CampaignResult` holding all of them plus the
aggregation into per-pair error counts — the raw material of the paper's
Table 1 estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.injection.golden_run import GoldenRunComparison
from repro.model.system import SystemModel

__all__ = ["AdaptiveRow", "InjectionOutcome", "PairCounts", "CampaignResult"]


@dataclass(frozen=True)
class AdaptiveRow:
    """Stopping record of one adaptively sampled (module, input) target.

    Attached to a :class:`CampaignResult` by the adaptive campaign path
    (``CampaignConfig(adaptive=True)``): how many of the target's grid
    trials actually ran, the achieved Wilson half-width of its widest
    output arc at retirement, and why sampling stopped
    (``"confidence"``: the interval got tight enough; ``"cap"``: the
    per-target trial cap; ``"exhausted"``: the full grid ran).  Lets
    reports annotate each estimate with its achieved confidence.
    """

    module: str
    input_signal: str
    n_trials: int
    n_grid: int
    half_width: float
    reason: str
    round_index: int

    def to_jsonable(self) -> dict:
        return {
            "module": self.module,
            "input_signal": self.input_signal,
            "n_trials": self.n_trials,
            "n_grid": self.n_grid,
            "half_width": self.half_width,
            "reason": self.reason,
            "round_index": self.round_index,
        }


@dataclass(frozen=True)
class InjectionOutcome:
    """One injection run: what was injected, and what the GRC found."""

    #: Workload/test case identifier.
    case_id: str
    #: Module whose input was injected.
    module: str
    #: Input signal that was injected.
    input_signal: str
    #: Scheduled injection time (the trap fires at the first read at or
    #: after this time).
    scheduled_time_ms: int
    #: Millisecond at which the trap actually fired, or ``None`` if the
    #: module never read the signal after the scheduled time.
    fired_at_ms: int | None
    #: Name of the applied error model (e.g. ``bitflip[7]``).
    error_model: str
    #: The GRC verdict for every traced signal.
    comparison: GoldenRunComparison
    #: Frame at which the IR provably re-matched the Golden Run and was
    #: fast-forwarded (``None``: simulated to the end).  The paper's
    #: error-lifetime measurement: the injected error's effect set was
    #: empty from this instant on.
    reconverged_at_ms: int | None = None
    #: Frames the IR skipped thanks to reconvergence fast-forward.
    frames_fast_forwarded: int = 0

    @property
    def fired(self) -> bool:
        """Whether the injection actually took place."""
        return self.fired_at_ms is not None

    @property
    def reconverged(self) -> bool:
        """Whether the run was fast-forwarded after reconvergence."""
        return self.reconverged_at_ms is not None

    @property
    def error_lifetime_ms(self) -> int | None:
        """Milliseconds from trap firing to proven reconvergence.

        ``None`` when the trap never fired or the run never (provably)
        reconverged — the error was still alive at the end of the run,
        so its lifetime is right-censored, not zero.
        """
        if self.fired_at_ms is None or self.reconverged_at_ms is None:
            return None
        return self.reconverged_at_ms - self.fired_at_ms

    def output_diverged(self, output_signal: str) -> bool:
        """Whether the given signal diverged from the Golden Run."""
        return self.comparison.diverged(output_signal)

    def to_jsonable(self) -> dict:
        """JSON-safe form for the campaign result store (repro.store)."""
        return {
            "case_id": self.case_id,
            "module": self.module,
            "input_signal": self.input_signal,
            "scheduled_time_ms": self.scheduled_time_ms,
            "fired_at_ms": self.fired_at_ms,
            "error_model": self.error_model,
            "comparison": self.comparison.to_jsonable(),
            "reconverged_at_ms": self.reconverged_at_ms,
            "frames_fast_forwarded": self.frames_fast_forwarded,
        }

    @classmethod
    def from_jsonable(cls, data: Mapping) -> "InjectionOutcome":
        """Rebuild an outcome persisted by :meth:`to_jsonable`."""
        return cls(
            case_id=data["case_id"],
            module=data["module"],
            input_signal=data["input_signal"],
            scheduled_time_ms=data["scheduled_time_ms"],
            fired_at_ms=data["fired_at_ms"],
            error_model=data["error_model"],
            comparison=GoldenRunComparison.from_jsonable(data["comparison"]),
            reconverged_at_ms=data["reconverged_at_ms"],
            frames_fast_forwarded=data["frames_fast_forwarded"],
        )

    def direct_output_error(
        self, output_signal: str, input_is_feedback: bool = False
    ) -> bool:
        """Whether the divergence on ``output_signal`` was *direct*.

        Section 7.3: "We only took into account the direct errors on the
        outputs.  We did not count errors originating from errors that
        propagated via one of the other outputs and then came back to
        the original input producing an error in the first output."

        Because injection is consumer-scoped, the *stored* value of the
        injected input signal is only perturbed if the error travels
        through the system and arrives back at the signal.  An output
        divergence is therefore direct iff it occurs no later than the
        injected signal's own stored trace diverges.

        ``input_is_feedback`` marks injected inputs that are outputs of
        the injected module itself (e.g. CALC's ``i``).  There the
        stored trace diverges immediately through the module's own
        write — that is the direct feedback, not a return "via one of
        the other outputs", so the loop test does not apply.
        """
        output_time = self.comparison.divergence_time(output_signal)
        if output_time is None:
            return False
        if input_is_feedback:
            return True
        loop_time = self.comparison.divergence_time(self.input_signal)
        return loop_time is None or output_time <= loop_time


@dataclass
class PairCounts:
    """Raw counts for one (module, input, output) pair."""

    module: str
    input_signal: str
    output_signal: str
    n_injections: int = 0
    n_errors: int = 0

    @property
    def permeability(self) -> float:
        """The paper's point estimate :math:`n_{err} / n_{inj}`."""
        if self.n_injections == 0:
            return 0.0
        return self.n_errors / self.n_injections


class CampaignResult:
    """All outcomes of one campaign, with aggregation helpers."""

    def __init__(self, system: SystemModel, outcomes: Iterable[InjectionOutcome] = ()):
        self._system = system
        self._outcomes: list[InjectionOutcome] = list(outcomes)
        self._pruned: dict[tuple[str, str], int] = {}
        self._adaptive: dict[tuple[str, str], AdaptiveRow] = {}

    @property
    def system(self) -> SystemModel:
        return self._system

    def add(self, outcome: InjectionOutcome) -> None:
        """Record one injection run."""
        self._outcomes.append(outcome)

    def record_pruned(
        self, module: str, input_signal: str, n_injections: int
    ) -> None:
        """Record a statically-pruned target as exact zero-error counts.

        A target is only pruned when every arc of its row is proven to
        have zero permeability (see :mod:`repro.flow`), so the
        ``n_injections`` runs it would have received are recorded as
        conducted-with-zero-errors without executing them.  The counts
        surface through :meth:`pair_counts` exactly as if the runs had
        happened, keeping estimators and reports complete.
        """
        key = (module, input_signal)
        self._pruned[key] = self._pruned.get(key, 0) + n_injections

    def pruned_targets(self) -> tuple[tuple[str, str], ...]:
        """The statically-pruned (module, input) targets, in record order."""
        return tuple(self._pruned)

    def n_pruned_runs(self) -> int:
        """Injection runs skipped (and recorded as zeros) by pruning."""
        return sum(self._pruned.values())

    def record_adaptive(self, row: AdaptiveRow) -> None:
        """Attach one adaptive target's stopping record."""
        self._adaptive[(row.module, row.input_signal)] = row

    def adaptive_rows(self) -> tuple[AdaptiveRow, ...]:
        """Stopping records of an adaptive campaign, in retirement order.

        Empty for exhaustive campaigns; an adaptive campaign records one
        row per sampled (module, input) target.  Statically-pruned
        targets never appear here — their arcs are exact zeros, not
        samples.
        """
        return tuple(self._adaptive.values())

    def n_adaptive_trials(self) -> int:
        """Injection runs an adaptive campaign actually scheduled."""
        return sum(row.n_trials for row in self._adaptive.values())

    def n_adaptive_trials_saved(self) -> int:
        """Grid runs adaptive stopping skipped (vs the exhaustive grid)."""
        return sum(
            row.n_grid - row.n_trials for row in self._adaptive.values()
        )

    def __len__(self) -> int:
        return len(self._outcomes)

    def __iter__(self) -> Iterator[InjectionOutcome]:
        return iter(self._outcomes)

    def outcomes_for(
        self, module: str, input_signal: str | None = None
    ) -> list[InjectionOutcome]:
        """Outcomes of injections into one module (optionally one input)."""
        return [
            outcome
            for outcome in self._outcomes
            if outcome.module == module
            and (input_signal is None or outcome.input_signal == input_signal)
        ]

    def pair_counts(
        self,
        direct_only: bool = True,
        count_unfired: bool = True,
        predicate: Callable[[InjectionOutcome], bool] | None = None,
    ) -> dict[tuple[str, str, str], PairCounts]:
        """Aggregate outcomes into per-pair injection/error counts.

        Parameters
        ----------
        direct_only:
            Apply the paper's direct-error rule (Section 7.3) instead of
            counting any divergence.
        count_unfired:
            Whether injections whose trap never fired still count in the
            denominator.  The paper counts *conducted* injections
            (:math:`16 \\cdot 10 \\cdot 25 = 4000` per signal), so the
            default is ``True``; unfired traps contribute no errors
            either way.
        predicate:
            Optional extra filter over outcomes (e.g. one test case or
            one error model) for ablation studies.

        Returns counts for every pair of every module that received at
        least one injection; pairs of uninjected modules are absent.
        Statically-pruned targets (see :meth:`record_pruned`) appear
        with their full injection count and zero errors, exactly as if
        the runs had executed — but only when ``predicate`` is ``None``,
        since pruned runs have no per-outcome record to filter on.
        """
        counts: dict[tuple[str, str, str], PairCounts] = {}
        injected_inputs = {
            (outcome.module, outcome.input_signal) for outcome in self._outcomes
        }
        for module, input_signal in injected_inputs:
            spec = self._system.module(module)
            for output_signal in spec.outputs:
                key = (module, input_signal, output_signal)
                counts[key] = PairCounts(module, input_signal, output_signal)
        for outcome in self._outcomes:
            if predicate is not None and not predicate(outcome):
                continue
            if not outcome.fired and not count_unfired:
                continue
            spec = self._system.module(outcome.module)
            input_is_feedback = outcome.input_signal in spec.outputs
            for output_signal in spec.outputs:
                key = (outcome.module, outcome.input_signal, output_signal)
                counts[key].n_injections += 1
                if not outcome.fired:
                    continue
                if direct_only:
                    hit = outcome.direct_output_error(
                        output_signal, input_is_feedback=input_is_feedback
                    )
                else:
                    hit = outcome.output_diverged(output_signal)
                if hit:
                    counts[key].n_errors += 1
        if predicate is None:
            for (module, input_signal), n_injections in self._pruned.items():
                spec = self._system.module(module)
                for output_signal in spec.outputs:
                    key = (module, input_signal, output_signal)
                    entry = counts.setdefault(
                        key, PairCounts(module, input_signal, output_signal)
                    )
                    entry.n_injections += n_injections
        return counts

    def n_fired(self) -> int:
        """Number of injection runs whose trap actually fired."""
        return sum(1 for outcome in self._outcomes if outcome.fired)

    def n_reconverged(self) -> int:
        """Injection runs that reconverged and were fast-forwarded."""
        return sum(1 for outcome in self._outcomes if outcome.reconverged)

    def reconverged_fraction(self) -> float:
        """Fraction of IRs that provably reconverged (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        return self.n_reconverged() / len(self._outcomes)

    def frames_fast_forwarded_total(self) -> int:
        """Simulated milliseconds skipped by reconvergence fast-forward."""
        return sum(outcome.frames_fast_forwarded for outcome in self._outcomes)

    def case_ids(self) -> tuple[str, ...]:
        """All distinct test-case identifiers, in first-seen order."""
        seen: dict[str, None] = {}
        for outcome in self._outcomes:
            seen.setdefault(outcome.case_id, None)
        return tuple(seen)

    def error_model_names(self) -> tuple[str, ...]:
        """All distinct error-model names, in first-seen order."""
        seen: dict[str, None] = {}
        for outcome in self._outcomes:
            seen.setdefault(outcome.error_model, None)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CampaignResult {len(self._outcomes)} injections, "
            f"{self.n_fired()} fired>"
        )
