"""The :class:`PropagationAnalysis` facade.

Ties the individual analyses of Sections 4–5 together behind one object:
given a complete :class:`~repro.core.permeability.PermeabilityMatrix`,
it lazily builds and caches the permeability graph, the backtrack and
trace trees, the module/signal measures, the ranked propagation paths
and the placement report, and renders the paper-style tables.

This is the class most users interact with::

    analysis = PropagationAnalysis(matrix)
    print(analysis.render_table2())
    for path in analysis.ranked_output_paths("TOC2")[:5]:
        print(path)
"""

from __future__ import annotations

from functools import cached_property
from typing import Mapping

from repro.core.backtrack import BacktrackTree, build_all_backtrack_trees
from repro.core.exposure import (
    ModuleExposure,
    all_module_exposures,
    all_signal_exposures,
)
from repro.core.graph import PermeabilityGraph
from repro.core.paths import (
    PropagationPath,
    nonzero_paths,
    paths_of_backtrack_tree,
    paths_of_trace_tree,
    rank_paths,
)
from repro.core.permeability import ModuleMeasures, PermeabilityMatrix
from repro.core.placement import PlacementAdvisor, PlacementReport
from repro.core.report import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.core.trace import TraceTree, build_all_trace_trees
from repro.model.system import SystemModel

__all__ = ["PropagationAnalysis"]


class PropagationAnalysis:
    """One-stop propagation analysis of a system with known permeabilities.

    All derived artefacts are computed lazily and cached; the underlying
    matrix must be complete and must not be mutated afterwards (make a
    new analysis object after re-estimating).
    """

    def __init__(self, matrix: PermeabilityMatrix) -> None:
        matrix.require_complete()
        self._matrix = matrix

    # ------------------------------------------------------------------
    # Underlying artefacts
    # ------------------------------------------------------------------

    @property
    def matrix(self) -> PermeabilityMatrix:
        """The permeability matrix under analysis."""
        return self._matrix

    @property
    def system(self) -> SystemModel:
        """The analysed system model."""
        return self._matrix.system

    @cached_property
    def graph(self) -> PermeabilityGraph:
        """The permeability graph (Fig. 3 / Fig. 9 analogue)."""
        return PermeabilityGraph(self._matrix)

    @cached_property
    def backtrack_trees(self) -> Mapping[str, BacktrackTree]:
        """One backtrack tree per system output."""
        return build_all_backtrack_trees(self._matrix)

    @cached_property
    def trace_trees(self) -> Mapping[str, TraceTree]:
        """One trace tree per system input."""
        return build_all_trace_trees(self._matrix)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    @cached_property
    def module_measures(self) -> Mapping[str, ModuleMeasures]:
        """Eq. 2/3 per module."""
        return self._matrix.all_module_measures()

    @cached_property
    def module_exposures(self) -> Mapping[str, ModuleExposure]:
        """Eq. 4/5 per module."""
        return all_module_exposures(self.graph)

    @cached_property
    def signal_exposures(self) -> Mapping[str, float]:
        """Eq. 6 per signal, over all backtrack trees."""
        return all_signal_exposures(
            self.backtrack_trees.values(), signals=self.system.signal_names()
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def output_paths(self, system_output: str) -> list[PropagationPath]:
        """All propagation paths of one system output's backtrack tree."""
        return paths_of_backtrack_tree(self.backtrack_trees[system_output])

    def ranked_output_paths(
        self, system_output: str, only_nonzero: bool = False
    ) -> list[PropagationPath]:
        """Backtrack-tree paths ranked by weight (Table 4 ordering)."""
        paths = self.output_paths(system_output)
        if only_nonzero:
            paths = nonzero_paths(paths)
        return rank_paths(paths)

    def input_paths(self, system_input: str) -> list[PropagationPath]:
        """All propagation paths of one system input's trace tree."""
        return paths_of_trace_tree(self.trace_trees[system_input])

    def ranked_input_paths(
        self, system_input: str, only_nonzero: bool = False
    ) -> list[PropagationPath]:
        """Trace-tree paths ranked by weight."""
        paths = self.input_paths(system_input)
        if only_nonzero:
            paths = nonzero_paths(paths)
        return rank_paths(paths)

    def all_ranked_paths(self, only_nonzero: bool = False) -> list[PropagationPath]:
        """Ranked paths over every system output's backtrack tree."""
        paths: list[PropagationPath] = []
        for output in self.system.system_outputs:
            paths.extend(self.output_paths(output))
        if only_nonzero:
            paths = nonzero_paths(paths)
        return rank_paths(paths)

    def adjusted_output_paths(
        self, system_output: str
    ) -> list[tuple[PropagationPath, float | None]]:
        """Paths with the paper's :math:`P' = \\Pr(err) \\cdot P` scaling.

        Section 4.2: "If the probability of an error appearing on
        :math:`I^A_1` is :math:`\\Pr(A_1)`, then the P can be adjusted
        with this factor."  The prior comes from each source signal's
        :attr:`~repro.model.signal.SignalSpec.error_probability`;
        sources without a declared prior yield ``None`` (the analysis
        then falls back to the conditional weight, as the paper does
        when the error distribution is unknown).  Paths are ordered by
        adjusted weight where available, conditional weight otherwise.
        """
        adjusted: list[tuple[PropagationPath, float | None]] = []
        for path in self.output_paths(system_output):
            prior = self.system.signal(path.source).error_probability
            adjusted.append(
                (path, None if prior is None else path.adjusted_weight(prior))
            )
        adjusted.sort(
            key=lambda item: -(item[1] if item[1] is not None else item[0].weight)
        )
        return adjusted

    # ------------------------------------------------------------------
    # Placement and sensitivity
    # ------------------------------------------------------------------

    @cached_property
    def placement(self) -> PlacementReport:
        """EDM/ERM placement recommendations (Section 5, OB1–OB6)."""
        return PlacementAdvisor(self._matrix).report()

    def sensitivity(self, system_output: str | None = None):
        """Gradient of an output's reach mass over the pair estimates.

        See :mod:`repro.core.sensitivity`; defaults to the first system
        output.
        """
        from repro.core.sensitivity import output_sensitivities

        if system_output is None:
            system_output = self.system.system_outputs[0]
        return output_sensitivities(self._matrix, system_output)

    # ------------------------------------------------------------------
    # Paper-style rendering
    # ------------------------------------------------------------------

    def render_table1(self) -> str:
        """Table 1: per-pair permeability values."""
        return render_table1(self._matrix)

    def render_table2(self) -> str:
        """Table 2: module measures (Eqs. 2–5)."""
        return render_table2(self.module_measures, self.module_exposures)

    def render_table3(self) -> str:
        """Table 3: signal error exposures (Eq. 6)."""
        return render_table3(dict(self.signal_exposures))

    def render_table4(
        self, system_output: str | None = None, only_nonzero: bool = True
    ) -> str:
        """Table 4: ranked propagation paths.

        Defaults to the first system output (the paper analyses its only
        output, ``TOC2``) and non-zero paths only.
        """
        if system_output is None:
            system_output = self.system.system_outputs[0]
        paths = self.ranked_output_paths(system_output, only_nonzero=only_nonzero)
        return render_table4(paths)

    def render_summary(self) -> str:
        """All four tables plus the placement report in one string."""
        blocks = [
            self.system.summary(),
            self.render_table1(),
            self.render_table2(),
            self.render_table3(),
        ]
        blocks.extend(
            self.render_table4(output) for output in self.system.system_outputs
        )
        blocks.append(self.placement.render())
        return "\n\n".join(blocks)
