"""Propagation-path extraction, weighting and ranking (Section 4.2).

"The weight for each path is the product of the error permeability
values along the path."  Ranking root-to-leaf paths of a backtrack tree
by weight yields the paper's Table 4 (the 22 paths of the ``TOC2``
backtrack tree, 13 of which have non-zero weight).

If the probability of an error appearing on a system input is known
(:attr:`repro.model.signal.SignalSpec.error_probability`), the
conditional path weight :math:`P` can be scaled into the unconditional
:math:`P' = \\Pr(\\text{err on input}) \\cdot P` — the paper's
``Pr(A_1)`` adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.backtrack import BacktrackTree
from repro.core.trace import TraceTree
from repro.core.treenode import NodeKind, PropagationNode

__all__ = [
    "PathEdge",
    "PropagationPath",
    "paths_of_backtrack_tree",
    "paths_of_trace_tree",
    "rank_paths",
    "nonzero_paths",
]


@dataclass(frozen=True)
class PathEdge:
    """One edge of a propagation path: a traversed permeability value."""

    module: str
    input_signal: str
    output_signal: str
    permeability: float

    def label(self) -> str:
        """Paper-style factor label, e.g. ``P^CALC[pulscnt->SetValue]``."""
        return f"P^{self.module}[{self.input_signal}->{self.output_signal}]"

    def __str__(self) -> str:
        return f"{self.label()}={self.permeability:.3f}"


@dataclass(frozen=True)
class PropagationPath:
    """One root-to-leaf path of a backtrack or trace tree.

    Attributes
    ----------
    source:
        Signal where the error originates (the leaf of a backtrack
        tree, the root of a trace tree).
    sink:
        Signal the error propagates to (the root of a backtrack tree,
        the leaf of a trace tree).
    signals:
        The full signal sequence from source to sink.
    edges:
        The traversed permeability values, in source-to-sink order.
    weight:
        Product of the edge permeabilities (the conditional propagation
        probability of Section 4.2).
    terminal_kind:
        Kind of the tree leaf the path ends at (boundary, feedback or
        cycle), i.e. why the path stopped.
    """

    source: str
    sink: str
    signals: tuple[str, ...]
    edges: tuple[PathEdge, ...]
    weight: float
    terminal_kind: NodeKind

    @property
    def length(self) -> int:
        """Number of traversed permeability values."""
        return len(self.edges)

    @property
    def ends_at_boundary(self) -> bool:
        """Whether the path reaches the system boundary (vs. a cut leaf)."""
        return self.terminal_kind is NodeKind.BOUNDARY

    def adjusted_weight(self, source_error_probability: float) -> float:
        """The paper's :math:`P' = \\Pr(\\text{err}) \\cdot P` scaling."""
        return source_error_probability * self.weight

    def factor_expression(self) -> str:
        """The product expression, e.g. ``P^A[..] * P^B[..] = 0.123``."""
        if not self.edges:
            return f"1.0 = {self.weight:.3f}"
        factors = " * ".join(edge.label() for edge in self.edges)
        return f"{factors} = {self.weight:.6f}"

    def __str__(self) -> str:
        chain = " -> ".join(self.signals)
        return f"{chain}  (w={self.weight:.6f})"


def _collect_paths(
    node: PropagationNode,
    prefix_signals: list[str],
    prefix_edges: list[PathEdge],
    prefix_weight: float,
    out: list[tuple[tuple[str, ...], tuple[PathEdge, ...], float, NodeKind]],
) -> None:
    prefix_signals.append(node.signal)
    if node.pair_module is not None:
        assert node.input_signal is not None and node.output_signal is not None
        prefix_edges.append(
            PathEdge(
                module=node.pair_module,
                input_signal=node.input_signal,
                output_signal=node.output_signal,
                permeability=node.permeability,
            )
        )
        prefix_weight *= node.permeability
    if node.is_leaf:
        out.append(
            (
                tuple(prefix_signals),
                tuple(prefix_edges),
                prefix_weight,
                node.kind,
            )
        )
    else:
        for child in node.children:
            _collect_paths(child, prefix_signals, prefix_edges, prefix_weight, out)
    prefix_signals.pop()
    if node.pair_module is not None:
        prefix_edges.pop()


def paths_of_backtrack_tree(tree: BacktrackTree) -> list[PropagationPath]:
    """All root-to-leaf paths of a backtrack tree.

    Paths are reported source-to-sink: the *leaf* (where the error
    enters) comes first and the system output last, so the printed
    chains read in propagation direction like the paper's Table 4.
    """
    raw: list[tuple[tuple[str, ...], tuple[PathEdge, ...], float, NodeKind]] = []
    _collect_paths(tree.root, [], [], 1.0, raw)
    paths = []
    for signals, edges, weight, terminal_kind in raw:
        # Tree order is sink -> source; reverse into propagation order.
        paths.append(
            PropagationPath(
                source=signals[-1],
                sink=signals[0],
                signals=tuple(reversed(signals)),
                edges=tuple(reversed(edges)),
                weight=weight,
                terminal_kind=terminal_kind,
            )
        )
    return paths


def paths_of_trace_tree(tree: TraceTree) -> list[PropagationPath]:
    """All root-to-leaf paths of a trace tree (already in propagation order)."""
    raw: list[tuple[tuple[str, ...], tuple[PathEdge, ...], float, NodeKind]] = []
    _collect_paths(tree.root, [], [], 1.0, raw)
    return [
        PropagationPath(
            source=signals[0],
            sink=signals[-1],
            signals=signals,
            edges=edges,
            weight=weight,
            terminal_kind=terminal_kind,
        )
        for signals, edges, weight, terminal_kind in raw
    ]


def rank_paths(paths: Iterable[PropagationPath]) -> list[PropagationPath]:
    """Paths ordered by descending weight (ties: shorter path first).

    "Ordering the paths according to their total weight gives us some
    knowledge of the more probable paths for error propagation."
    """
    return sorted(paths, key=lambda p: (-p.weight, p.length, p.signals))


def nonzero_paths(paths: Iterable[PropagationPath]) -> list[PropagationPath]:
    """Only the paths along which errors might propagate (weight > 0).

    The paper's Table 4 "depicts the thirteen paths that acquired
    weights greater than zero".
    """
    return [path for path in paths if path.weight > 0.0]
