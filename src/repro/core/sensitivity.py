"""Sensitivity and what-if analysis on the permeability model.

Two resource-management questions the paper's introduction motivates
("where additional resources for dependability development are
necessary and ... most cost effective") but leaves procedural:

1. **Which pair estimate matters most?**  The propagation mass reaching
   a system output is the sum of its non-cut backtrack-path weights,

   .. math:: R = \\sum_{p} \\prod_{e \\in p} P_e .

   Each pair appears at most once per path (outputs are expanded once
   per path), so *R* is multilinear in the pair permeabilities and

   .. math:: \\frac{\\partial R}{\\partial P_e}
             = \\sum_{p \\ni e} \\prod_{e' \\in p, e' \\ne e} P_{e'} .

   The gradient ranks the pairs by leverage: where a campaign should
   spend additional injections (estimation variance is amplified by the
   gradient), and where an ERM that lowers the permeability buys the
   largest reduction in propagated errors.

2. **What if we harden a pair?**  :func:`what_if` rebuilds the analysis
   with selected pair permeabilities replaced (e.g. a wrapper around a
   module input, Section 4.1's containment discussion) and reports the
   resulting change of the output reach mass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.backtrack import build_backtrack_tree
from repro.core.paths import paths_of_backtrack_tree
from repro.core.permeability import PairKey, PermeabilityMatrix

__all__ = [
    "PairSensitivity",
    "SensitivityReport",
    "output_reach",
    "output_sensitivities",
    "what_if",
]


@dataclass(frozen=True)
class PairSensitivity:
    """Leverage of one pair on a system output's propagation mass."""

    module: str
    input_signal: str
    output_signal: str
    #: Current permeability of the pair.
    permeability: float
    #: :math:`\partial R / \partial P` — the gradient entry.
    gradient: float
    #: Number of backtrack paths traversing the pair.
    n_paths: int

    @property
    def pair(self) -> PairKey:
        return (self.module, self.input_signal, self.output_signal)

    @property
    def contribution(self) -> float:
        """The pair's share of the reach mass: gradient x permeability."""
        return self.gradient * self.permeability


@dataclass(frozen=True)
class SensitivityReport:
    """Gradient of one system output's reach mass over all pairs."""

    system_output: str
    reach: float
    sensitivities: tuple[PairSensitivity, ...]

    def ranked(self) -> list[PairSensitivity]:
        """Pairs by descending gradient (leverage)."""
        return sorted(self.sensitivities, key=lambda s: (-s.gradient, s.pair))

    def by_pair(self) -> Mapping[PairKey, PairSensitivity]:
        return {item.pair: item for item in self.sensitivities}

    def render(self, top: int | None = 10) -> str:
        from repro.core.report import format_table

        rows = []
        for index, item in enumerate(self.ranked()):
            if top is not None and index >= top:
                break
            rows.append(
                (
                    f"{item.module}: {item.input_signal} -> {item.output_signal}",
                    f"{item.permeability:.3f}",
                    f"{item.gradient:.4f}",
                    f"{item.contribution:.4f}",
                    item.n_paths,
                )
            )
        return format_table(
            headers=("Pair", "P", "dR/dP", "P*dR/dP", "paths"),
            rows=rows,
            title=(
                f"Sensitivity of the {self.system_output} reach mass "
                f"(R = {self.reach:.4f})"
            ),
        )


def output_reach(matrix: PermeabilityMatrix, system_output: str) -> float:
    """The propagation mass :math:`R`: sum of all backtrack-path weights.

    Not a probability (paths are not disjoint events) but the natural
    aggregate of the paper's Table 4 — the quantity its ranking sums.
    """
    tree = build_backtrack_tree(matrix, system_output)
    return sum(path.weight for path in paths_of_backtrack_tree(tree))


def output_sensitivities(
    matrix: PermeabilityMatrix, system_output: str
) -> SensitivityReport:
    """The full gradient :math:`\\partial R / \\partial P_e` of one output.

    Computed path-wise: each path contributes the product of its *other*
    edges to every edge it traverses (exact even when the edge's own
    permeability is zero).
    """
    tree = build_backtrack_tree(matrix, system_output)
    paths = paths_of_backtrack_tree(tree)
    gradients: dict[PairKey, float] = {}
    path_counts: dict[PairKey, int] = {}
    reach = 0.0
    for path in paths:
        reach += path.weight
        values = [edge.permeability for edge in path.edges]
        n = len(values)
        # prefix[i] = product of values[:i]; suffix[i] = product of values[i+1:]
        prefix = [1.0] * (n + 1)
        for index in range(n):
            prefix[index + 1] = prefix[index] * values[index]
        suffix = [1.0] * (n + 1)
        for index in range(n - 1, -1, -1):
            suffix[index] = suffix[index + 1] * values[index]
        for index, edge in enumerate(path.edges):
            key = (edge.module, edge.input_signal, edge.output_signal)
            others = prefix[index] * suffix[index + 1]
            gradients[key] = gradients.get(key, 0.0) + others
            path_counts[key] = path_counts.get(key, 0) + 1
    sensitivities = tuple(
        PairSensitivity(
            module=module,
            input_signal=input_signal,
            output_signal=output_signal,
            permeability=matrix.get(module, input_signal, output_signal),
            gradient=gradient,
            n_paths=path_counts[(module, input_signal, output_signal)],
        )
        for (module, input_signal, output_signal), gradient in gradients.items()
    )
    return SensitivityReport(
        system_output=system_output, reach=reach, sensitivities=sensitivities
    )


def what_if(
    matrix: PermeabilityMatrix,
    changes: Mapping[PairKey, float],
    system_output: str,
) -> tuple[float, float, PermeabilityMatrix]:
    """Reach mass before and after hardening selected pairs.

    Returns ``(reach_before, reach_after, modified_matrix)``.  The input
    matrix is not mutated.  Typical use: project the payoff of an ERM or
    wrapper that would lower a pair's permeability::

        before, after, _ = what_if(matrix, {("CALC", "i", "SetValue"): 0.1}, "TOC2")
    """
    before = output_reach(matrix, system_output)
    modified = PermeabilityMatrix(matrix.system)
    for key, estimate in matrix.items():
        modified.set(*key, estimate)
    for key, value in changes.items():
        modified.set(*key, value)
    after = output_reach(modified, system_output)
    return before, after, modified


def verify_gradient(
    matrix: PermeabilityMatrix,
    system_output: str,
    pair: PairKey,
    epsilon: float = 1e-6,
) -> tuple[float, float]:
    """Numerical check of one gradient entry (analytic, finite-difference).

    Exposed mainly for tests and documentation; the analytic gradient is
    exact because the reach mass is multilinear.
    """
    report = output_sensitivities(matrix, system_output)
    analytic = report.by_pair()[pair].gradient
    base = matrix.get(*pair)
    bumped = min(1.0, base + epsilon)
    if math.isclose(bumped, base):
        bumped = base - epsilon
    _, after, _ = what_if(matrix, {pair: bumped}, system_output)
    numeric = (after - report.reach) / (bumped - base)
    return analytic, numeric
