"""Backtrack trees: Output Error Tracing (Section 4.2, steps A1–A4).

A backtrack tree answers: *along which paths, and with what probability,
do errors reach a given system output?*  Construction follows the
paper's steps:

A1. Select a system output signal as the root node of the tree.
A2. For each error permeability value associated with the signal
    (i.e. each :math:`P^M_{i,k}` of the producing module *M* whose
    output *k* carries the signal), generate a child node associated
    with the corresponding input signal.
A3. For each child node: if the signal is a system input it is a leaf;
    otherwise backtrack to the module producing the signal and expand
    from A2 — *unless* that producing output has already been expanded
    on the current root path, in which case the child is a leaf.  For
    module feedback this realises the paper's double-line rule: the
    feedback loop is traversed exactly once, and the cut leaf hangs
    directly under the output node carrying the same signal (Fig. 4's
    "double line between I^B_1 and O^B_1"; Fig. 10's "the parent node
    is also either ``ms_slot_nbr`` or ``i``").  As all permeability
    values are ≤ 1, the one-pass sub-tree is the one with the highest
    probability (Section 4.2), so no recursion is lost.
A4. Repeat from A1 for every system output.

All vertices carry an error-permeability weight; root-to-leaf path
weights (products of the edge weights) rank the propagation paths — the
basis of the paper's Table 4 (22 paths for the target system's ``TOC2``).

The same expand-each-output-once-per-path rule also terminates
cross-module cycles (which the paper's systems do not contain); such
cuts are labelled :class:`repro.core.treenode.NodeKind.CYCLE` instead of
``FEEDBACK`` since the re-entered module differs from the producing one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.permeability import PermeabilityMatrix
from repro.core.treenode import NodeKind, PropagationNode
from repro.model.errors import NotASystemSignalError
from repro.model.system import SystemModel

__all__ = ["BacktrackTree", "build_backtrack_tree", "build_all_backtrack_trees"]


@dataclass(frozen=True)
class BacktrackTree:
    """A backtrack tree rooted at one system output.

    Attributes
    ----------
    system_output:
        Name of the system output signal at the root.
    root:
        The root :class:`PropagationNode`.
    """

    system_output: str
    root: PropagationNode

    def render(self) -> str:
        """ASCII rendering of the tree (paper Fig. 4 / Fig. 10 analogue)."""
        return self.root.render()

    def n_nodes(self) -> int:
        """Total vertex count."""
        return self.root.n_nodes()

    def n_paths(self) -> int:
        """Number of root-to-leaf paths (the paper reports 22 for TOC2)."""
        return sum(1 for _ in self.root.leaves())


def _expand_output(
    system: SystemModel,
    matrix: PermeabilityMatrix,
    node: PropagationNode,
    producer_module: str,
    output_signal: str,
    outputs_on_path: frozenset[tuple[str, str]],
) -> None:
    """Apply steps A2–A3 to ``node``, which represents ``output_signal``
    as produced by ``producer_module``.

    ``outputs_on_path`` holds the (module, output signal) pairs already
    expanded between the root and this node, including this one.
    """
    spec = system.module(producer_module)
    for input_signal in spec.inputs:
        weight = matrix.get(producer_module, input_signal, output_signal)
        producer = system.producer_of(input_signal)
        if producer is None:
            # System input: a leaf of the tree (step A3, first case).
            kind = NodeKind.BOUNDARY
        elif (producer.module, input_signal) in outputs_on_path:
            # The producing output was already expanded on this path:
            # cut.  A same-module producer is the paper's double-line
            # feedback leaf; a different module means a wider cycle.
            kind = (
                NodeKind.FEEDBACK
                if producer.module == producer_module
                else NodeKind.CYCLE
            )
        else:
            kind = NodeKind.INTERNAL
        child = PropagationNode(
            signal=input_signal,
            kind=kind,
            module=None if producer is None else producer.module,
            pair_module=producer_module,
            input_signal=input_signal,
            output_signal=output_signal,
            permeability=weight,
        )
        node.children.append(child)
        if kind is NodeKind.INTERNAL:
            assert producer is not None
            _expand_output(
                system,
                matrix,
                child,
                producer_module=producer.module,
                output_signal=input_signal,
                outputs_on_path=outputs_on_path
                | {(producer.module, input_signal)},
            )
            if child.is_leaf:
                # A module declared with zero inputs cannot be
                # backtracked through; treat its output as a boundary
                # of the analysis.
                child.kind = NodeKind.BOUNDARY


def build_backtrack_tree(
    matrix: PermeabilityMatrix, system_output: str
) -> BacktrackTree:
    """Construct the backtrack tree for one system output (steps A1–A3).

    Parameters
    ----------
    matrix:
        A complete permeability matrix for the analysed system.
    system_output:
        Name of the system output signal to use as the root.

    Raises
    ------
    NotASystemSignalError
        If ``system_output`` is not one of the model's system outputs.
    MissingPermeabilityError
        If the matrix is incomplete.
    """
    system = matrix.system
    matrix.require_complete()
    if not system.is_system_output(system_output):
        raise NotASystemSignalError(system_output, "system output")
    producer = system.producer_of(system_output)
    assert producer is not None  # validated by the model
    root = PropagationNode(
        signal=system_output,
        kind=NodeKind.ROOT,
        module=producer.module,
    )
    _expand_output(
        system,
        matrix,
        root,
        producer_module=producer.module,
        output_signal=system_output,
        outputs_on_path=frozenset({(producer.module, system_output)}),
    )
    return BacktrackTree(system_output=system_output, root=root)


def build_all_backtrack_trees(matrix: PermeabilityMatrix) -> dict[str, BacktrackTree]:
    """Step A4: one backtrack tree per system output, keyed by signal name."""
    return {
        output: build_backtrack_tree(matrix, output)
        for output in matrix.system.system_outputs
    }
