"""Plain-text renderers for the paper's tables and trees.

The four result tables of Section 8 are reproduced in layout:

* :func:`render_table1` — estimated error permeability per I/O pair;
* :func:`render_table2` — relative permeability and error exposure per
  module (Eqs. 2–5);
* :func:`render_table3` — signal error exposures (Eq. 6);
* :func:`render_table4` — propagation paths ranked by weight.

All renderers return strings; nothing is printed directly, so the same
functions serve tests, benchmarks and the example scripts.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.exposure import ModuleExposure
from repro.core.paths import PropagationPath
from repro.core.permeability import ModuleMeasures, PermeabilityMatrix

__all__ = [
    "format_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Format a simple monospace table with a header rule.

    Column widths adapt to the longest cell; all values are rendered
    with ``str``.  Numeric alignment is not attempted — callers format
    their numbers before passing them in.
    """
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialised:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(value: float | None, precision: int = 3) -> str:
    """Format a measure value; ``None`` renders as the paper's em-dash."""
    if value is None:
        return "-"
    return f"{value:.{precision}f}"


def render_table1(matrix: PermeabilityMatrix, precision: int = 3) -> str:
    """Paper Table 1: estimated error permeability of every I/O pair.

    Rows are ordered module by module, inputs outermost — the same
    iteration order as :meth:`SystemModel.pair_index`.
    """
    rows = []
    for (module, input_signal, output_signal), estimate in matrix.items():
        spec = matrix.system.module(module)
        name = f"P^{module}_{spec.input_index(input_signal)},{spec.output_index(output_signal)}"
        counts = (
            f"{estimate.n_errors}/{estimate.n_injections}"
            if estimate.is_experimental
            else "-"
        )
        rows.append(
            (
                f"{input_signal} -> {output_signal}",
                name,
                _fmt(estimate.value, precision),
                counts,
            )
        )
    return format_table(
        headers=("Input -> Output", "Name", "Value", "n_err/n_inj"),
        rows=rows,
        title="Table 1. Estimated error permeability values of the input/output pairs",
    )


def render_table2(
    measures: Mapping[str, ModuleMeasures],
    exposures: Mapping[str, ModuleExposure],
    precision: int = 3,
) -> str:
    """Paper Table 2: Eq. 2/3 permeabilities and Eq. 4/5 exposures per module."""
    rows = []
    for module, measure in measures.items():
        exposure = exposures.get(module)
        rows.append(
            (
                module,
                _fmt(measure.relative_permeability, precision),
                _fmt(measure.nonweighted_relative_permeability, precision),
                _fmt(exposure.exposure if exposure else None, precision),
                _fmt(exposure.nonweighted_exposure, precision)
                if exposure and exposure.has_exposure
                else "-",
            )
        )
    return format_table(
        headers=("Module", "P^M", "P̄^M", "X^M", "X̄^M"),
        rows=rows,
        title=(
            "Table 2. Estimated relative permeability and error exposure "
            "values of the modules"
        ),
    )


def render_table3(
    signal_exposures: Mapping[str, float],
    precision: int = 3,
    include_zero: bool = True,
) -> str:
    """Paper Table 3: signal error exposures, highest first."""
    rows = [
        (signal, _fmt(value, precision))
        for signal, value in sorted(
            signal_exposures.items(), key=lambda item: (-item[1], item[0])
        )
        if include_zero or value > 0.0
    ]
    return format_table(
        headers=("Signal", "X^S"),
        rows=rows,
        title="Table 3. Estimated signal error exposures",
    )


def render_table4(
    paths: Sequence[PropagationPath],
    precision: int = 6,
    max_paths: int | None = None,
) -> str:
    """Paper Table 4: propagation paths ordered by total weight.

    Pass the ranked path list (see :func:`repro.core.paths.rank_paths`);
    ``max_paths`` truncates the listing.
    """
    rows = []
    for rank, path in enumerate(paths, start=1):
        if max_paths is not None and rank > max_paths:
            break
        rows.append(
            (
                rank,
                " -> ".join(path.signals),
                f"{path.weight:.{precision}f}",
                str(path.terminal_kind),
            )
        )
    return format_table(
        headers=("#", "Path", "Weight", "Terminal"),
        rows=rows,
        title="Table 4. Propagation paths ordered by their total weight",
    )
