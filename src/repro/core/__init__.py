"""The paper's primary contribution: error-permeability analysis.

Implements Sections 4–5: the permeability measures (Eqs. 1–3), the
permeability graph, the exposure measures (Eqs. 4–6), backtrack trees
(Output Error Tracing), trace trees (Input Error Tracing), propagation
paths with ranked weights, placement recommendations for error detection
and recovery mechanisms, and paper-style table renderers.
"""

from repro.core.analysis import PropagationAnalysis
from repro.core.backtrack import (
    BacktrackTree,
    build_all_backtrack_trees,
    build_backtrack_tree,
)
from repro.core.compare import (
    MatrixComparison,
    compare_matrices,
    spearman_rank_correlation,
)
from repro.core.dot import graph_to_dot, system_to_dot, tree_to_dot
from repro.core.exposure import (
    ModuleExposure,
    all_module_exposures,
    all_signal_exposures,
    module_exposure,
    rank_by_exposure,
    signal_exposure,
)
from repro.core.graph import ENVIRONMENT, PermeabilityArc, PermeabilityGraph
from repro.core.paths import (
    PathEdge,
    PropagationPath,
    nonzero_paths,
    paths_of_backtrack_tree,
    paths_of_trace_tree,
    rank_paths,
)
from repro.core.permeability import (
    MatrixDiff,
    ModuleMeasures,
    PairDelta,
    PermeabilityEstimate,
    PermeabilityMatrix,
)
from repro.core.placement import PlacementAdvisor, PlacementReport, SignalCandidate
from repro.core.report import (
    format_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.core.sensitivity import (
    PairSensitivity,
    SensitivityReport,
    output_reach,
    output_sensitivities,
    what_if,
)
from repro.core.stats import wilson_half_width, wilson_interval
from repro.core.trace import TraceTree, build_all_trace_trees, build_trace_tree
from repro.core.treenode import NodeKind, PropagationNode

__all__ = [
    "ENVIRONMENT",
    "BacktrackTree",
    "MatrixComparison",
    "ModuleExposure",
    "MatrixDiff",
    "ModuleMeasures",
    "NodeKind",
    "PathEdge",
    "PermeabilityArc",
    "PairDelta",
    "PermeabilityEstimate",
    "PermeabilityGraph",
    "PermeabilityMatrix",
    "PairSensitivity",
    "PlacementAdvisor",
    "PlacementReport",
    "PropagationAnalysis",
    "PropagationNode",
    "PropagationPath",
    "SignalCandidate",
    "TraceTree",
    "all_module_exposures",
    "all_signal_exposures",
    "build_all_backtrack_trees",
    "build_all_trace_trees",
    "build_backtrack_tree",
    "build_trace_tree",
    "compare_matrices",
    "format_table",
    "graph_to_dot",
    "module_exposure",
    "nonzero_paths",
    "output_reach",
    "output_sensitivities",
    "paths_of_backtrack_tree",
    "paths_of_trace_tree",
    "rank_by_exposure",
    "rank_paths",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "SensitivityReport",
    "what_if",
    "signal_exposure",
    "spearman_rank_correlation",
    "system_to_dot",
    "tree_to_dot",
    "wilson_half_width",
    "wilson_interval",
]
