"""EDM/ERM placement recommendations (Section 5, observations OB1–OB6).

The paper's rules of thumb:

* "The higher the error exposure values of a module, the higher the
  probability that it will be subjected to errors propagating through
  the system ... it may be more cost effective to place **EDM's** in
  those modules."  The analogous reasoning holds for signal exposure.
* "The higher the error permeability values of a module, the higher the
  probability of subsequent modules being subjected to propagating
  errors ... it may be more cost effective to place **ERM's** in those
  modules."

The observations of Section 8 refine this into the heuristics
implemented here:

* OB1 — rank modules by non-weighted exposure; input-only modules have
  no exposure value.
* OB3 — a high-permeability pair guarding a low-exposure signal is not
  cost effective; signal candidates are gated on exposure.
* OB4 — select signals with the highest signal error exposure that lie
  on non-zero propagation paths; add the internal signal most likely to
  be affected by errors on the system inputs (from the trace trees);
  exclude signals that no internal error reaches (zero exposure) and
  hardware-boundary outputs.
* OB5 — signals appearing on *every* non-zero propagation path are
  bottleneck candidates for ERMs; the module with the highest relative
  permeability is a strong recovery candidate.
* OB6 — modules receiving system inputs form barriers against errors
  entering the system and are worth recovery mechanisms regardless of
  their relative permeability rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.backtrack import build_all_backtrack_trees
from repro.core.exposure import (
    ModuleExposure,
    all_signal_exposures,
    rank_by_exposure,
)
from repro.core.graph import PermeabilityGraph
from repro.core.paths import (
    PropagationPath,
    nonzero_paths,
    paths_of_backtrack_tree,
    paths_of_trace_tree,
)
from repro.core.permeability import ModuleMeasures, PermeabilityMatrix
from repro.core.trace import build_all_trace_trees

__all__ = ["SignalCandidate", "PlacementReport", "PlacementAdvisor"]


@dataclass(frozen=True)
class SignalCandidate:
    """A signal recommended for a detection or recovery mechanism."""

    signal: str
    exposure: float
    on_nonzero_path: bool
    on_all_nonzero_paths: bool
    reach_probability: float
    rationale: str

    def __str__(self) -> str:
        return f"{self.signal} (X^S={self.exposure:.3f}) - {self.rationale}"


@dataclass
class PlacementReport:
    """Aggregated placement recommendations for one analysed system."""

    #: Modules ranked as EDM hosts (highest non-weighted exposure first;
    #: modules without exposure values are excluded per OB1).
    edm_modules: list[ModuleExposure] = field(default_factory=list)
    #: Modules ranked as ERM hosts (highest relative permeability first).
    erm_modules: list[ModuleMeasures] = field(default_factory=list)
    #: Signals recommended for EDMs (high exposure, on non-zero paths).
    edm_signals: list[SignalCandidate] = field(default_factory=list)
    #: Bottleneck signals on every non-zero path (strong ERM hosts, OB5).
    bottleneck_signals: list[SignalCandidate] = field(default_factory=list)
    #: Input-barrier modules (consume system inputs, OB6).
    barrier_modules: list[str] = field(default_factory=list)
    #: Signals excluded from recommendation, with the reason.
    excluded_signals: dict[str, str] = field(default_factory=dict)
    #: Free-form observation lines mirroring the paper's OB table.
    observations: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = ["Placement recommendations", "=" * 25]
        lines.append("EDM module candidates (by non-weighted exposure):")
        for item in self.edm_modules:
            lines.append(
                f"  {item.module}: X̄={item.nonweighted_exposure:.3f} "
                f"(X={item.exposure:.3f}, arcs={item.n_incoming_arcs})"
            )
        lines.append("ERM module candidates (by relative permeability):")
        for measures in self.erm_modules:
            lines.append(
                f"  {measures.module}: P={measures.relative_permeability:.3f} "
                f"(P̄={measures.nonweighted_relative_permeability:.3f})"
            )
        lines.append("EDM signal candidates:")
        for candidate in self.edm_signals:
            lines.append(f"  {candidate}")
        lines.append("Bottleneck signals (on every non-zero path):")
        for candidate in self.bottleneck_signals:
            lines.append(f"  {candidate}")
        lines.append(
            "Input-barrier modules: " + (", ".join(self.barrier_modules) or "(none)")
        )
        if self.excluded_signals:
            lines.append("Excluded signals:")
            for signal, reason in sorted(self.excluded_signals.items()):
                lines.append(f"  {signal}: {reason}")
        lines.append("Observations:")
        for observation in self.observations:
            lines.append(f"  - {observation}")
        return "\n".join(lines)


class PlacementAdvisor:
    """Derives a :class:`PlacementReport` from a complete permeability matrix."""

    def __init__(
        self,
        matrix: PermeabilityMatrix,
        signal_candidate_count: int = 3,
        exposure_threshold: float = 0.0,
    ) -> None:
        """
        Parameters
        ----------
        matrix:
            Complete permeability matrix of the analysed system.
        signal_candidate_count:
            How many top-exposure signals to shortlist for EDMs (the
            paper's OB4 selects three) before adding the most
            input-vulnerable signal.
        exposure_threshold:
            Signals whose exposure does not exceed this value are
            excluded (OB4 rejects signals "independent of all signals").
        """
        matrix.require_complete()
        self._matrix = matrix
        self._system = matrix.system
        self._graph = PermeabilityGraph(matrix)
        self._signal_candidate_count = signal_candidate_count
        self._exposure_threshold = exposure_threshold

    # ------------------------------------------------------------------
    # Sub-analyses
    # ------------------------------------------------------------------

    def _nonzero_backtrack_paths(self) -> list[PropagationPath]:
        trees = build_all_backtrack_trees(self._matrix)
        paths: list[PropagationPath] = []
        for tree in trees.values():
            paths.extend(paths_of_backtrack_tree(tree))
        return nonzero_paths(paths)

    def _signal_reach_probabilities(self) -> dict[str, float]:
        """For every signal: the maximum probability (over all trace
        trees and paths) that an error on *some* system input reaches it.

        This drives OB4's "signal most likely to be affected by errors
        in system input" selection (``pulscnt`` in the paper).
        """
        reach: dict[str, float] = {}
        for tree in build_all_trace_trees(self._matrix).values():
            for path in paths_of_trace_tree(tree):
                weight = 1.0
                # Walk prefix products: the probability of reaching each
                # intermediate signal along the path.
                for edge, signal in zip(path.edges, path.signals[1:]):
                    weight *= edge.permeability
                    if weight > reach.get(signal, 0.0):
                        reach[signal] = weight
        return reach

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------

    def report(self) -> PlacementReport:
        """Compute the full placement recommendation report."""
        report = PlacementReport()

        exposures = rank_by_exposure(self._graph, nonweighted=True)
        report.edm_modules = [item for item in exposures if item.has_exposure]
        no_exposure = [item.module for item in exposures if not item.has_exposure]
        if no_exposure:
            report.observations.append(
                f"Modules {', '.join(sorted(no_exposure))} have no error "
                "exposure values as they only receive system input signals "
                "(OB1); their exposure depends on the environment's error "
                "probabilities."
            )
        if report.edm_modules:
            top = report.edm_modules[0]
            report.observations.append(
                f"Module {top.module} has the highest non-weighted error "
                f"exposure (X̄={top.nonweighted_exposure:.3f}) and is a "
                "prime EDM candidate (OB1)."
            )

        report.erm_modules = self._matrix.rank_by_relative_permeability()
        if report.erm_modules:
            top_perm = report.erm_modules[0]
            report.observations.append(
                f"Module {top_perm.module} has the highest relative "
                f"permeability (P={top_perm.relative_permeability:.3f}); "
                "recovery mechanisms there keep incoming errors from "
                "propagating onwards (OB5)."
            )

        trees = list(build_all_backtrack_trees(self._matrix).values())
        exposures_by_signal = all_signal_exposures(
            trees, signals=self._system.signal_names()
        )
        paths = self._nonzero_backtrack_paths()
        signals_on_paths: set[str] = set()
        for path in paths:
            signals_on_paths.update(path.signals)
        signals_on_all_paths = (
            set.intersection(*(set(p.signals) for p in paths)) if paths else set()
        )
        reach = self._signal_reach_probabilities()

        candidates: list[SignalCandidate] = []
        for signal, exposure_value in exposures_by_signal.items():
            if self._system.is_system_output(signal):
                report.excluded_signals[signal] = (
                    "system output register; errors here originate upstream (OB4)"
                )
                continue
            if self._system.is_system_input(signal):
                report.excluded_signals[signal] = (
                    "system input; exposure depends on the environment (OB1)"
                )
                continue
            if exposure_value <= self._exposure_threshold and not reach.get(signal):
                report.excluded_signals[signal] = (
                    "independent of other signals; errors will not show up "
                    "here unless they originate here (OB4)"
                )
                continue
            candidates.append(
                SignalCandidate(
                    signal=signal,
                    exposure=exposure_value,
                    on_nonzero_path=signal in signals_on_paths,
                    on_all_nonzero_paths=signal in signals_on_all_paths,
                    reach_probability=reach.get(signal, 0.0),
                    rationale="high signal error exposure"
                    if exposure_value > self._exposure_threshold
                    else "most likely affected by errors on system inputs",
                )
            )

        candidates.sort(key=lambda c: (-c.exposure, c.signal))
        shortlist = candidates[: self._signal_candidate_count]
        # OB4's extra pick: the internal signal most reachable from the
        # system inputs, if not already shortlisted.
        by_reach = sorted(candidates, key=lambda c: -c.reach_probability)
        for candidate in by_reach:
            if candidate.reach_probability <= 0.0:
                break
            if candidate.signal not in {c.signal for c in shortlist}:
                shortlist.append(
                    SignalCandidate(
                        signal=candidate.signal,
                        exposure=candidate.exposure,
                        on_nonzero_path=candidate.on_nonzero_path,
                        on_all_nonzero_paths=candidate.on_all_nonzero_paths,
                        reach_probability=candidate.reach_probability,
                        rationale="most likely affected by errors on system inputs",
                    )
                )
            break
        report.edm_signals = shortlist

        report.bottleneck_signals = [
            candidate
            for candidate in candidates
            if candidate.on_all_nonzero_paths
        ]
        if report.bottleneck_signals:
            names = ", ".join(c.signal for c in report.bottleneck_signals)
            report.observations.append(
                f"Signals {names} are part of all non-zero propagation "
                "paths; eliminating errors there shields the system output "
                "(OB5)."
            )

        barrier = sorted(
            {
                port.module
                for signal in self._system.system_inputs
                for port in self._system.consumers_of(signal)
            }
        )
        report.barrier_modules = barrier
        if barrier:
            report.observations.append(
                f"Modules {', '.join(barrier)} receive external data "
                "sources; recovery mechanisms there form a barrier against "
                "errors entering the system (OB6)."
            )
        return report
