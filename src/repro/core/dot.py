"""Graphviz DOT exporters for permeability graphs and propagation trees.

The paper presents its structures graphically (Figs. 3–5 and 9–12).
These functions emit DOT source so the same figures can be rendered with
any Graphviz installation; no external dependency is required to
*generate* the text.
"""

from __future__ import annotations

from repro.core.backtrack import BacktrackTree
from repro.core.graph import ENVIRONMENT, PermeabilityGraph
from repro.core.trace import TraceTree
from repro.core.treenode import NodeKind, PropagationNode
from repro.model.system import SystemModel

__all__ = ["graph_to_dot", "tree_to_dot", "system_to_dot"]


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def system_to_dot(system: SystemModel) -> str:
    """The module/signal topology (Fig. 2 / Fig. 8 analogue).

    Modules become boxes; each signal becomes one labelled edge per
    consumer.  System inputs/outputs appear as plaintext terminals.
    """
    lines = [f"digraph {_quote(system.name)} {{", "  rankdir=LR;"]
    lines.append("  node [shape=box];")
    for module in system.module_names():
        lines.append(f"  {_quote(module)};")
    lines.append("  node [shape=plaintext];")
    for signal in system.system_inputs:
        lines.append(f"  {_quote('in:' + signal)} [label={_quote(signal)}];")
    for signal in system.system_outputs:
        lines.append(f"  {_quote('out:' + signal)} [label={_quote(signal)}];")
    for connection in system.connections():
        lines.append(
            f"  {_quote(connection.producer.module)} -> "
            f"{_quote(connection.consumer.module)} "
            f"[label={_quote(connection.signal)}];"
        )
    for link in system.external_input_links():
        lines.append(
            f"  {_quote('in:' + link.signal)} -> {_quote(link.consumer.module)};"
        )
    for link in system.external_output_links():
        lines.append(
            f"  {_quote(link.producer.module)} -> {_quote('out:' + link.signal)};"
        )
    lines.append("}")
    return "\n".join(lines)


def graph_to_dot(graph: PermeabilityGraph, include_zero: bool = False) -> str:
    """The permeability graph with weighted arcs (Fig. 3 / Fig. 9 analogue).

    ``include_zero=False`` matches the paper's convention of omitting
    zero-weight arcs.
    """
    lines = [f"digraph {_quote(graph.system.name + '-permeability')} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  node [shape=circle];")
    for node in graph.nodes():
        lines.append(f"  {_quote(node)};")
    lines.append(f"  {_quote(ENVIRONMENT)} [shape=doublecircle, label=\"env\"];")
    for arc in graph.arcs(include_zero=include_zero):
        label = f"{arc.input_signal}->{arc.output_signal}: {arc.weight:.3f}"
        style = ", style=dashed" if arc.is_self_loop else ""
        lines.append(
            f"  {_quote(arc.producer)} -> {_quote(arc.consumer)} "
            f"[label={_quote(label)}{style}];"
        )
    lines.append("}")
    return "\n".join(lines)


def _tree_nodes_to_dot(
    node: PropagationNode, lines: list[str], counter: list[int]
) -> str:
    node_id = f"n{counter[0]}"
    counter[0] += 1
    shape = {
        NodeKind.ROOT: "doubleoctagon",
        NodeKind.BOUNDARY: "box",
        NodeKind.FEEDBACK: "diamond",
        NodeKind.CYCLE: "triangle",
    }.get(node.kind, "ellipse")
    lines.append(f"  {node_id} [label={_quote(node.signal)}, shape={shape}];")
    for child in node.children:
        child_id = _tree_nodes_to_dot(child, lines, counter)
        # Feedback edges use the paper's "double line" notation, which
        # DOT approximates with a bold edge.
        style = ", style=bold" if child.kind is NodeKind.FEEDBACK else ""
        lines.append(
            f"  {node_id} -> {child_id} "
            f"[label={_quote(f'{child.permeability:.3f}')}{style}];"
        )
    return node_id


def tree_to_dot(tree: BacktrackTree | TraceTree) -> str:
    """A backtrack or trace tree (Fig. 4/5 and 10–12 analogue)."""
    if isinstance(tree, BacktrackTree):
        name = f"backtrack-{tree.system_output}"
    else:
        name = f"trace-{tree.system_input}"
    lines = [f"digraph {_quote(name)} {{"]
    counter = [0]
    _tree_nodes_to_dot(tree.root, lines, counter)
    lines.append("}")
    return "\n".join(lines)
