"""Error permeability (Eq. 1) and the module-level measures (Eqs. 2–3).

The basic measure of the paper, *error permeability*, is defined for
each (input *i*, output *k*) pair of a module *M* as the conditional
probability

.. math::

    0 \\le P^M_{i,k} = \\Pr\\{\\text{err in out } k \\mid
                           \\text{err in in } i\\} \\le 1

Upon it two module-level measures are built:

* **relative permeability** (Eq. 2):
  :math:`P^M = \\frac{1}{m\\,n} \\sum_i \\sum_k P^M_{i,k}`
* **non-weighted relative permeability** (Eq. 3):
  :math:`\\bar P^M = \\sum_i \\sum_k P^M_{i,k}`

Both are *relative ordering* devices: Eq. 2 normalises by the number of
pairs, Eq. 3 deliberately "punishes" hub modules with many inputs and
outputs (Section 4.1).

:class:`PermeabilityMatrix` stores one value per pair of a
:class:`~repro.model.system.SystemModel`, together with optional sample
counts when the value was experimentally estimated (Section 6:
:math:`\\hat P_{i,k} = n_{err} / n_{inj}`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.core.stats import wilson_interval
from repro.model.errors import (
    InvalidProbabilityError,
    MissingPermeabilityError,
    UnknownModuleError,
)
from repro.model.system import SystemModel

__all__ = [
    "PermeabilityEstimate",
    "ModuleMeasures",
    "PairDelta",
    "MatrixDiff",
    "PermeabilityMatrix",
]

#: Key addressing one input/output pair: (module, input signal, output signal).
PairKey = tuple[str, str, str]


@dataclass(frozen=True)
class PermeabilityEstimate:
    """A single permeability value, optionally with its sample counts.

    ``n_injections``/``n_errors`` are present when the value came from a
    fault-injection campaign (Section 6); analytically assigned values
    carry ``None`` counts.
    """

    value: float
    n_injections: int | None = None
    n_errors: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise InvalidProbabilityError("permeability", self.value)
        if (self.n_injections is None) != (self.n_errors is None):
            raise ValueError("n_injections and n_errors must be set together")
        if self.n_injections is not None:
            if self.n_injections <= 0:
                raise ValueError("n_injections must be positive")
            assert self.n_errors is not None
            if not 0 <= self.n_errors <= self.n_injections:
                raise ValueError("n_errors must lie in [0, n_injections]")

    @classmethod
    def from_counts(cls, n_errors: int, n_injections: int) -> "PermeabilityEstimate":
        """Build the paper's point estimate ``n_err / n_inj``."""
        if n_injections <= 0:
            raise ValueError("n_injections must be positive")
        return cls(
            value=n_errors / n_injections,
            n_injections=n_injections,
            n_errors=n_errors,
        )

    @property
    def is_experimental(self) -> bool:
        """Whether the value carries fault-injection sample counts."""
        return self.n_injections is not None

    def wilson_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score confidence interval for the underlying probability.

        An extension beyond the paper (which reports point estimates
        only); useful for judging whether two pairs' permeabilities are
        distinguishable at the campaign's sample size.
        """
        if not self.is_experimental:
            return (self.value, self.value)
        assert self.n_injections is not None
        assert self.n_errors is not None
        return wilson_interval(self.n_errors, self.n_injections, z)


@dataclass(frozen=True)
class ModuleMeasures:
    """The two module-level permeability measures of Eqs. 2–3."""

    module: str
    n_inputs: int
    n_outputs: int
    relative_permeability: float
    nonweighted_relative_permeability: float

    @property
    def n_pairs(self) -> int:
        return self.n_inputs * self.n_outputs


@dataclass(frozen=True)
class PairDelta:
    """One pair's measured-vs-reference permeability difference."""

    module: str
    input_signal: str
    output_signal: str
    measured: float
    reference: float

    @property
    def delta(self) -> float:
        """Measured minus reference."""
        return self.measured - self.reference


@dataclass(frozen=True)
class MatrixDiff:
    """Pairwise comparison of two permeability matrices.

    Typically the *measured* matrix is a campaign estimate (e.g. the
    live fold of :class:`repro.obs.propagation.PropagationObservations`)
    and the *reference* an analytical assignment or an earlier
    campaign; the diff answers "where does measurement disagree with
    the model, and by how much".
    """

    deltas: tuple[PairDelta, ...]

    @property
    def max_abs_delta(self) -> float:
        """Largest absolute per-pair difference (0.0 when empty)."""
        return max((abs(d.delta) for d in self.deltas), default=0.0)

    @property
    def mean_abs_delta(self) -> float:
        if not self.deltas:
            return 0.0
        return sum(abs(d.delta) for d in self.deltas) / len(self.deltas)

    def exceeding(self, atol: float) -> tuple[PairDelta, ...]:
        """Pairs differing by more than ``atol``, largest gap first."""
        hits = [d for d in self.deltas if abs(d.delta) > atol]
        hits.sort(key=lambda d: -abs(d.delta))
        return tuple(hits)

    def agrees(self, atol: float = 1e-12) -> bool:
        """Whether every compared pair matches within ``atol``."""
        return self.max_abs_delta <= atol

    def render(self, top: int = 10) -> str:
        """Text table of the largest disagreements."""
        from repro.core.report import format_table

        ranked = sorted(self.deltas, key=lambda d: -abs(d.delta))[:top]
        rows = [
            (
                f"{d.module}.{d.input_signal} -> {d.output_signal}",
                f"{d.measured:.3f}",
                f"{d.reference:.3f}",
                f"{d.delta:+.3f}",
            )
            for d in ranked
        ]
        return format_table(
            headers=("Pair", "measured", "reference", "delta"),
            rows=rows,
            title=(
                f"Permeability diff ({len(self.deltas)} pairs, "
                f"max |delta| {self.max_abs_delta:.3f})"
            ),
        )


class PermeabilityMatrix:
    """Per-pair permeability values for one system model.

    The matrix is *sparse during construction* and complete once every
    pair of every module has a value; most analyses require completeness
    and raise :class:`MissingPermeabilityError` otherwise (missing
    entries are never silently treated as zero — Eq. 1 distinguishes a
    measured 0 from an unmeasured pair).
    """

    def __init__(self, system: SystemModel) -> None:
        self._system = system
        self._values: dict[PairKey, PermeabilityEstimate] = {}
        self._valid_pairs: set[PairKey] = set(system.pair_index())

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    @property
    def system(self) -> SystemModel:
        """The system model this matrix is bound to."""
        return self._system

    def _check_pair(self, module: str, input_signal: str, output_signal: str) -> PairKey:
        key = (module, input_signal, output_signal)
        if key not in self._valid_pairs:
            raise MissingPermeabilityError(module, input_signal, output_signal)
        return key

    def set(
        self,
        module: str,
        input_signal: str,
        output_signal: str,
        value: float | PermeabilityEstimate,
    ) -> None:
        """Assign the permeability of one input/output pair."""
        key = self._check_pair(module, input_signal, output_signal)
        if not isinstance(value, PermeabilityEstimate):
            value = PermeabilityEstimate(value=float(value))
        self._values[key] = value

    def set_counts(
        self,
        module: str,
        input_signal: str,
        output_signal: str,
        n_errors: int,
        n_injections: int,
    ) -> None:
        """Assign a pair from raw campaign counts (:math:`n_{err}/n_{inj}`)."""
        key = self._check_pair(module, input_signal, output_signal)
        self._values[key] = PermeabilityEstimate.from_counts(n_errors, n_injections)

    def update(self, values: Mapping[PairKey, float]) -> None:
        """Bulk-assign plain float values keyed by pair."""
        for (module, input_signal, output_signal), value in values.items():
            self.set(module, input_signal, output_signal, value)

    @classmethod
    def from_dict(
        cls, system: SystemModel, values: Mapping[PairKey, float]
    ) -> "PermeabilityMatrix":
        """Build a matrix from a plain ``{(module, in, out): value}`` dict."""
        matrix = cls(system)
        matrix.update(values)
        return matrix

    @classmethod
    def pooled(
        cls, matrices: "Sequence[PermeabilityMatrix]"
    ) -> "PermeabilityMatrix":
        """Pool several experimental estimates of the same system.

        Per pair, the injection and error counts are summed — the
        estimator for the union of the campaigns.  Useful for
        incremental estimation: run a cheap grid first, then pool in
        more injections where the Wilson intervals are still too wide.
        All inputs must be complete and experimental (built from
        counts); analytically assigned values cannot be pooled.
        """
        if not matrices:
            raise ValueError("at least one matrix is required")
        system = matrices[0].system
        for matrix in matrices[1:]:
            if set(matrix.system.pair_index()) != set(system.pair_index()):
                raise ValueError("matrices must describe the same system")
        pooled = cls(system)
        for key in system.pair_index():
            n_errors = 0
            n_injections = 0
            for matrix in matrices:
                estimate = matrix.estimate(*key)
                if not estimate.is_experimental:
                    module, input_signal, output_signal = key
                    raise ValueError(
                        "cannot pool analytic value for pair "
                        f"{module}: {input_signal} -> {output_signal}"
                    )
                assert estimate.n_errors is not None
                assert estimate.n_injections is not None
                n_errors += estimate.n_errors
                n_injections += estimate.n_injections
            pooled.set_counts(*key, n_errors=n_errors, n_injections=n_injections)
        return pooled

    @classmethod
    def uniform(cls, system: SystemModel, value: float = 1.0) -> "PermeabilityMatrix":
        """A complete matrix with every pair set to the same value.

        Useful as a structural worst case (``value=1.0`` gives pure
        reachability analysis) and in tests.
        """
        matrix = cls(system)
        for module, input_signal, output_signal in system.pair_index():
            matrix.set(module, input_signal, output_signal, value)
        return matrix

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, module: str, input_signal: str, output_signal: str) -> float:
        """The permeability of one pair; raises if not set."""
        return self.estimate(module, input_signal, output_signal).value

    def estimate(
        self, module: str, input_signal: str, output_signal: str
    ) -> PermeabilityEstimate:
        """The full :class:`PermeabilityEstimate` of one pair; raises if not set."""
        key = self._check_pair(module, input_signal, output_signal)
        try:
            return self._values[key]
        except KeyError:
            raise MissingPermeabilityError(module, input_signal, output_signal) from None

    def get_or_none(
        self, module: str, input_signal: str, output_signal: str
    ) -> float | None:
        """The permeability of one pair, or ``None`` if not yet set."""
        key = self._check_pair(module, input_signal, output_signal)
        entry = self._values.get(key)
        return None if entry is None else entry.value

    def __contains__(self, key: PairKey) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterator[tuple[PairKey, PermeabilityEstimate]]:
        """All assigned (pair, estimate) entries in system pair order."""
        for key in self._system.pair_index():
            if key in self._values:
                yield key, self._values[key]

    def is_complete(self) -> bool:
        """Whether every pair of every module has a value."""
        return len(self._values) == len(self._valid_pairs)

    def missing_pairs(self) -> tuple[PairKey, ...]:
        """Pairs without a value, in system pair order."""
        return tuple(
            key for key in self._system.pair_index() if key not in self._values
        )

    def require_complete(self) -> None:
        """Raise :class:`MissingPermeabilityError` for the first missing pair."""
        missing = self.missing_pairs()
        if missing:
            module, input_signal, output_signal = missing[0]
            raise MissingPermeabilityError(module, input_signal, output_signal)

    # ------------------------------------------------------------------
    # Module measures (Eqs. 2 and 3)
    # ------------------------------------------------------------------

    def module_pair_values(self, module: str) -> dict[tuple[str, str], float]:
        """All pair values of one module keyed by (input, output) signal."""
        spec = self._system.module(module)
        return {
            (i, k): self.get(module, i, k) for i, k in spec.pairs()
        }

    def relative_permeability(self, module: str) -> float:
        """Eq. 2: mean permeability over the module's *m*·*n* pairs."""
        spec = self._system.module(module)
        if spec.n_pairs == 0:
            return 0.0
        total = sum(self.get(module, i, k) for i, k in spec.pairs())
        return total / spec.n_pairs

    def nonweighted_relative_permeability(self, module: str) -> float:
        """Eq. 3: sum of the module's pair permeabilities (bounded by *m*·*n*)."""
        spec = self._system.module(module)
        return sum(self.get(module, i, k) for i, k in spec.pairs())

    def module_measures(self, module: str) -> ModuleMeasures:
        """Both Eq. 2 and Eq. 3 for one module."""
        spec = self._system.module(module)
        if module not in self._system.modules:
            raise UnknownModuleError(module)
        return ModuleMeasures(
            module=module,
            n_inputs=spec.n_inputs,
            n_outputs=spec.n_outputs,
            relative_permeability=self.relative_permeability(module),
            nonweighted_relative_permeability=self.nonweighted_relative_permeability(
                module
            ),
        )

    def all_module_measures(self) -> dict[str, ModuleMeasures]:
        """Eq. 2/3 measures for every module, keyed by module name."""
        return {name: self.module_measures(name) for name in self._system.module_names()}

    def rank_by_relative_permeability(self) -> list[ModuleMeasures]:
        """Modules ordered by Eq. 2, most permeable first."""
        measures = self.all_module_measures().values()
        return sorted(measures, key=lambda m: -m.relative_permeability)

    def rank_by_nonweighted_permeability(self) -> list[ModuleMeasures]:
        """Modules ordered by Eq. 3, most permeable first."""
        measures = self.all_module_measures().values()
        return sorted(measures, key=lambda m: -m.nonweighted_relative_permeability)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def diff(self, reference: "PermeabilityMatrix") -> MatrixDiff:
        """Per-pair comparison of ``self`` (measured) against a reference.

        Both matrices must describe the same system pair set; pairs are
        compared where *both* carry a value, so a sparse mid-campaign
        measured matrix can be diffed against a complete analytical one
        without inventing zeros for unmeasured pairs.
        """
        if self._valid_pairs != reference._valid_pairs:
            raise ValueError(
                "cannot diff matrices of different systems: "
                f"{self._system.name!r} vs {reference._system.name!r}"
            )
        deltas = []
        for key in self._system.pair_index():
            if key not in self._values or key not in reference._values:
                continue
            module, input_signal, output_signal = key
            deltas.append(
                PairDelta(
                    module=module,
                    input_signal=input_signal,
                    output_signal=output_signal,
                    measured=self._values[key].value,
                    reference=reference._values[key].value,
                )
            )
        return MatrixDiff(deltas=tuple(deltas))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_jsonable(self) -> dict:
        """A JSON-serialisable representation of the assigned entries."""
        entries = []
        for (module, input_signal, output_signal), estimate in self.items():
            entries.append(
                {
                    "module": module,
                    "input": input_signal,
                    "output": output_signal,
                    "value": estimate.value,
                    "n_injections": estimate.n_injections,
                    "n_errors": estimate.n_errors,
                }
            )
        return {"system": self._system.name, "entries": entries}

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise the assigned entries to a JSON string."""
        return json.dumps(self.to_jsonable(), indent=indent)

    @classmethod
    def from_jsonable(cls, system: SystemModel, data: Mapping) -> "PermeabilityMatrix":
        """Rebuild a matrix from :meth:`to_jsonable` output."""
        matrix = cls(system)
        for entry in data["entries"]:
            if entry.get("n_injections") is not None:
                matrix.set_counts(
                    entry["module"],
                    entry["input"],
                    entry["output"],
                    n_errors=entry["n_errors"],
                    n_injections=entry["n_injections"],
                )
            else:
                matrix.set(
                    entry["module"], entry["input"], entry["output"], entry["value"]
                )
        return matrix

    @classmethod
    def from_json(cls, system: SystemModel, text: str) -> "PermeabilityMatrix":
        """Rebuild a matrix from a JSON string produced by :meth:`to_json`."""
        return cls.from_jsonable(system, json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PermeabilityMatrix {self._system.name!r} "
            f"{len(self._values)}/{len(self._valid_pairs)} pairs>"
        )
