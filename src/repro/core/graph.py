"""Permeability graph construction and queries (Section 4.2, Fig. 3/9).

Once all pair permeabilities are known, the paper builds a *permeability
graph*: "Each node in the graph corresponds to a particular module and
has a number of incoming arcs and a number of outgoing arcs.  Each arc
has a weight associated with it, namely the error permeability value.
Hence, there may be more arcs between two nodes than there are signals
between the corresponding modules (each input/output pair of a module
has an error permeability value)."

Concretely, for every module *A*, every (input *i*, output *k*) pair of
*A*, and every consumer *B* of the signal produced at output *k*, the
graph contains an arc *A → B* with weight :math:`P^A_{i,k}`.  If the
output signal is a system output, the arc instead leads to the
environment pseudo-node.  Self-loops arise from module feedback.

Arcs with zero weight may be omitted per the paper; here they are kept
(so exposure denominators and path enumeration stay exact) and filtering
is offered at query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.permeability import PermeabilityMatrix
from repro.model.errors import UnknownModuleError
from repro.model.system import SystemModel

__all__ = ["PermeabilityArc", "PermeabilityGraph", "ENVIRONMENT"]

#: Pseudo-node name representing the external environment (system
#: boundary).  Arcs whose carried signal is a system output point here.
ENVIRONMENT = "<environment>"


@dataclass(frozen=True, order=True)
class PermeabilityArc:
    """One weighted arc of the permeability graph.

    Attributes
    ----------
    producer:
        Module whose input/output pair the arc represents.
    consumer:
        Module consuming the carried signal, or :data:`ENVIRONMENT`.
    input_signal:
        Input signal of the producer's pair (the error source side).
    output_signal:
        Output signal of the producer's pair (the signal the arc carries).
    weight:
        The pair's error permeability :math:`P^{producer}_{i,k}`.
    """

    producer: str
    consumer: str
    input_signal: str
    output_signal: str
    weight: float

    @property
    def is_self_loop(self) -> bool:
        """Whether the arc loops back into the producing module (feedback)."""
        return self.producer == self.consumer

    @property
    def to_environment(self) -> bool:
        """Whether the arc crosses the system boundary."""
        return self.consumer == ENVIRONMENT

    def label(self) -> str:
        """Paper-style arc label, e.g. ``P^CALC_2,1``."""
        return f"P^{self.producer}[{self.input_signal}->{self.output_signal}]"

    def __str__(self) -> str:
        return (
            f"{self.producer} -> {self.consumer} "
            f"[{self.input_signal} => {self.output_signal}] w={self.weight:.3f}"
        )


class PermeabilityGraph:
    """The weighted module-interaction graph of Section 4.2.

    Construction requires a *complete* permeability matrix; the graph is
    immutable afterwards.
    """

    def __init__(self, matrix: PermeabilityMatrix) -> None:
        matrix.require_complete()
        self._matrix = matrix
        self._system = matrix.system
        self._arcs: list[PermeabilityArc] = []
        self._incoming: dict[str, list[PermeabilityArc]] = {
            name: [] for name in self._system.module_names()
        }
        self._incoming[ENVIRONMENT] = []
        self._outgoing: dict[str, list[PermeabilityArc]] = {
            name: [] for name in self._system.module_names()
        }
        self._build()

    def _build(self) -> None:
        system = self._system
        for module_name in system.module_names():
            spec = system.module(module_name)
            for input_signal, output_signal in spec.pairs():
                weight = self._matrix.get(module_name, input_signal, output_signal)
                consumers = [
                    port.module for port in system.consumers_of(output_signal)
                ]
                if system.is_system_output(output_signal):
                    consumers.append(ENVIRONMENT)
                for consumer in consumers:
                    arc = PermeabilityArc(
                        producer=module_name,
                        consumer=consumer,
                        input_signal=input_signal,
                        output_signal=output_signal,
                        weight=weight,
                    )
                    self._arcs.append(arc)
                    self._incoming[consumer].append(arc)
                    self._outgoing[module_name].append(arc)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def system(self) -> SystemModel:
        """The underlying system model."""
        return self._system

    @property
    def matrix(self) -> PermeabilityMatrix:
        """The permeability matrix the graph was built from."""
        return self._matrix

    def nodes(self) -> tuple[str, ...]:
        """Module names (the environment pseudo-node is not included)."""
        return self._system.module_names()

    def arcs(self, include_zero: bool = True) -> Iterator[PermeabilityArc]:
        """All arcs; pass ``include_zero=False`` to drop zero-weight arcs.

        The paper notes "arcs with a zero weight (representing
        non-permeability from an input to an output) can be omitted".
        """
        for arc in self._arcs:
            if include_zero or arc.weight > 0.0:
                yield arc

    def incoming_arcs(
        self, module: str, include_zero: bool = True, include_self_loops: bool = True
    ) -> tuple[PermeabilityArc, ...]:
        """Arcs pointing into ``module`` (basis of Eqs. 4–5)."""
        if module not in self._incoming:
            raise UnknownModuleError(module)
        return tuple(
            arc
            for arc in self._incoming[module]
            if (include_zero or arc.weight > 0.0)
            and (include_self_loops or not arc.is_self_loop)
        )

    def outgoing_arcs(
        self, module: str, include_zero: bool = True, include_self_loops: bool = True
    ) -> tuple[PermeabilityArc, ...]:
        """Arcs leaving ``module``."""
        if module not in self._outgoing:
            raise UnknownModuleError(module)
        return tuple(
            arc
            for arc in self._outgoing[module]
            if (include_zero or arc.weight > 0.0)
            and (include_self_loops or not arc.is_self_loop)
        )

    def arcs_between(self, producer: str, consumer: str) -> tuple[PermeabilityArc, ...]:
        """All arcs from ``producer`` to ``consumer`` (possibly several)."""
        return tuple(
            arc for arc in self._outgoing.get(producer, ()) if arc.consumer == consumer
        )

    def arcs_carrying(self, signal: str) -> tuple[PermeabilityArc, ...]:
        """All arcs whose carried (output) signal is ``signal``."""
        return tuple(arc for arc in self._arcs if arc.output_signal == signal)

    def environment_arcs(self) -> tuple[PermeabilityArc, ...]:
        """Arcs crossing the system boundary (carrying system outputs)."""
        return tuple(self._incoming[ENVIRONMENT])

    def n_arcs(self, include_zero: bool = True) -> int:
        """Total arc count."""
        return sum(1 for _ in self.arcs(include_zero=include_zero))

    def adjacency(self, include_zero: bool = True) -> dict[str, dict[str, int]]:
        """Arc multiplicity between module pairs: ``{producer: {consumer: n}}``."""
        table: dict[str, dict[str, int]] = {}
        for arc in self.arcs(include_zero=include_zero):
            table.setdefault(arc.producer, {})
            table[arc.producer][arc.consumer] = (
                table[arc.producer].get(arc.consumer, 0) + 1
            )
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PermeabilityGraph {self._system.name!r} "
            f"nodes={len(self.nodes())} arcs={len(self._arcs)}>"
        )
