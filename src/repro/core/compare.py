"""Comparing permeability matrices (workload / error-model stability).

Section 6 argues that the framework's measures are *relative*: changing
the error model or workload may shift the absolute estimates, but the
analysis stays valid "assuming that the relative order of the modules
and signals ... is maintained".  This module makes that assumption
checkable:

* per-pair deltas between two estimates of the same system;
* Spearman rank correlation of the module orderings under Eq. 2/3;
* a rendered drift table for reports.

Used by the error-model and workload ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.permeability import PairKey, PermeabilityMatrix

__all__ = ["MatrixComparison", "compare_matrices", "spearman_rank_correlation"]


def _ranks(values: Sequence[float]) -> list[float]:
    """Fractional ranks (ties get the average rank)."""
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tied_end = position
        while (
            tied_end + 1 < len(order)
            and values[order[tied_end + 1]] == values[order[position]]
        ):
            tied_end += 1
        average = (position + tied_end) / 2.0 + 1.0
        for index in range(position, tied_end + 1):
            ranks[order[index]] = average
        position = tied_end + 1
    return ranks


def spearman_rank_correlation(
    a: Sequence[float], b: Sequence[float]
) -> float:
    """Spearman's rho between two paired value sequences.

    Computed as the Pearson correlation of the fractional ranks, which
    handles ties correctly.  Returns 1.0 for degenerate constant inputs
    (identical orderings by convention).
    """
    if len(a) != len(b):
        raise ValueError("sequences must have equal length")
    if len(a) < 2:
        return 1.0
    ranks_a, ranks_b = _ranks(a), _ranks(b)
    mean_a = sum(ranks_a) / len(ranks_a)
    mean_b = sum(ranks_b) / len(ranks_b)
    cov = sum(
        (x - mean_a) * (y - mean_b) for x, y in zip(ranks_a, ranks_b)
    )
    var_a = sum((x - mean_a) ** 2 for x in ranks_a)
    var_b = sum((y - mean_b) ** 2 for y in ranks_b)
    if var_a == 0.0 or var_b == 0.0:
        return 1.0
    return cov / (var_a * var_b) ** 0.5


@dataclass(frozen=True)
class MatrixComparison:
    """Drift between two permeability estimates of the same system."""

    #: Per-pair absolute differences.
    deltas: Mapping[PairKey, float]
    #: Spearman rho of the module ordering by Eq. 3.
    module_rank_correlation: float
    #: Spearman rho over the raw pair values.
    pair_rank_correlation: float

    @property
    def max_abs_delta(self) -> float:
        return max(self.deltas.values(), default=0.0)

    @property
    def mean_abs_delta(self) -> float:
        if not self.deltas:
            return 0.0
        return sum(self.deltas.values()) / len(self.deltas)

    @property
    def ordering_maintained(self) -> bool:
        """The paper's working assumption at the module level (rho >= 0.8)."""
        return self.module_rank_correlation >= 0.8

    def drifted_pairs(self, threshold: float = 0.1) -> list[tuple[PairKey, float]]:
        """Pairs whose estimates differ by more than ``threshold``."""
        return sorted(
            (
                (pair, delta)
                for pair, delta in self.deltas.items()
                if delta > threshold
            ),
            key=lambda item: -item[1],
        )

    def render(self, threshold: float = 0.1) -> str:
        from repro.core.report import format_table

        rows = [
            (f"{module}: {input_signal} -> {output_signal}", f"{delta:.3f}")
            for (module, input_signal, output_signal), delta in self.drifted_pairs(
                threshold
            )
        ]
        table = format_table(
            headers=("Pair", "|delta|"),
            rows=rows,
            title=f"Pairs drifting by more than {threshold:.2f}",
        )
        summary = (
            f"max |delta| = {self.max_abs_delta:.3f}, "
            f"mean |delta| = {self.mean_abs_delta:.3f}, "
            f"module-rank rho = {self.module_rank_correlation:.3f}, "
            f"pair-rank rho = {self.pair_rank_correlation:.3f}"
        )
        return f"{table}\n{summary}"


def compare_matrices(
    first: PermeabilityMatrix, second: PermeabilityMatrix
) -> MatrixComparison:
    """Quantify the drift between two complete estimates of one system."""
    if first.system.name != second.system.name or set(
        first.system.pair_index()
    ) != set(second.system.pair_index()):
        raise ValueError("matrices must describe the same system")
    first.require_complete()
    second.require_complete()
    pairs = list(first.system.pair_index())
    deltas = {
        pair: abs(first.get(*pair) - second.get(*pair)) for pair in pairs
    }
    modules = first.system.module_names()
    module_rho = spearman_rank_correlation(
        [first.nonweighted_relative_permeability(m) for m in modules],
        [second.nonweighted_relative_permeability(m) for m in modules],
    )
    pair_rho = spearman_rank_correlation(
        [first.get(*pair) for pair in pairs],
        [second.get(*pair) for pair in pairs],
    )
    return MatrixComparison(
        deltas=deltas,
        module_rank_correlation=module_rho,
        pair_rank_correlation=pair_rho,
    )
