"""Shared node type for backtrack and trace trees (Section 4.2).

Both tree constructions of the paper produce trees whose vertices are
signals and whose edges carry error-permeability weights:

* in a **backtrack tree** the root is a system output, intermediate
  nodes are internal outputs and leaves are system inputs (or feedback
  inputs, drawn with a "double line" in the paper's figures);
* in a **trace tree** the root is a system input, intermediate nodes
  are internal inputs and leaves are system outputs.

:class:`PropagationNode` is the common vertex record.  It stores the
signal, the port context through which the node was reached, the
permeability weight of the edge from its parent, and its children.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["NodeKind", "PropagationNode"]


class NodeKind(enum.Enum):
    """Role of a node within a propagation tree."""

    #: The tree root (a system output for backtrack trees, a system
    #: input for trace trees).
    ROOT = "root"
    #: An internal node that was expanded further.
    INTERNAL = "internal"
    #: A leaf at the system boundary (system input in a backtrack tree,
    #: system output in a trace tree).
    BOUNDARY = "boundary"
    #: A node created by the paper's module-feedback rule: the signal
    #: loops back into its own module.  The loop is traversed exactly
    #: once; in a backtrack tree the cut leaf hangs under a node of the
    #: same signal (the paper's double line), in a trace tree the
    #: followed-once feedback node itself carries this kind.
    FEEDBACK = "feedback"
    #: A leaf created by the cross-module cycle guard.  The paper's
    #: algorithm only handles *self*-feedback because its systems
    #: contain no wider cycles; we additionally cut a path when it would
    #: re-expand a (module, signal) already on it, which generalises the
    #: paper's "one pass through the loop" argument (all weights are
    #: <= 1, so any further traversal can only lower the path weight).
    CYCLE = "cycle"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class PropagationNode:
    """One vertex of a backtrack or trace tree.

    Attributes
    ----------
    signal:
        Name of the signal the node represents.
    kind:
        Role of the node (see :class:`NodeKind`).
    module:
        The module providing the node's expansion context: the producer
        of the signal in a backtrack tree, the consumer in a trace tree.
        ``None`` for boundary leaves with no such module.
    input_signal, output_signal:
        The (input, output) pair of the *parent edge*'s permeability
        value, i.e. which :math:`P^M_{i,k}` weights the edge from the
        parent to this node.  ``None`` on the root.
    pair_module:
        The module owning that pair.  ``None`` on the root.
    permeability:
        Weight of the edge from the parent (1.0 on the root so that path
        products are unaffected).
    children:
        Child nodes in construction order.
    """

    signal: str
    kind: NodeKind
    module: str | None = None
    pair_module: str | None = None
    input_signal: str | None = None
    output_signal: str | None = None
    permeability: float = 1.0
    children: list["PropagationNode"] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    @property
    def edge_key(self) -> tuple[str, str, str] | None:
        """Identity of the parent edge's permeability value.

        The triple ``(pair_module, input_signal, output_signal)``
        identifies one :math:`P^M_{i,k}`; Eq. 6's "counted once" rule
        de-duplicates on this key.
        """
        if self.pair_module is None:
            return None
        assert self.input_signal is not None and self.output_signal is not None
        return (self.pair_module, self.input_signal, self.output_signal)

    def walk(self) -> Iterator["PropagationNode"]:
        """Depth-first pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["PropagationNode"]:
        """All leaves of the subtree in left-to-right order."""
        for node in self.walk():
            if node.is_leaf:
                yield node

    def depth(self) -> int:
        """Height of the subtree (a lone node has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def n_nodes(self) -> int:
        """Total number of vertices in the subtree."""
        return sum(1 for _ in self.walk())

    def find(self, signal: str) -> list["PropagationNode"]:
        """All nodes of the subtree representing ``signal``."""
        return [node for node in self.walk() if node.signal == signal]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(
        self,
        weight_format: str = "{:.3f}",
        annotate: Callable[["PropagationNode"], str] | None = None,
    ) -> str:
        """ASCII rendering of the subtree, one node per line.

        Feedback leaves are marked with ``==`` (the paper's double
        line), cycle leaves with ``~~``, boundary leaves with ``*``.
        """
        lines: list[str] = []
        self._render_into(lines, prefix="", is_last=True, is_root=True,
                          weight_format=weight_format, annotate=annotate)
        return "\n".join(lines)

    def _render_into(
        self,
        lines: list[str],
        prefix: str,
        is_last: bool,
        is_root: bool,
        weight_format: str,
        annotate: Callable[["PropagationNode"], str] | None,
    ) -> None:
        marker = {
            NodeKind.FEEDBACK: " ==",
            NodeKind.CYCLE: " ~~",
            NodeKind.BOUNDARY: " *",
        }.get(self.kind, "")
        if is_root:
            stem = ""
        else:
            stem = prefix + ("`-- " if is_last else "|-- ")
        if self.pair_module is not None:
            weight = weight_format.format(self.permeability)
            edge = f"[{weight}] "
        else:
            edge = ""
        extra = f"  {annotate(self)}" if annotate is not None else ""
        lines.append(f"{stem}{edge}{self.signal}{marker}{extra}")
        child_prefix = "" if is_root else prefix + ("    " if is_last else "|   ")
        for index, child in enumerate(self.children):
            child._render_into(
                lines,
                prefix=child_prefix,
                is_last=index == len(self.children) - 1,
                is_root=False,
                weight_format=weight_format,
                annotate=annotate,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PropagationNode {self.signal!r} {self.kind} "
            f"children={len(self.children)}>"
        )
