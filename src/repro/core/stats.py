"""Shared interval statistics for permeability estimates.

One implementation of the Wilson score interval, used by both
:meth:`repro.core.permeability.PermeabilityEstimate.wilson_interval`
(post-hoc estimates) and
:meth:`repro.obs.propagation.ArcCounts.wilson_interval` (live
observations), and driven directly by the adaptive campaign controller
(:mod:`repro.adaptive`) to decide when an arc's estimate is tight
enough to retire.

The Wilson interval is preferred over the normal (Wald) approximation
because it behaves at the boundary cases fault injection constantly
produces — ``k = 0`` (an arc that never propagated) and ``k = n`` (an
arc that always propagated) — where the Wald interval collapses to a
point and claims certainty after one trial.
"""

from __future__ import annotations

import math

__all__ = ["wilson_half_width", "wilson_interval"]


def wilson_interval(
    n_errors: int, n_injections: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for ``n_errors`` successes in ``n_injections``.

    Returns the clamped ``(lower, upper)`` bounds: the interval always
    contains the point estimate ``n_errors / n_injections`` and stays
    inside ``[0, 1]`` (the min/max guards absorb floating-point
    round-off at ``p = 0`` or ``1``).  With no trials there is no
    information, so the interval spans the whole unit range; ``z = 0``
    degenerates to the point estimate.
    """
    if n_injections <= 0:
        return (0.0, 1.0)
    n = n_injections
    p = n_errors / n_injections
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    return (
        max(0.0, min(centre - half, p)),
        min(1.0, max(centre + half, p)),
    )


def wilson_half_width(
    n_errors: int, n_injections: int, z: float = 1.96
) -> float:
    """Half the width of the clamped Wilson interval.

    The adaptive controller's uncertainty measure: a target retires
    once every arc's half-width drops below the requested ``ci_width``,
    and each round's budget goes to the targets where this value is
    largest.  Defined on the *clamped* interval so it agrees with what
    :func:`wilson_interval` reports to users.
    """
    lo, hi = wilson_interval(n_errors, n_injections, z)
    return (hi - lo) / 2.0
