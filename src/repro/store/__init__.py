"""Content-addressed campaign result store for incremental campaigns.

See docs/INCREMENTAL.md for the hash-key definition, the invalidation
rules, and the soundness argument for byte-identical recomposition.
"""

from repro.store.fingerprints import (
    STORE_SCHEMA_VERSION,
    UnitKey,
    UnitKeyBuilder,
    canonical_json,
    content_digest,
    dependency_cone,
    environment_couples_signals,
)
from repro.store.store import ArtifactRecord, ResultStore, StoreStats

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ArtifactRecord",
    "ResultStore",
    "StoreStats",
    "UnitKey",
    "UnitKeyBuilder",
    "canonical_json",
    "content_digest",
    "dependency_cone",
    "environment_couples_signals",
]
