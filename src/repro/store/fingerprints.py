"""Content fingerprints for incremental campaigns (docs/INCREMENTAL.md).

The unit of cacheable work is one *target row*: all injection runs of
one ``(test case, module, input signal)`` triple across the campaign's
``injection_times x error_models`` grid.  A row's outcomes are fully
determined by

* the static system interface (module specs, signal specs — this pins
  the signal graph and the trace layout),
* the constructed runtime: slot schedule, initial store values, trace
  configuration and the environment driving the simulation — the run
  factory itself is *not* hashed, because everything it decides is
  visible in the runner it returns (the repo already relies on
  factories being deterministic: parallel workers rebuild runners from
  the factory and serial/parallel byte-identity is a verified
  contract, so hashing the factory's source would only smear one
  module's edit over every row),
* the workload case,
* the campaign grid subset that shapes the row (duration, instants,
  error models, master seed, fast-forward recording), and
* the *behaviour* of every module the injected error can reach.

That last point needs care.  An error injected at module ``M`` can
only ever *reach* modules in ``M``'s dependency cone (the transitive
consumers of its outputs — any other module reads bit-identical inputs
in the Golden Run and the injection run, so it can never diverge).
But a row's outcomes can still depend on modules *outside* the cone:
they produce the values the error meets on its way, and for a general
module whether a corrupted bit propagates depends on those values
(think of a clamp, or a data-dependent branch).  Hashing only the cone
is therefore sound **iff** the IR-minus-GR delta evolves independently
of the base trajectory, which this builder certifies per target from
four existing repo contracts:

* every module in the cone advertises ``vector_plan()`` — stateless
  ``out = XOR_i (in_i & mask)``, so the delta propagates as
  ``delta & mask`` regardless of the carrier values;
* every error model advertises ``vector_xor_mask(width)`` — the
  injected delta is a constant flip mask, not a function of the value
  it corrupts (stuck-at and offset models are value-dependent);
* the runtime has no data-driven slot dispatch
  (``runner.slot_signal is None``) — the schedule, and hence every
  read/write instant, is value-independent;
* the environment does not couple signals (below).

When any condition fails for a target, its cone silently widens to the
*whole* module set: still sound, still gives full warm-run reuse, but
any module edit dirties the row.  Narrow per-module invalidation is
exactly as precise as the repo's static flow analysis can prove it.

The cone argument assumes errors travel through *signals*.  An
environment that couples signals (reads outputs and feeds them back
into inputs, like the arrestment physics) is an invisible edge between
every pair of modules, so its presence widens every cone to the whole
module set.  Environments whose writes are independent of the store's
contents declare ``SIGNAL_COUPLING = False`` to opt into narrow cones
(see :class:`repro.verify.generators.LcgEnvironment`).

Fingerprints are canonical-JSON digests.  Anything that cannot be
canonicalised deterministically (an attribute holding an arbitrary
object) marks the unit *uncacheable* — the safe direction: it is
re-executed every campaign instead of risking a stale hit.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from typing import Any, Callable, Mapping

from repro.model.system import SystemModel

__all__ = [
    "STORE_SCHEMA_VERSION",
    "UnitKey",
    "UnitKeyBuilder",
    "canonical_json",
    "content_digest",
    "dependency_cone",
    "environment_couples_signals",
]

#: Version of the on-disk artifact schema *and* a component of every
#: unit key: bumping it invalidates every existing store wholesale.
STORE_SCHEMA_VERSION = 1

#: Sentinel returned for values that have no deterministic canonical
#: form; its presence anywhere in a fingerprint poisons the unit.
_OPAQUE = "<opaque>"


def canonical_json(value: Any) -> str:
    """The canonical (sorted-key, compact) JSON text of a value."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_digest(value: Any) -> str:
    """SHA-256 hex digest of a value's canonical JSON form."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Canonicalisation of Python state
# ---------------------------------------------------------------------------


#: Recursion bound for nested object state; beyond it a value is opaque.
_MAX_DEPTH = 10


def _stable_value(
    value: Any,
    poisoned: list,
    _seen: frozenset = frozenset(),
    _depth: int = 0,
) -> Any:
    """JSON-able, deterministic form of a piece of instance state.

    Plain data (numbers, strings, containers thereof) canonicalises
    exactly; ordinary objects are recursed through their ``__dict__``
    (tagged with the class qualname, cycle-guarded, depth-bounded) —
    that covers nested plain-state helpers like the arrestment plant's
    hardware registers.  Anything else — a callable, an open handle, a
    ``__slots__`` object — appends to ``poisoned`` and collapses to
    :data:`_OPAQUE`, rendering the enclosing unit uncacheable rather
    than under-fingerprinted.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips floats exactly and avoids JSON float quirks.
        return ["f", repr(value)]
    if isinstance(value, bytes):
        return ["b", value.hex()]
    if _depth >= _MAX_DEPTH or id(value) in _seen:
        poisoned.append(type(value).__qualname__)
        return _OPAQUE
    seen = _seen | {id(value)}
    if isinstance(value, (list, tuple)):
        return [
            _stable_value(item, poisoned, seen, _depth + 1) for item in value
        ]
    if isinstance(value, (set, frozenset)):
        items = [
            _stable_value(item, poisoned, seen, _depth + 1) for item in value
        ]
        return ["s", sorted(items, key=canonical_json)]
    if isinstance(value, Mapping):
        items = [
            [
                _stable_value(key, poisoned, seen, _depth + 1),
                _stable_value(item, poisoned, seen, _depth + 1),
            ]
            for key, item in value.items()
        ]
        return ["m", sorted(items, key=canonical_json)]
    if isinstance(value, type):
        # A class reference (an Enum, a module class held in state):
        # identity plus source text pins its behaviour.
        return ["t", value.__qualname__, _source_of(value)]
    if callable(value):
        poisoned.append(type(value).__qualname__)
        return _OPAQUE
    try:
        attributes = vars(value)
    except TypeError:  # __slots__ or builtins: no __dict__
        poisoned.append(type(value).__qualname__)
        return _OPAQUE
    return [
        "o",
        type(value).__qualname__,
        {
            name: _stable_value(item, poisoned, seen, _depth + 1)
            for name, item in attributes.items()
        },
    ]


def _instance_state(instance: Any, poisoned: list) -> Any:
    """Stable snapshot of an instance's attributes (``_spec`` excluded)."""
    try:
        attributes = vars(instance)
    except TypeError:  # __slots__ or builtins: no __dict__
        poisoned.append(type(instance).__qualname__)
        return _OPAQUE
    return {
        name: _stable_value(value, poisoned, frozenset({id(instance)}))
        for name, value in attributes.items()
        if name != "_spec"
    }


def _source_of(obj: Any) -> str:
    """Source text of a class/callable, or a stable identity fallback."""
    try:
        return inspect.getsource(obj)
    except (OSError, TypeError):
        return f"{getattr(obj, '__module__', '?')}.{getattr(obj, '__qualname__', repr(obj))}"


# ---------------------------------------------------------------------------
# System topology and reachability
# ---------------------------------------------------------------------------


def _system_fingerprint(system: SystemModel) -> dict:
    """Interface fingerprint: module specs, signal specs, wiring."""
    return {
        "name": system.name,
        "modules": {
            name: {
                "inputs": list(system.module(name).inputs),
                "outputs": list(system.module(name).outputs),
                "period_ms": system.module(name).period_ms,
            }
            for name in system.module_names()
        },
        "signals": {
            name: {
                "width": system.signal(name).width,
                "kind": str(system.signal(name).kind),
                "initial": system.signal(name).initial,
            }
            for name in system.signal_names()
        },
        "system_inputs": list(system.system_inputs),
        "system_outputs": list(system.system_outputs),
    }


def dependency_cone(system: SystemModel, module_name: str) -> tuple[str, ...]:
    """Modules an error injected at ``module_name`` can ever reach.

    The injected module itself plus the transitive consumers of its
    outputs through the signal graph, in system order.  Modules outside
    the cone read bit-identical inputs in GR and IR, so they never
    diverge — but they do shape the values the error meets, so keying
    a row on its cone alone is valid only under the value-independence
    conditions documented in the module docstring (XOR-linear cone,
    pure-XOR error models, static schedule, non-coupling environment).
    """
    cone = {module_name}
    frontier = list(system.module(module_name).outputs)
    seen: set[str] = set()
    while frontier:
        signal = frontier.pop()
        if signal in seen:
            continue
        seen.add(signal)
        for port in system.consumers_of(signal):
            if port.module not in cone:
                cone.add(port.module)
                frontier.extend(system.module(port.module).outputs)
    return tuple(name for name in system.module_names() if name in cone)


def environment_couples_signals(environment: Any) -> bool:
    """Whether the environment can carry errors between signals.

    ``True`` (the conservative default) unless the environment's class
    declares ``SIGNAL_COUPLING = False``, asserting its writes are
    independent of anything it reads from the store — then the signal
    graph alone bounds propagation and dependency cones stay narrow.
    """
    return bool(getattr(type(environment), "SIGNAL_COUPLING", True))


def _is_xor_linear(instance: Any) -> bool:
    """Whether a behavioural instance certifies the ``vector_plan``
    contract (stateless positionwise XOR transfer) — same probe as the
    batched kernel and :func:`repro.flow.analysis.derive_module_flows`.
    """
    plan_fn = getattr(instance, "vector_plan", None)
    if not callable(plan_fn):
        return False
    try:
        return plan_fn() is not None
    except Exception:
        return False


# ---------------------------------------------------------------------------
# The unit key builder
# ---------------------------------------------------------------------------


class UnitKey:
    """One computed unit key: the digest plus its cacheability verdict."""

    __slots__ = ("digest", "opaque")

    def __init__(self, digest: str, opaque: tuple[str, ...] = ()) -> None:
        self.digest = digest
        self.opaque = opaque

    @property
    def cacheable(self) -> bool:
        """``False`` when opaque state poisoned the fingerprint."""
        return not self.opaque


class UnitKeyBuilder:
    """Computes unit keys for one campaign's grid.

    Campaign-wide components (system interface, error models, config
    subset) are fingerprinted once; per-case components (case state,
    schedule, module implementations, environment, trace layout) are
    fingerprinted from one probe runtime per case — built by the
    factory but never run, so a fully-cached campaign costs factory
    calls, not simulation.  The probe runner stands in for the factory
    itself (see the module docstring), which assumes the factory is
    deterministic — the same assumption the parallel executor already
    makes when workers rebuild runners from it.

    The config subset deliberately *excludes* ``backend`` and
    ``reuse_golden_prefix``: byte-identity across execution strategies
    and simulation backends is the repo's verified contract
    (``repro verify``'s ``strategy-identity`` oracle), so results
    recorded under one strategy are valid under all.  ``fast_forward``
    *is* included because it changes what the outcome records contain
    (reconvergence instants and spliced-frame counts).
    """

    def __init__(self, system: SystemModel, run_factory: Callable, config) -> None:
        from repro import __version__

        self._system = system
        self._run_factory = run_factory
        self._models = tuple(config.error_models)
        poisoned_base: list = []
        self._base = {
            "store_schema": STORE_SCHEMA_VERSION,
            "package": __version__,
            "system": _system_fingerprint(system),
            "config": {
                "duration_ms": config.duration_ms,
                "injection_times_ms": list(config.injection_times_ms),
                "error_models": [
                    {
                        "name": model.name,
                        "source": _source_of(type(model)),
                        "state": _instance_state(model, poisoned_base),
                    }
                    for model in self._models
                ],
                "seed": config.seed,
                "fast_forward": config.fast_forward,
            },
        }
        self._base_opaque = tuple(sorted(set(poisoned_base)))
        self._cones: dict[str, tuple[str, ...]] = {}
        self._pure_xor_widths: dict[int, bool] = {}

    def _cone(self, module_name: str) -> tuple[str, ...]:
        cone = self._cones.get(module_name)
        if cone is None:
            cone = dependency_cone(self._system, module_name)
            self._cones[module_name] = cone
        return cone

    def _models_pure_xor(self, width: int) -> bool:
        """Whether every error model injects a constant flip mask.

        Same probe as the batched kernel and the flow analysis: only
        models advertising a non-``None`` ``vector_xor_mask`` corrupt
        independently of the value they hit.
        """
        known = self._pure_xor_widths.get(width)
        if known is None:
            known = all(
                callable(getattr(model, "vector_xor_mask", None))
                and model.vector_xor_mask(width) is not None
                for model in self._models
            )
            self._pure_xor_widths[width] = known
        return known

    def keys_for_case(
        self,
        case_id: str,
        case: Any,
        targets: tuple[tuple[str, str], ...],
    ) -> dict[tuple[str, str], UnitKey]:
        """Unit keys of every target row of one test case.

        Builds (but never runs) one probe runtime to fingerprint the
        case's behavioural module instances and environment.
        """
        runner = self._run_factory(case)
        poisoned_case: list = []
        case_part = {
            "id": case_id,
            "type": type(case).__qualname__ if case is not None else None,
            "state": _stable_value(case, poisoned_case)
            if case is None or isinstance(case, (bool, int, float, str, bytes))
            else _instance_state(case, poisoned_case),
            "initials": dict(runner.store.initial_values()),
            "trace_signals": list(runner.trace_signals),
            "slot_signal": runner.slot_signal,
            "schedule": _stable_value(runner.schedule, poisoned_case),
        }
        environment = runner.environment
        poisoned_env: list = []
        env_part = {
            "type": type(environment).__qualname__,
            "source": _source_of(type(environment)),
            "couples": environment_couples_signals(environment),
            "state": _instance_state(environment, poisoned_env),
        }
        couples = environment_couples_signals(environment)
        static_schedule = runner.slot_signal is None
        module_parts: dict[str, tuple[Any, tuple[str, ...]]] = {}
        xor_linear: dict[str, bool] = {}
        for name, instance in runner.modules.items():
            poisoned_mod: list = []
            part = {
                "type": type(instance).__qualname__,
                "source": _source_of(type(instance)),
                "state": _instance_state(instance, poisoned_mod),
            }
            module_parts[name] = (part, tuple(sorted(set(poisoned_mod))))
            xor_linear[name] = _is_xor_linear(instance)
        keys: dict[tuple[str, str], UnitKey] = {}
        shared_opaque = tuple(
            sorted({*self._base_opaque, *poisoned_case, *poisoned_env})
        )
        all_modules = self._system.module_names()
        for module, signal in targets:
            cone = self._cone(module)
            # Narrow cones are sound only when the delta's journey is
            # value-independent (module docstring); otherwise modules
            # outside the cone shape the outcomes and must be keyed.
            narrow = (
                not couples
                and static_schedule
                and self._models_pure_xor(self._system.signal(signal).width)
                and all(xor_linear[name] for name in cone)
            )
            if not narrow:
                cone = all_modules
            opaque = set(shared_opaque)
            cone_fp = {}
            for name in cone:
                part, poisoned = module_parts[name]
                cone_fp[name] = part
                opaque.update(poisoned)
            digest = content_digest(
                {
                    **self._base,
                    "case": case_part,
                    "environment": env_part,
                    "target": {"module": module, "signal": signal},
                    "cone": cone_fp,
                }
            )
            keys[(module, signal)] = UnitKey(digest, tuple(sorted(opaque)))
        return keys
