"""Content-addressed on-disk store for campaign result artifacts.

One artifact per unit key (see :mod:`repro.store.fingerprints`), laid
out ``<root>/units/<key[:2]>/<key>.json`` so directories stay small.
Each file wraps its payload with the schema version, the key it claims
to answer, and a SHA-256 digest of the payload's canonical JSON:

.. code-block:: json

    {"schema": 1, "key": "ab12…", "digest": "…", "payload": {…}}

Reads are *tolerant*: a missing, truncated, unparseable or
wrong-schema file is simply a miss (the unit re-runs), in the same
spirit as ``tail_lines`` skipping a torn trailing line.  A file that
parses but whose digest or key does not match what it claims is
actively *rejected* — reported through ``on_reject`` so the observer
can emit a warning event — because it means corruption survived the
JSON parse and silence would be indistinguishable from a clean miss.

Writes are atomic: payloads land in a same-directory temp file first
and are published with :func:`os.replace`, so concurrent writers of
the same key cannot interleave bytes — last writer wins with a
complete artifact, and readers never observe a partial file.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.store.fingerprints import STORE_SCHEMA_VERSION, canonical_json, content_digest

__all__ = ["ArtifactRecord", "ResultStore", "StoreStats"]


@dataclass
class StoreStats:
    """Counters for one campaign's store traffic."""

    hits: int = 0
    misses: int = 0
    rejected: int = 0
    runs_reused: int = 0
    runs_executed: int = 0
    uncacheable: int = 0

    def to_jsonable(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "rejected": self.rejected,
            "runs_reused": self.runs_reused,
            "runs_executed": self.runs_executed,
            "uncacheable": self.uncacheable,
        }


@dataclass(frozen=True)
class ArtifactRecord:
    """One artifact as seen by ``repro store ls|gc|verify``."""

    path: Path
    key: str | None
    ok: bool
    reason: str | None
    payload: dict | None
    mtime: float


class ResultStore:
    """Content-addressed JSON artifact store under one root directory."""

    _tmp_serial = itertools.count()

    def __init__(
        self,
        root: str | os.PathLike,
        on_reject: Callable[[str, str, str], None] | None = None,
    ) -> None:
        self._root = Path(root)
        self._on_reject = on_reject

    @property
    def root(self) -> Path:
        return self._root

    def path_for(self, key: str) -> Path:
        return self._root / "units" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def fetch(self, key: str) -> dict | None:
        """The payload stored under ``key``, or ``None`` on any miss.

        Corruption that survives the JSON parse (digest or key
        mismatch, wrong schema shape) is rejected through the
        ``on_reject`` callback and still returns ``None`` — the caller
        re-runs the unit either way.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            wrapper = json.loads(text)
        except ValueError:
            # Torn or truncated write from a pre-atomic tool: a miss.
            return None
        reason = self._validate(key, wrapper)
        if reason is not None:
            if self._on_reject is not None:
                self._on_reject(key, str(path), reason)
            return None
        return wrapper["payload"]

    @staticmethod
    def _validate(key: str, wrapper: Any) -> str | None:
        """Why a parsed wrapper cannot answer ``key`` (None when it can)."""
        if not isinstance(wrapper, dict):
            return "artifact root is not an object"
        if wrapper.get("schema") != STORE_SCHEMA_VERSION:
            return f"schema {wrapper.get('schema')!r} != {STORE_SCHEMA_VERSION}"
        if wrapper.get("key") != key:
            return "stored key does not match requested key"
        payload = wrapper.get("payload")
        if not isinstance(payload, dict):
            return "payload is not an object"
        if wrapper.get("digest") != content_digest(payload):
            return "payload digest mismatch"
        return None

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def put(self, key: str, payload: dict) -> Path:
        """Atomically publish ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        wrapper = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "digest": content_digest(payload),
            "payload": payload,
        }
        # The temp name must be unique per *call*, not per process:
        # concurrent threads publishing the same key would otherwise
        # rename each other's temp file out from underneath os.replace.
        tmp = path.parent / (
            f".{key}.{os.getpid()}.{threading.get_ident()}"
            f".{next(self._tmp_serial)}.tmp"
        )
        tmp.write_text(canonical_json(wrapper), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def contains(self, key: str) -> bool:
        """Whether a *valid* artifact for ``key`` is present (silent)."""
        path = self.path_for(key)
        try:
            wrapper = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        return self._validate(key, wrapper) is None

    # ------------------------------------------------------------------
    # Maintenance (repro store ls|gc|verify)
    # ------------------------------------------------------------------

    def iter_artifacts(self) -> Iterator[ArtifactRecord]:
        """Every ``*.json`` file under the store, validated in place."""
        units = self._root / "units"
        if not units.is_dir():
            return
        for path in sorted(units.glob("*/*.json")):
            try:
                mtime = path.stat().st_mtime
                wrapper = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                yield ArtifactRecord(path, None, False, f"unreadable: {exc}", None, 0.0)
                continue
            key = wrapper.get("key") if isinstance(wrapper, dict) else None
            claimed = key if isinstance(key, str) else path.stem
            reason = self._validate(claimed, wrapper)
            if reason is None and path.stem != claimed:
                reason = "filename does not match stored key"
            yield ArtifactRecord(
                path=path,
                key=claimed if isinstance(claimed, str) else None,
                ok=reason is None,
                reason=reason,
                payload=wrapper.get("payload") if isinstance(wrapper, dict) else None,
                mtime=mtime,
            )

    def gc(self, max_age_days: float | None = None, now: float | None = None) -> list[Path]:
        """Delete invalid artifacts, plus valid ones older than the cap.

        Returns the deleted paths.  Leftover temp files from crashed
        writers are always collected.
        """
        if now is None:
            now = time.time()
        removed: list[Path] = []
        units = self._root / "units"
        if units.is_dir():
            for tmp in units.glob("*/.*.tmp"):
                tmp.unlink(missing_ok=True)
                removed.append(tmp)
        for record in self.iter_artifacts():
            expired = (
                max_age_days is not None
                and now - record.mtime > max_age_days * 86400.0
            )
            if not record.ok or expired:
                record.path.unlink(missing_ok=True)
                removed.append(record.path)
        return removed
