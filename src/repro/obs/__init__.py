"""repro.obs — campaign observability.

Three zero-dependency layers over the injection-campaign engine:

* :mod:`repro.obs.events` — a typed, versioned, JSONL-serialisable
  event stream with pluggable sinks and a per-campaign run manifest;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with span timers, mergeable across worker processes;
* :mod:`repro.obs.propagation` — per-IR divergence records folded into
  observed per-arc propagation counts, i.e. measured permeability
  :math:`P^M_{i,k}` as a first-class observable.

:class:`~repro.obs.observer.CampaignObserver` bundles the three behind
the single optional hook the campaign engine calls;
:mod:`repro.obs.summary` renders text reports from recorded streams;
:mod:`repro.obs.dash` folds the same stream into a live browser
dashboard (state reducer + SSE server, ``repro campaign --dash`` /
``repro dash``).  See ``docs/OBSERVABILITY.md`` for the event schema,
metrics catalog and dashboard endpoints.
"""

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    CampaignFinished,
    CampaignStarted,
    CheckpointReused,
    CheckpointSaved,
    ChunkCompleted,
    EventStream,
    InjectionFired,
    JsonlSink,
    MultiSink,
    OutcomeClassified,
    ParsedEvent,
    PrettyPrintSink,
    RingBufferSink,
    RunManifest,
    RunStarted,
    build_manifest,
    decode_event,
    encode_event,
    read_events,
    validate_events,
)
from repro.obs.dash import (
    CampaignStateReducer,
    DashboardServer,
    DashboardSink,
    validate_snapshot,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import CampaignObserver
from repro.obs.propagation import (
    ArcCounts,
    PropagationObservations,
    PropagationRecord,
)
from repro.obs.summary import (
    EventsSummary,
    render_summary,
    summarize_events,
    summarize_events_file,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "ArcCounts",
    "CampaignFinished",
    "CampaignObserver",
    "CampaignStarted",
    "CampaignStateReducer",
    "DashboardServer",
    "DashboardSink",
    "CheckpointReused",
    "CheckpointSaved",
    "ChunkCompleted",
    "Counter",
    "EventStream",
    "EventsSummary",
    "Gauge",
    "Histogram",
    "InjectionFired",
    "JsonlSink",
    "MetricsRegistry",
    "MultiSink",
    "OutcomeClassified",
    "ParsedEvent",
    "PrettyPrintSink",
    "PropagationObservations",
    "PropagationRecord",
    "RingBufferSink",
    "RunManifest",
    "RunStarted",
    "build_manifest",
    "decode_event",
    "encode_event",
    "read_events",
    "render_summary",
    "summarize_events",
    "summarize_events_file",
    "validate_events",
    "validate_snapshot",
]
