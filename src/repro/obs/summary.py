"""Text reports over recorded campaign event streams.

``repro obs summarize events.jsonl`` renders, from the events file
alone (optionally with a separate ``metrics.json``):

* the run manifest (who/what/when produced the stream);
* the phase breakdown — where the campaign's wall-clock went, slowest
  span first (Golden-Run phase, per-IR suffix simulation, Golden-Run
  comparison, checkpoint save/restore, worker chunks);
* the outcome mix (propagated / no effect / trap never fired);
* the hottest observed propagation arcs, i.e. the (module, input →
  output) pairs whose measured permeability numerators grew fastest.

Everything works on any events file produced by this package —
including files from other hosts, because the stream is self-contained.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs.events import (
    ArcsPruned,
    BackendSelected,
    CampaignFinished,
    CampaignStarted,
    CheckpointReused,
    ChunkCompleted,
    InjectionFired,
    OutcomeClassified,
    ParsedEvent,
    RunReconverged,
    StoreArtifactRejected,
    UnitReused,
    read_events,
)

__all__ = ["EventsSummary", "summarize_events", "render_summary"]

#: Histogram metric names treated as campaign phases, with display labels.
PHASE_METRICS: tuple[tuple[str, str], ...] = (
    ("phase.golden_run.seconds", "Golden Run (per case)"),
    ("phase.injection_run.seconds", "IR suffix simulation"),
    ("phase.comparison.seconds", "Golden-Run comparison"),
    ("checkpoint.save.seconds", "checkpoint save"),
    ("checkpoint.restore.seconds", "checkpoint restore"),
    ("chunk.seconds", "worker chunk"),
    ("kernel.batch_step.seconds", "batched kernel frame step"),
)


@dataclass
class EventsSummary:
    """Aggregates extracted from one parsed event stream."""

    manifest: dict = field(default_factory=dict)
    n_events: int = 0
    total_runs: int = 0
    mode: str = "?"
    backend: str | None = None
    outcome_mix: TallyCounter = field(default_factory=TallyCounter)
    #: (module, input, output) -> propagation count
    arc_hits: TallyCounter = field(default_factory=TallyCounter)
    #: (module, input, output) -> injections contributing to the arc
    arc_injections: TallyCounter = field(default_factory=TallyCounter)
    n_fired: int = 0
    n_pruned_targets: int = 0
    n_pruned_runs: int = 0
    n_cached_units: int = 0
    n_cached_runs: int = 0
    n_store_rejected: int = 0
    n_checkpoint_reuses: int = 0
    skipped_ms: int = 0
    n_reconverged: int = 0
    fast_forwarded_ms: int = 0
    n_chunks: int = 0
    elapsed_s: float | None = None
    metrics: dict = field(default_factory=dict)

    def top_arcs(self, n: int = 10) -> list[tuple[tuple[str, str, str], int, int]]:
        """The ``n`` hottest arcs as (arc, hits, injections)."""
        ranked = sorted(
            self.arc_hits.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (arc, hits, self.arc_injections[arc]) for arc, hits in ranked[:n]
        ]


def summarize_events(
    events: Iterable[ParsedEvent], metrics: Mapping | None = None
) -> EventsSummary:
    """Fold a parsed event stream into an :class:`EventsSummary`.

    ``metrics`` overrides the snapshot embedded in
    :class:`CampaignFinished` (useful with a separate ``metrics.json``
    from the same campaign).
    """
    summary = EventsSummary()
    for parsed in events:
        summary.n_events += 1
        event = parsed.event
        if isinstance(event, CampaignStarted):
            summary.manifest = event.manifest
            summary.total_runs = event.total_runs
            summary.mode = event.mode
        elif isinstance(event, BackendSelected):
            summary.backend = event.backend
        elif isinstance(event, OutcomeClassified):
            summary.outcome_mix[event.outcome] += 1
            for output in event.propagated_outputs:
                summary.arc_hits[(event.module, event.signal, output)] += 1
            # Denominator: each classified outcome is one injection into
            # every arc rooted at (module, signal); count via the hits
            # keys lazily below using outcome totals per location.
            summary.arc_injections[(event.module, event.signal, "*")] += 1
        elif isinstance(event, InjectionFired):
            summary.n_fired += 1
        elif isinstance(event, ArcsPruned):
            summary.n_pruned_targets += len(event.targets)
            summary.n_pruned_runs += (
                len(event.targets) * event.n_injections_per_target
            )
        elif isinstance(event, UnitReused):
            summary.n_cached_units += 1
            summary.n_cached_runs += event.n_runs
        elif isinstance(event, StoreArtifactRejected):
            summary.n_store_rejected += 1
        elif isinstance(event, CheckpointReused):
            summary.n_checkpoint_reuses += 1
            summary.skipped_ms += event.skipped_ms
        elif isinstance(event, RunReconverged):
            summary.n_reconverged += 1
            summary.fast_forwarded_ms += event.frames_fast_forwarded
        elif isinstance(event, ChunkCompleted):
            summary.n_chunks += 1
        elif isinstance(event, CampaignFinished):
            summary.elapsed_s = event.elapsed_s
            summary.metrics = dict(event.metrics)
    # Resolve per-arc denominators from the per-location totals.
    resolved: TallyCounter = TallyCounter()
    for (module, signal, output), _hits in summary.arc_hits.items():
        resolved[(module, signal, output)] = summary.arc_injections[
            (module, signal, "*")
        ]
    summary.arc_injections = resolved
    if metrics is not None:
        summary.metrics = dict(metrics)
    return summary


def _render_phases(metrics: Mapping) -> list[str]:
    from repro.core.report import format_table

    rows = []
    for name, label in PHASE_METRICS:
        data = metrics.get(name)
        if not data or data.get("type") != "histogram" or not data["count"]:
            continue
        rows.append(
            (
                label,
                data["count"],
                f"{data['sum']:.3f}",
                f"{data['sum'] / data['count'] * 1000:.3f}",
                f"{data['max'] * 1000:.3f}",
            )
        )
    if not rows:
        return ["(no phase metrics recorded)"]
    rows.sort(key=lambda row: -float(row[2]))
    return [
        format_table(
            headers=("Phase", "spans", "total s", "mean ms", "max ms"),
            rows=rows,
            title="Phase breakdown (slowest first)",
        )
    ]


def _render_kernel_line(metrics: Mapping) -> str | None:
    """One-line digest of the batched kernel's ``kernel.*`` metrics."""

    def _value(name: str) -> int:
        data = metrics.get(name)
        if not data or "value" not in data:
            return 0
        return int(data["value"])

    retired = _value("kernel.lanes.retired")
    fallback_runs = _value("kernel.fallback.runs")
    scalar_modules = _value("kernel.scalar_fallback.modules")
    if not (retired or fallback_runs or scalar_modules):
        return None
    return (
        f"batched kernel: {retired} lanes retired, "
        f"{fallback_runs} reference-fallback runs, "
        f"{scalar_modules} scalar-fallback modules"
    )


def render_summary(summary: EventsSummary, top: int = 10) -> str:
    """Render the text report of one events file."""
    from repro.core.report import format_table

    lines: list[str] = []
    manifest = summary.manifest
    if manifest:
        lines.append("Campaign manifest")
        lines.append(f"  config hash     : {manifest.get('config_hash')}")
        lines.append(f"  schema version  : {manifest.get('schema_version')}")
        lines.append(f"  package version : {manifest.get('package_version')}")
        lines.append(f"  seed            : {manifest.get('seed')}")
        lines.append(
            f"  grid            : {manifest.get('n_cases')} cases x "
            f"{manifest.get('n_targets')} targets x "
            f"{len(manifest.get('injection_times_ms', ()))} times x "
            f"{manifest.get('n_error_models')} models "
            f"= {manifest.get('total_runs')} runs"
        )
        host = manifest.get("host", {})
        lines.append(
            f"  host            : {host.get('platform')} "
            f"(python {host.get('python')}, {host.get('cpu_count')} cpus)"
        )
        lines.append(f"  mode            : {summary.mode}")
        backend = summary.backend or manifest.get("backend")
        if backend is not None:
            lines.append(f"  backend         : {backend}")
        lines.append("")

    n_classified = sum(summary.outcome_mix.values())
    lines.append(
        f"{summary.n_events} events; {n_classified} classified outcomes"
        + (
            f"; finished in {summary.elapsed_s:.2f}s"
            if summary.elapsed_s is not None
            else " (stream has no CampaignFinished event)"
        )
    )
    if summary.n_pruned_targets:
        lines.append(
            f"static pruning: {summary.n_pruned_targets} target(s) proven "
            f"zero-permeability, {summary.n_pruned_runs} runs skipped"
        )
    if summary.n_cached_units:
        lines.append(
            f"result store: {summary.n_cached_units} target row(s) reused, "
            f"{summary.n_cached_runs} injection runs recomposed from cache"
        )
    if summary.n_store_rejected:
        lines.append(
            f"WARNING: {summary.n_store_rejected} store artifact(s) failed "
            "content verification and were re-executed"
        )
    if summary.n_checkpoint_reuses:
        lines.append(
            f"checkpoint reuse: {summary.n_checkpoint_reuses} resumes, "
            f"{summary.skipped_ms} simulated ms skipped"
        )
    if summary.n_reconverged:
        lines.append(
            f"reconvergence fast-forward: {summary.n_reconverged} runs "
            f"reconverged, {summary.fast_forwarded_ms} simulated ms spliced"
        )
    if summary.n_chunks:
        lines.append(f"parallel chunks completed: {summary.n_chunks}")
    kernel_line = _render_kernel_line(summary.metrics)
    if kernel_line is not None:
        lines.append(kernel_line)
    dropped_data = summary.metrics.get("events.dropped") or {}
    dropped = int(dropped_data.get("value", 0) or 0)
    if dropped:
        lines.append(
            f"WARNING: {dropped} event(s) were dropped by a bounded "
            "ring-buffer sink; the recorded stream is incomplete"
        )
    lines.append("")

    if summary.outcome_mix:
        rows = []
        for verdict in ("propagated", "no_effect", "not_fired"):
            count = summary.outcome_mix.get(verdict, 0)
            rows.append(
                (verdict, count, f"{count / n_classified:.1%}")
            )
        for verdict, count in sorted(summary.outcome_mix.items()):
            if verdict not in ("propagated", "no_effect", "not_fired"):
                rows.append((verdict, count, f"{count / n_classified:.1%}"))
        lines.append(
            format_table(
                headers=("Outcome", "runs", "share"),
                rows=rows,
                title="Outcome mix",
            )
        )
        lines.append("")

    lines.extend(_render_phases(summary.metrics))
    lines.append("")

    arcs = summary.top_arcs(top)
    if arcs:
        rows = [
            (
                f"{module}.{input_signal} -> {output}",
                hits,
                injections,
                f"{hits / injections:.3f}" if injections else "-",
            )
            for (module, input_signal, output), hits, injections in arcs
        ]
        lines.append(
            format_table(
                headers=("Arc", "propagated", "injections", "P^M"),
                rows=rows,
                title=f"Hottest observed propagation arcs (top {len(rows)})",
            )
        )
    else:
        lines.append("(no propagation arcs observed)")
    return "\n".join(lines)


def summarize_events_file(
    events_path, metrics_path=None, top: int = 10
) -> str:
    """Convenience wrapper: parse, fold and render one events file."""
    metrics = None
    if metrics_path is not None:
        with open(metrics_path, "r", encoding="utf-8") as handle:
            metrics = json.load(handle)
    summary = summarize_events(read_events(events_path), metrics=metrics)
    return render_summary(summary, top=top)
