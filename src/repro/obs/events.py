"""Structured campaign event stream: typed events, sinks and manifests.

Every campaign execution can narrate itself as a stream of typed events
(:class:`CampaignStarted` ... :class:`CampaignFinished`), each encoded
as one JSON object per line.  The stream makes campaigns *attributable*
and *replayable for analysis*: an ``events.jsonl`` plus the embedded
:class:`RunManifest` answers "what exactly produced this matrix, on
which host, with which grid, and where did the time and the errors go"
long after the process exited.

Design points:

* **Typed, versioned envelope.**  Every line is
  ``{"v": schema, "seq": n, "ts": unix_seconds, "type": name, "data": {...}}``;
  :func:`decode_event` refuses unknown types and future schema
  versions, so an events file either parses into typed records or
  fails loudly (CI round-trips the file through this parser).
* **Pluggable sinks.**  :class:`JsonlSink` (durable),
  :class:`RingBufferSink` (in-memory, bounded — workers use an
  unbounded one as the return channel), :class:`PrettyPrintSink`
  (human-readable stderr narration) and :class:`MultiSink`.
* **Zero cost when off.**  The campaign holds ``observer=None`` by
  default and guards every emission with one ``is None`` test.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import IO, Any, Iterator, Mapping, TextIO

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "CampaignStarted",
    "ArcsPruned",
    "LintReported",
    "RunStarted",
    "CheckpointSaved",
    "CheckpointReused",
    "InjectionFired",
    "RunReconverged",
    "OutcomeClassified",
    "UnitReused",
    "StoreArtifactRejected",
    "ChunkCompleted",
    "TargetRetired",
    "RoundCompleted",
    "BudgetExhausted",
    "CampaignFinished",
    "ParsedEvent",
    "EventStream",
    "JsonlSink",
    "RingBufferSink",
    "PrettyPrintSink",
    "MultiSink",
    "RunManifest",
    "build_manifest",
    "encode_event",
    "decode_event",
    "read_events",
    "validate_events",
]

#: Version of the on-disk event schema; recorded in every envelope and
#: in the run manifest.  Bump when an event's fields change shape.
EVENT_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Event types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignStarted:
    """First event of a campaign: identity, grid shape and manifest."""

    manifest: dict
    total_runs: int
    n_cases: int
    n_targets: int
    runs_per_target: int
    mode: str  # "serial" | "parallel"


@dataclass(frozen=True)
class BackendSelected:
    """The campaign resolved its simulation backend.

    Emitted right after :class:`CampaignStarted` (parent process only),
    so event streams produced by different backends are distinguishable
    even before any backend-specific ``kernel.*`` metrics appear.  The
    backend also participates in the manifest's config hash.
    """

    backend: str  # "reference" | "batched"


@dataclass(frozen=True)
class ArcsPruned:
    """Statically-proven-zero targets skipped by the campaign.

    Emitted right after :class:`LintReported` (parent process only)
    when :attr:`CampaignConfig.static_prune` removed targets from the
    grid — each listed (module, input) target's whole arc row was
    proven zero-permeability by :mod:`repro.flow`, so its
    ``n_injections_per_target`` runs were recorded as exact zero-error
    counts instead of executed.
    """

    targets: tuple[tuple[str, str], ...]
    n_injections_per_target: int
    n_arcs: int


@dataclass(frozen=True)
class LintReported:
    """The pre-campaign lint pass finished (see :mod:`repro.lint`).

    Emitted between :class:`CampaignStarted` and the first
    :class:`RunStarted`; ``diagnostics`` carries the JSON form of every
    finding.  On error-level findings the campaign aborts right after
    this event, so an ``events.jsonl`` that stops here is
    self-explaining.
    """

    system: str
    errors: int
    warnings: int
    info: int
    codes: tuple[str, ...] = ()
    diagnostics: tuple[dict, ...] = ()


@dataclass(frozen=True)
class RunStarted:
    """One run begins: a Golden Run (``kind="golden"``) or one IR."""

    case_id: str
    kind: str  # "golden" | "injection"
    module: str | None = None
    signal: str | None = None
    time_ms: int | None = None
    error_model: str | None = None


@dataclass(frozen=True)
class CheckpointSaved:
    """The Golden Run captured a prefix-reuse checkpoint."""

    case_id: str
    time_ms: int


@dataclass(frozen=True)
class CheckpointReused:
    """An IR resumed from a Golden-Run checkpoint instead of time zero."""

    case_id: str
    time_ms: int
    skipped_ms: int


@dataclass(frozen=True)
class InjectionFired:
    """The one-shot trap of an IR actually corrupted a read."""

    case_id: str
    module: str
    signal: str
    scheduled_ms: int
    fired_at_ms: int
    error_model: str


@dataclass(frozen=True)
class RunReconverged:
    """An IR provably re-matched its Golden Run and was fast-forwarded.

    ``reconverged_at_ms`` is the frame at which the injected error's
    effect set became empty (verified by a complete-state digest match)
    — the paper-relevant error-lifetime instant;
    ``frames_fast_forwarded`` counts the simulated milliseconds spliced
    from the Golden Run instead of executed.
    """

    case_id: str
    module: str
    signal: str
    time_ms: int
    error_model: str
    reconverged_at_ms: int
    frames_fast_forwarded: int


@dataclass(frozen=True)
class OutcomeClassified:
    """The Golden-Run comparison verdict of one finished IR.

    ``diverged`` maps every deviating signal to its first-divergence
    millisecond; ``propagated_outputs`` are the injected module's
    output signals counting as *direct* errors under the paper's
    Section 7.3 rule — the numerators of measured permeability.
    """

    case_id: str
    module: str
    signal: str
    time_ms: int
    error_model: str
    fired: bool
    outcome: str  # "propagated" | "no_effect" | "not_fired"
    diverged: dict[str, int] = field(default_factory=dict)
    propagated_outputs: tuple[str, ...] = ()


@dataclass(frozen=True)
class UnitReused:
    """One target row was recomposed from the result store, not executed.

    Emitted (parent process only) before the row's replayed
    :class:`OutcomeClassified` events when an incremental campaign
    (``--store DIR``, see docs/INCREMENTAL.md) found the row's content
    key already stored — its ``n_runs`` injection runs were skipped and
    their recorded outcomes fed into the result instead.
    """

    case_id: str
    module: str
    signal: str
    n_runs: int
    key: str


@dataclass(frozen=True)
class StoreArtifactRejected:
    """A store artifact parsed but failed content verification.

    A digest or key mismatch means corruption survived the JSON parse
    (torn or truncated files are silent misses instead); the artifact
    is ignored and the unit re-executes, but the event makes the
    corruption visible (``store.rejected`` counter).
    """

    key: str
    path: str
    reason: str


@dataclass(frozen=True)
class ChunkCompleted:
    """One grid-sharded work item came back from a worker."""

    chunk_index: int
    case_id: str
    n_targets: int
    n_runs: int
    elapsed_s: float


@dataclass(frozen=True)
class TargetRetired:
    """An adaptive campaign stopped sampling one (module, input) target.

    Emitted once per target by adaptive campaigns (``--adaptive``; see
    docs/ADAPTIVE.md).  ``reason`` is ``"confidence"`` when the widest
    Wilson interval across the target's output arcs reached the
    requested ``ci_width``, ``"cap"`` when the per-target trial cap cut
    sampling short, ``"exhausted"`` when the target's full exhaustive
    pool was spent first.
    """

    module: str
    signal: str
    n_trials: int
    half_width: float
    reason: str
    round_index: int


@dataclass(frozen=True)
class RoundCompleted:
    """One adaptive round finished: budget spent, targets still open."""

    round_index: int
    n_trials: int
    n_open: int


@dataclass(frozen=True)
class BudgetExhausted:
    """Some targets retired without reaching the requested confidence.

    Emitted at most once, after the adaptive round loop, when at least
    one target retired for a non-``"confidence"`` reason; ``reasons``
    counts the retirees per non-confidence reason.  Its absence from an
    adaptive event stream means every interval met ``ci_width``.
    """

    n_targets: int
    reasons: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class CampaignFinished:
    """Last event: totals plus the final metrics snapshot."""

    n_runs: int
    n_fired: int
    elapsed_s: float
    metrics: dict = field(default_factory=dict)


_EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        CampaignStarted,
        BackendSelected,
        ArcsPruned,
        LintReported,
        RunStarted,
        CheckpointSaved,
        CheckpointReused,
        InjectionFired,
        RunReconverged,
        OutcomeClassified,
        UnitReused,
        StoreArtifactRejected,
        ChunkCompleted,
        TargetRetired,
        RoundCompleted,
        BudgetExhausted,
        CampaignFinished,
    )
}


@dataclass(frozen=True)
class ParsedEvent:
    """One decoded envelope: sequence number, timestamp and typed event."""

    seq: int
    ts: float
    event: Any

    @property
    def type_name(self) -> str:
        return type(self.event).__name__


# ---------------------------------------------------------------------------
# Encoding / decoding
# ---------------------------------------------------------------------------


def encode_event(event: Any, seq: int, ts: float) -> dict:
    """Wrap a typed event in its versioned JSON envelope."""
    name = type(event).__name__
    if name not in _EVENT_TYPES:
        raise TypeError(f"{name} is not a registered campaign event")
    return {
        "v": EVENT_SCHEMA_VERSION,
        "seq": seq,
        "ts": ts,
        "type": name,
        "data": dataclasses.asdict(event),
    }


def decode_event(record: Mapping) -> ParsedEvent:
    """Rebuild the typed event from an envelope dict.

    Raises ``ValueError`` on unknown event types, future schema
    versions or payloads not matching the event's fields.
    """
    version = record.get("v")
    if version != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported event schema version {version!r} "
            f"(this build reads v{EVENT_SCHEMA_VERSION})"
        )
    name = record.get("type")
    cls = _EVENT_TYPES.get(name)
    if cls is None:
        raise ValueError(f"unknown event type {name!r}")
    data = dict(record["data"])
    fields = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - fields
    if unknown:
        raise ValueError(f"{name}: unexpected fields {sorted(unknown)}")
    try:
        event = cls(**data)
    except TypeError as exc:
        raise ValueError(f"{name}: {exc}") from None
    # Restore tuple-typed fields lost in JSON round-trips.
    if isinstance(event, OutcomeClassified):
        event = dataclasses.replace(
            event, propagated_outputs=tuple(event.propagated_outputs)
        )
    elif isinstance(event, LintReported):
        event = dataclasses.replace(
            event,
            codes=tuple(event.codes),
            diagnostics=tuple(event.diagnostics),
        )
    elif isinstance(event, ArcsPruned):
        event = dataclasses.replace(
            event, targets=tuple(tuple(pair) for pair in event.targets)
        )
    return ParsedEvent(seq=int(record["seq"]), ts=float(record["ts"]), event=event)


def read_events(path) -> Iterator[ParsedEvent]:
    """Parse an ``events.jsonl`` file into typed events, in order."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield decode_event(json.loads(line))
            except (json.JSONDecodeError, ValueError, KeyError) as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None


def validate_events(path) -> int:
    """Round-trip every line through the typed parser; return the count.

    Each decoded event is re-encoded and compared field-for-field
    against the original line, so schema drift between writer and
    parser cannot pass silently.  Used by the CI schema-validation
    step (``repro obs validate``).
    """
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                parsed = decode_event(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            rebuilt = encode_event(parsed.event, seq=parsed.seq, ts=parsed.ts)
            if json.loads(json.dumps(rebuilt)) != record:
                raise ValueError(
                    f"{path}:{lineno}: round-trip mismatch for "
                    f"{parsed.type_name}"
                )
            count += 1
    return count


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class JsonlSink:
    """Appends one JSON envelope per line to a file."""

    def __init__(self, path) -> None:
        self._path = path
        self._handle: IO[str] = open(path, "w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        json.dump(record, self._handle, separators=(",", ":"))
        self._handle.write("\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class RingBufferSink:
    """Keeps the last ``capacity`` envelopes in memory.

    ``capacity=None`` keeps everything — that is the return channel the
    parallel campaign workers use to ship their events to the parent.
    """

    def __init__(self, capacity: int | None = 1024) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._capacity = capacity
        self._records: list[dict] = []
        self._dropped = 0

    def emit(self, record: dict) -> None:
        self._records.append(record)
        if self._capacity is not None and len(self._records) > self._capacity:
            evicted = len(self._records) - self._capacity
            del self._records[0:evicted]
            self._dropped += evicted

    def close(self) -> None:
        pass

    @property
    def records(self) -> list[dict]:
        """The buffered envelopes, oldest first."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Envelopes evicted because the buffer was full.

        A non-zero count means the buffered stream is *incomplete*:
        the observer surfaces it as the ``events.dropped`` counter in
        ``metrics.json`` and ``repro obs summarize`` prints a warning.
        """
        return self._dropped

    def events(self) -> list[ParsedEvent]:
        """The buffered envelopes decoded back into typed events."""
        return [decode_event(record) for record in self._records]


class PrettyPrintSink:
    """One-line human narration of selected events (default: stderr)."""

    #: Event types narrated; the per-IR chatter is skipped.
    NARRATED = frozenset(
        {"CampaignStarted", "LintReported", "ChunkCompleted", "CampaignFinished"}
    )

    def __init__(self, stream: TextIO | None = None, verbose: bool = False):
        self._stream = stream if stream is not None else sys.stderr
        self._verbose = verbose

    def emit(self, record: dict) -> None:
        name = record["type"]
        if not self._verbose and name not in self.NARRATED:
            return
        data = record["data"]
        if name == "CampaignStarted":
            text = (
                f"campaign started: {data['total_runs']} runs "
                f"({data['n_cases']} cases x {data['n_targets']} targets), "
                f"{data['mode']}"
            )
        elif name == "LintReported":
            text = (
                f"lint: {data['errors']} error(s), {data['warnings']} "
                f"warning(s) on system {data['system']!r}"
            )
        elif name == "ChunkCompleted":
            text = (
                f"chunk {data['chunk_index']} ({data['case_id']}): "
                f"{data['n_runs']} runs in {data['elapsed_s']:.2f}s"
            )
        elif name == "CampaignFinished":
            text = (
                f"campaign finished: {data['n_runs']} runs "
                f"({data['n_fired']} fired) in {data['elapsed_s']:.2f}s"
            )
        else:
            text = f"{name} {data}"
        print(f"[obs {record['seq']:>6}] {text}", file=self._stream)

    def close(self) -> None:
        pass


class MultiSink:
    """Fans every envelope out to several sinks."""

    def __init__(self, *sinks) -> None:
        self._sinks = tuple(sinks)

    @property
    def sinks(self) -> tuple:
        """The fan-out targets, in emission order."""
        return self._sinks

    def emit(self, record: dict) -> None:
        for sink in self._sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


class EventStream:
    """The emitting side: assigns envelopes and feeds the sink."""

    def __init__(self, sink) -> None:
        self._sink = sink
        self._seq = 0

    def emit(self, event: Any, ts: float | None = None) -> None:
        """Emit one typed event (``ts`` override for re-emission)."""
        record = encode_event(
            event, seq=self._seq, ts=ts if ts is not None else time.time()
        )
        self._seq += 1
        self._sink.emit(record)

    def close(self) -> None:
        self._sink.close()

    @property
    def sink(self):
        """The sink (possibly a :class:`MultiSink`) receiving envelopes."""
        return self._sink

    @property
    def n_emitted(self) -> int:
        return self._seq


# ---------------------------------------------------------------------------
# Run manifest
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunManifest:
    """Identity card of one campaign execution.

    Stored inside the :class:`CampaignStarted` event (and hence in
    every ``events.jsonl``), so each artifact a campaign produces is
    attributable to an exact configuration and host.
    """

    schema_version: int
    package_version: str
    config_hash: str
    seed: int
    duration_ms: int
    injection_times_ms: tuple[int, ...]
    n_error_models: int
    n_cases: int
    n_targets: int
    total_runs: int
    reuse_golden_prefix: bool
    fast_forward: bool
    backend: str
    host: dict
    created_unix: float
    #: Name of the injected system model.
    system: str = ""
    #: Module topology: name -> {"inputs": [...], "outputs": [...]}, in
    #: system order.  Carried so a recorded stream is self-contained:
    #: the dashboard reducer reconstructs the (module, input, output)
    #: pair universe — the denominators of measured permeability — from
    #: the events file alone, without the Python system model.
    modules: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _hash_config(config, targets: tuple[tuple[str, str], ...]) -> str:
    """Stable digest of everything determining campaign outcomes."""
    keys = {
        "duration_ms": config.duration_ms,
        "injection_times_ms": list(config.injection_times_ms),
        "error_models": [model.name for model in config.error_models],
        "targets": [list(pair) for pair in targets],
        "seed": config.seed,
        "reuse_golden_prefix": config.reuse_golden_prefix,
        "fast_forward": config.fast_forward,
        "backend": config.backend,
    }
    # Key present only when set, so pre-existing hashes stay stable.
    if getattr(config, "static_prune", False):
        keys["static_prune"] = True
    if getattr(config, "adaptive", False):
        keys["adaptive"] = True
        keys["ci_width"] = config.ci_width
        keys["round_size"] = config.round_size
        keys["max_trials_per_target"] = config.max_trials_per_target
        keys["budget_policy"] = config.budget_policy
    canonical = json.dumps(keys, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def build_manifest(campaign) -> RunManifest:
    """Build the manifest of an :class:`~repro.injection.campaign.InjectionCampaign`."""
    from repro import __version__

    config = campaign.config
    system = campaign._system
    return RunManifest(
        schema_version=EVENT_SCHEMA_VERSION,
        package_version=__version__,
        config_hash=_hash_config(config, campaign.targets),
        seed=config.seed,
        duration_ms=config.duration_ms,
        injection_times_ms=tuple(config.injection_times_ms),
        n_error_models=len(config.error_models),
        n_cases=len(campaign.case_ids()),
        n_targets=len(campaign.targets),
        total_runs=campaign.total_runs(),
        reuse_golden_prefix=config.reuse_golden_prefix,
        fast_forward=config.fast_forward,
        backend=config.backend,
        host={
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        created_unix=time.time(),
        system=system.name,
        modules={
            name: {
                "inputs": list(system.module(name).inputs),
                "outputs": list(system.module(name).outputs),
            }
            for name in system.module_names()
        },
    )
