"""Propagation tracing: measured permeability as a live observable.

The analytical side of the paper assigns each (module-input, output)
pair a permeability :math:`P^M_{i,k}`; the experimental side estimates
it as :math:`n_{err}/n_{inj}` after the campaign finished.  This module
closes the loop *during* the campaign: every injection run contributes
one :class:`PropagationRecord` (which signals diverged from the Golden
Run, and when), and the records fold incrementally into per-arc
:class:`ArcCounts` — so measured permeability is available at any point
of a running campaign and can be diffed against an analytical matrix
(:meth:`repro.core.permeability.PermeabilityMatrix.diff`).

The folding applies exactly the same rules as
:meth:`~repro.injection.outcomes.CampaignResult.pair_counts` with its
defaults (direct-error rule, unfired traps count in the denominator),
so :meth:`PropagationObservations.to_matrix` agrees with
:func:`~repro.injection.estimator.estimate_matrix` over the same
outcomes — a property the test suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.permeability import PermeabilityMatrix
from repro.core.stats import wilson_interval
from repro.injection.outcomes import CampaignResult, InjectionOutcome
from repro.model.system import SystemModel

__all__ = ["PropagationRecord", "ArcCounts", "PropagationObservations"]


@dataclass(frozen=True)
class PropagationRecord:
    """Per-IR divergence fingerprint: what moved, and when it first did."""

    case_id: str
    module: str
    input_signal: str
    time_ms: int
    error_model: str
    fired: bool
    #: Every deviating signal with its first-divergence millisecond,
    #: earliest first.
    diverged: tuple[tuple[str, int], ...]
    #: The injected module's outputs counting as direct errors.
    propagated_outputs: tuple[str, ...]


@dataclass
class ArcCounts:
    """Observed propagation tallies of one (module, input → output) arc."""

    module: str
    input_signal: str
    output_signal: str
    n_injections: int = 0
    n_propagated: int = 0
    #: Sum/count of (first output divergence − injection time), for the
    #: arc's mean observed propagation latency.
    latency_sum_ms: int = 0
    latency_n: int = 0

    @property
    def observed_permeability(self) -> float:
        """The running :math:`n_{err}/n_{inj}` estimate of the arc."""
        if self.n_injections == 0:
            return 0.0
        return self.n_propagated / self.n_injections

    @property
    def mean_latency_ms(self) -> float | None:
        """Mean observed propagation latency, or ``None`` if never hit."""
        if self.latency_n == 0:
            return None
        return self.latency_sum_ms / self.latency_n

    def wilson_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score interval of the arc's observed permeability.

        Delegates to :func:`repro.core.stats.wilson_interval` — the same
        implementation behind
        :meth:`~repro.core.permeability.PermeabilityEstimate.wilson_interval`
        — so live observations and post-hoc estimates share one CI
        definition.  An arc without injections spans the whole ``[0, 1]``
        range (no information).
        """
        return wilson_interval(self.n_propagated, self.n_injections, z)


class PropagationObservations:
    """Incremental fold of injection outcomes into per-arc counts."""

    def __init__(
        self, system: SystemModel, keep_records: bool = False
    ) -> None:
        self._system = system
        self._arcs: dict[tuple[str, str, str], ArcCounts] = {}
        self._keep_records = keep_records
        self._records: list[PropagationRecord] = []
        self._n_outcomes = 0

    @property
    def system(self) -> SystemModel:
        return self._system

    def __len__(self) -> int:
        """Number of folded injection outcomes."""
        return self._n_outcomes

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------

    def record(self, outcome: InjectionOutcome) -> PropagationRecord:
        """Fold one injection outcome; returns its per-IR record."""
        spec = self._system.module(outcome.module)
        input_is_feedback = outcome.input_signal in spec.outputs
        propagated: list[str] = []
        for output_signal in spec.outputs:
            key = (outcome.module, outcome.input_signal, output_signal)
            arc = self._arcs.get(key)
            if arc is None:
                arc = self._arcs[key] = ArcCounts(*key)
            arc.n_injections += 1
            if not outcome.fired:
                continue
            if outcome.direct_output_error(
                output_signal, input_is_feedback=input_is_feedback
            ):
                arc.n_propagated += 1
                propagated.append(output_signal)
                divergence = outcome.comparison.divergence_time(output_signal)
                assert divergence is not None
                arc.latency_sum_ms += divergence - outcome.scheduled_time_ms
                arc.latency_n += 1
        diverged = tuple(
            (signal, time)
            for time, signal in sorted(
                (time, signal)
                for signal, time in outcome.comparison.first_divergence_ms.items()
                if time is not None
            )
        )
        record = PropagationRecord(
            case_id=outcome.case_id,
            module=outcome.module,
            input_signal=outcome.input_signal,
            time_ms=outcome.scheduled_time_ms,
            error_model=outcome.error_model,
            fired=outcome.fired,
            diverged=diverged,
            propagated_outputs=tuple(propagated),
        )
        self._n_outcomes += 1
        if self._keep_records:
            self._records.append(record)
        return record

    def record_all(self, outcomes: Iterable[InjectionOutcome]) -> None:
        for outcome in outcomes:
            self.record(outcome)

    @classmethod
    def from_campaign_result(
        cls, result: CampaignResult, keep_records: bool = False
    ) -> "PropagationObservations":
        observations = cls(result.system, keep_records=keep_records)
        observations.record_all(result)
        return observations

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def records(self) -> tuple[PropagationRecord, ...]:
        """Per-IR records (only kept with ``keep_records=True``)."""
        return tuple(self._records)

    def arcs(self) -> Iterator[ArcCounts]:
        """All observed arcs, in first-seen order."""
        return iter(self._arcs.values())

    def arc(self, module: str, input_signal: str, output_signal: str) -> ArcCounts:
        key = (module, input_signal, output_signal)
        try:
            return self._arcs[key]
        except KeyError:
            raise KeyError(
                f"no observations for arc {module}: "
                f"{input_signal} -> {output_signal}"
            ) from None

    def hottest_arcs(self, n: int = 10) -> list[ArcCounts]:
        """Arcs by descending propagation count (ties: by permeability)."""
        return sorted(
            self._arcs.values(),
            key=lambda arc: (-arc.n_propagated, -arc.observed_permeability),
        )[:n]

    def to_matrix(self) -> PermeabilityMatrix:
        """The measured permeability matrix of the observations so far.

        Arcs without injections stay unset (sparse matrix) — measured
        zero and unmeasured remain distinguishable, as in
        :func:`~repro.injection.estimator.estimate_matrix`.
        """
        matrix = PermeabilityMatrix(self._system)
        for arc in self._arcs.values():
            if arc.n_injections == 0:
                continue
            matrix.set_counts(
                arc.module,
                arc.input_signal,
                arc.output_signal,
                n_errors=arc.n_propagated,
                n_injections=arc.n_injections,
            )
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PropagationObservations {self._n_outcomes} outcomes, "
            f"{len(self._arcs)} arcs>"
        )
