"""Line tailer for JSONL event files, tolerant of in-flight writes.

The dashboard's replay mode (``repro dash --events file --follow``) and
``repro obs tail`` both read an ``events.jsonl`` that may still be
written by a running campaign.  :func:`tail_lines` therefore never
assumes a line is complete until its newline arrived: partial trailing
bytes stay buffered across polls, so a reader positioned mid-write sees
the line exactly once, whole, on the next poll.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

__all__ = ["tail_lines"]


def tail_lines(
    path,
    follow: bool = False,
    poll_interval_s: float = 0.2,
    stop: Callable[[], bool] | None = None,
) -> Iterator[str]:
    """Yield complete lines (newline stripped) of a growing text file.

    Parameters
    ----------
    path:
        The file to read.  With ``follow=False`` the generator drains
        the file once and stops (a trailing line without a newline is
        still yielded — the writer is assumed done).  With
        ``follow=True`` it keeps polling for appended data until
        ``stop()`` returns true.
    poll_interval_s:
        Sleep between polls when no new data arrived (follow mode).
    stop:
        Optional predicate checked once per poll; lets a server thread
        shut the tail down cleanly.
    """
    buffer = ""
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            chunk = handle.read(65536)
            if chunk:
                buffer += chunk
                while True:
                    newline = buffer.find("\n")
                    if newline < 0:
                        break
                    yield buffer[:newline]
                    buffer = buffer[newline + 1 :]
                continue
            if not follow:
                if buffer.strip():
                    yield buffer
                return
            if stop is not None and stop():
                return
            time.sleep(poll_interval_s)
