"""Stdlib-only HTTP server for the live resilience dashboard.

:class:`DashboardServer` wraps a ``ThreadingHTTPServer`` (one thread
per connection, no third-party dependency) exposing three routes over
one :class:`~repro.obs.dash.sink.DashboardSink`:

``GET /``
    The self-contained single-file HTML/JS dashboard
    (:data:`repro.obs.dash.page.DASHBOARD_HTML`).
``GET /api/snapshot``
    The reducer's current JSON snapshot (see
    :meth:`~repro.obs.dash.reducer.CampaignStateReducer.snapshot`).
``GET /api/events``
    Server-Sent Events: replays every envelope seen so far (``id:`` is
    the envelope's ``seq``), then streams new ones as they arrive.  A
    ``: keepalive`` comment goes out during idle periods; an
    ``event: end`` frame marks a closed sink (campaign over and replay
    drained).

The server never touches the campaign engine — it only reads the sink,
so the same class serves a live campaign (``repro campaign --dash``)
and an offline replay (``repro dash --events file``).
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.dash.page import DASHBOARD_HTML
from repro.obs.dash.sink import DashboardSink

__all__ = ["DashboardServer"]

#: Seconds between SSE keepalive comments while no event arrives.
_KEEPALIVE_S = 5.0


def _make_handler(sink: DashboardSink) -> type[BaseHTTPRequestHandler]:
    class _DashboardHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # the campaign's own progress output stays readable

        def _send(self, status: int, content_type: str, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Cache-Control", "no-store")
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            if path in ("/", "/index.html"):
                self._send(
                    200, "text/html; charset=utf-8", DASHBOARD_HTML.encode("utf-8")
                )
            elif path == "/api/snapshot":
                body = json.dumps(sink.snapshot()).encode("utf-8")
                self._send(200, "application/json", body)
            elif path == "/api/events":
                self._stream_events()
            else:
                self._send(404, "text/plain; charset=utf-8", b"not found\n")

        def _write_frame(self, record: dict) -> None:
            payload = json.dumps(record, separators=(",", ":"))
            frame = f"id: {record.get('seq', '')}\ndata: {payload}\n\n"
            self.wfile.write(frame.encode("utf-8"))
            self.wfile.flush()

        def _stream_events(self) -> None:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-store")
            self.send_header("Connection", "close")
            self.end_headers()
            history, live = sink.subscribe()
            try:
                for record in history:
                    self._write_frame(record)
                while True:
                    try:
                        record = live.get(timeout=_KEEPALIVE_S)
                    except queue.Empty:
                        self.wfile.write(b": keepalive\n\n")
                        self.wfile.flush()
                        continue
                    if record is None:  # sink closed
                        self.wfile.write(b"event: end\ndata: {}\n\n")
                        self.wfile.flush()
                        return
                    self._write_frame(record)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to clean up but the queue
            finally:
                sink.unsubscribe(live)

    return _DashboardHandler


class DashboardServer:
    """Lifecycle wrapper: bind, serve on a daemon thread, shut down."""

    def __init__(
        self, sink: DashboardSink, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._sink = sink
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(sink))
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def sink(self) -> DashboardSink:
        return self._sink

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def start(self) -> "DashboardServer":
        """Serve on a background daemon thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-dash",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
