"""repro.obs.dash — the live resilience dashboard.

Four stdlib-only pieces over the recorded campaign event stream:

* :mod:`repro.obs.dash.reducer` — a pure
  :class:`~repro.obs.dash.reducer.CampaignStateReducer` folding events
  into one JSON-able snapshot, pinned equal to the post-hoc
  :func:`~repro.injection.estimator.estimate_matrix` /
  :func:`~repro.injection.latency.lifetime_statistics` analyses;
* :mod:`repro.obs.dash.sink` — a
  :class:`~repro.obs.dash.sink.DashboardSink` teeing a live
  :class:`~repro.obs.observer.CampaignObserver` stream into the reducer
  and SSE subscribers (serial and parallel campaigns alike);
* :mod:`repro.obs.dash.server` — a ``ThreadingHTTPServer`` exposing
  ``GET /api/snapshot``, ``GET /api/events`` (SSE) and the embedded
  single-file HTML dashboard;
* :mod:`repro.obs.dash.tailer` — a partial-line-tolerant JSONL tailer
  powering the offline replay mode (``repro dash --events file
  [--follow]``) and ``repro obs tail``.

See the "Live dashboard" section of ``docs/OBSERVABILITY.md``.
"""

from repro.obs.dash.page import DASHBOARD_HTML
from repro.obs.dash.reducer import (
    SNAPSHOT_SCHEMA_VERSION,
    CampaignStateReducer,
    validate_snapshot,
)
from repro.obs.dash.server import DashboardServer
from repro.obs.dash.sink import DashboardSink
from repro.obs.dash.tailer import tail_lines

__all__ = [
    "DASHBOARD_HTML",
    "SNAPSHOT_SCHEMA_VERSION",
    "CampaignStateReducer",
    "DashboardServer",
    "DashboardSink",
    "tail_lines",
    "validate_snapshot",
]
