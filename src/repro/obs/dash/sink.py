"""DashboardSink: tee the live event stream into reducer + subscribers.

A :class:`DashboardSink` plugs into a
:class:`~repro.obs.observer.CampaignObserver`'s sink chain (next to the
``JsonlSink`` writing ``events.jsonl``) and does two things with every
envelope:

* fold it into a :class:`~repro.obs.dash.reducer.CampaignStateReducer`
  (the ``GET /api/snapshot`` payload), and
* fan it out to any number of SSE subscriber queues
  (``GET /api/events``).

Both the serial and the parallel campaign path are covered for free:
parallel workers ship their events over the chunk-result channel and
the parent re-emits them through its own sink chain
(:meth:`~repro.obs.observer.CampaignObserver.absorb_worker`), so a sink
attached to the *parent* observer sees every worker event too.

Everything is guarded by one lock — the campaign thread emits while
HTTP server threads snapshot and subscribe concurrently.
"""

from __future__ import annotations

import json
import queue
import threading

from repro.obs.dash.reducer import CampaignStateReducer

__all__ = ["DashboardSink"]

#: Sentinel put on subscriber queues when the sink closes.
_CLOSED = None


class DashboardSink:
    """Event sink feeding a state reducer and live SSE subscribers."""

    def __init__(self, reducer: CampaignStateReducer | None = None) -> None:
        self._reducer = reducer if reducer is not None else CampaignStateReducer()
        self._lock = threading.Lock()
        self._history: list[dict] = []
        self._subscribers: list[queue.SimpleQueue] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Sink protocol
    # ------------------------------------------------------------------

    def emit(self, record: dict) -> None:
        with self._lock:
            try:
                self._reducer.feed(record)
            except (ValueError, KeyError):
                # A malformed envelope must not kill the campaign; the
                # reducer tracks the damage for the snapshot instead.
                self._reducer.skipped_lines += 1
            self._history.append(record)
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber.put(record)

    def emit_line(self, line: str) -> None:
        """Emit one raw JSONL line (the ``repro dash`` replay path).

        Undecodable lines — a torn tail from a crashed campaign, or a
        write caught mid-flush while tailing — are counted as damage on
        the reducer and otherwise ignored.
        """
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            with self._lock:
                self._reducer.skipped_lines += 1
            return
        if not isinstance(record, dict):
            with self._lock:
                self._reducer.skipped_lines += 1
            return
        self.emit(record)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber.put(_CLOSED)

    # ------------------------------------------------------------------
    # Server-side access
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def snapshot(self) -> dict:
        """The reducer's current snapshot (thread-safe)."""
        with self._lock:
            return self._reducer.snapshot()

    def subscribe(self) -> tuple[list[dict], "queue.SimpleQueue"]:
        """Register an SSE consumer: replay history, then tail.

        Returns ``(history, live_queue)`` atomically: every envelope is
        either in the returned history list or will arrive on the
        queue, never both, never neither.  The queue yields envelope
        dicts and a ``None`` sentinel once the sink closes.
        """
        subscriber: queue.SimpleQueue = queue.SimpleQueue()
        with self._lock:
            history = list(self._history)
            if self._closed:
                subscriber.put(_CLOSED)
            else:
                self._subscribers.append(subscriber)
        return history, subscriber

    def unsubscribe(self, subscriber: "queue.SimpleQueue") -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass
