"""The self-contained single-file HTML/JS dashboard.

Served at ``GET /`` by :class:`~repro.obs.dash.server.DashboardServer`.
No build step, no external assets, no framework: the page subscribes to
``/api/events`` (SSE) to learn that something changed and re-fetches
``/api/snapshot`` (throttled) for the authoritative state — the reducer
on the server is the single source of truth, so the page never has to
re-implement the folding rules.

Visual conventions: the permeability heatmap uses one sequential blue
ramp (light = low, dark = high — never a rainbow), text stays in ink
tokens rather than series colors, every cell and bar carries a hover
tooltip, and the palette swaps for dark mode via
``prefers-color-scheme``.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro &middot; live resilience dashboard</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --text-muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --seq-100: #cde2fb; --seq-150: #b7d3f6; --seq-200: #9ec5f4;
    --seq-250: #86b6ef; --seq-300: #6da7ec; --seq-350: #5598e7;
    --seq-400: #3987e5; --seq-450: #2a78d6; --seq-500: #256abf;
    --seq-550: #1c5cab; --seq-600: #184f95; --seq-650: #104281;
    --seq-700: #0d366b;
    --series-1: #2a78d6;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5;
    }
  }
  body.viz-root {
    margin: 0; padding: 24px;
    background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; font-weight: 600; margin: 0 0 2px; }
  .sub { color: var(--text-secondary); margin-bottom: 20px; }
  .cards { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
  .card {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 16px; min-width: 120px;
  }
  .card .value { font-size: 24px; font-weight: 600; }
  .card .label { color: var(--text-muted); font-size: 12px; }
  .panel {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 16px; margin-bottom: 20px;
  }
  .panel h2 { font-size: 14px; font-weight: 600; margin: 0 0 12px; }
  .progress-track {
    height: 8px; border-radius: 4px; background: var(--grid);
    overflow: hidden;
  }
  .progress-fill {
    height: 100%; border-radius: 4px; background: var(--series-1);
    width: 0; transition: width .3s;
  }
  .progress-note { color: var(--text-secondary); margin-top: 6px; font-size: 12px; }
  table.heatmap { border-collapse: separate; border-spacing: 2px; }
  table.heatmap th {
    font-weight: 400; font-size: 12px; color: var(--text-muted);
    text-align: left; padding: 2px 6px; white-space: nowrap;
  }
  table.heatmap th.col { text-align: center; }
  table.heatmap td.cell {
    width: 46px; height: 26px; border-radius: 4px; text-align: center;
    font-size: 11px; font-variant-numeric: tabular-nums; cursor: default;
  }
  table.heatmap td.empty { background: transparent; border: 1px dashed var(--grid); }
  .hist { display: flex; align-items: flex-end; gap: 2px; height: 120px; }
  .hist .bar-slot { flex: 1; display: flex; flex-direction: column;
    justify-content: flex-end; align-items: stretch; height: 100%; }
  .hist .bar {
    background: var(--series-1); border-radius: 4px 4px 0 0; min-height: 0;
  }
  .hist-labels { display: flex; gap: 2px; margin-top: 4px; }
  .hist-labels span {
    flex: 1; text-align: center; font-size: 10px; color: var(--text-muted);
    font-variant-numeric: tabular-nums;
  }
  #tooltip {
    position: fixed; display: none; pointer-events: none; z-index: 10;
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 6px; padding: 6px 10px; font-size: 12px;
    color: var(--text-primary); box-shadow: 0 2px 8px rgba(0,0,0,.15);
    white-space: nowrap;
  }
  #tooltip .t2 { color: var(--text-secondary); }
  .statusline { color: var(--text-muted); font-size: 12px; }
</style>
</head>
<body class="viz-root">
<h1>Error-propagation campaign</h1>
<div class="sub" id="subtitle">waiting for events&hellip;</div>

<div class="cards" id="cards"></div>

<div class="panel">
  <h2>Progress</h2>
  <div class="progress-track"><div class="progress-fill" id="pfill"></div></div>
  <div class="progress-note" id="pnote"></div>
</div>

<div class="panel">
  <h2>Observed permeability P<sup>M</sup><sub>i,k</sub> (direct errors / injections)</h2>
  <div id="heatmap"></div>
</div>

<div class="panel">
  <h2>Error lifetime to proven reconvergence [ms]</h2>
  <div class="hist" id="hist"></div>
  <div class="hist-labels" id="histlabels"></div>
  <div class="progress-note" id="histnote"></div>
</div>

<div class="statusline" id="statusline"></div>
<div id="tooltip"></div>

<script>
"use strict";
var RAMP = ["--seq-100","--seq-150","--seq-200","--seq-250","--seq-300",
            "--seq-350","--seq-400","--seq-450","--seq-500","--seq-550",
            "--seq-600","--seq-650","--seq-700"];
function rampVar(value) {
  var index = Math.min(RAMP.length - 1,
                       Math.floor(value * (RAMP.length - 1) + 1e-9));
  return "var(" + RAMP[index] + ")";
}
var tooltip = document.getElementById("tooltip");
function showTip(evt, html) {
  tooltip.innerHTML = html;
  tooltip.style.display = "block";
  var x = Math.min(evt.clientX + 12, window.innerWidth - tooltip.offsetWidth - 8);
  tooltip.style.left = x + "px";
  tooltip.style.top = (evt.clientY + 12) + "px";
}
function hideTip() { tooltip.style.display = "none"; }

function card(label, value) {
  return '<div class="card"><div class="value">' + value +
         '</div><div class="label">' + label + "</div></div>";
}
function fmt(x, digits) {
  return (x === null || x === undefined) ? "&ndash;" : x.toFixed(digits);
}

function render(s) {
  var man = s.campaign.manifest || {};
  var parts = [];
  if (man.system) parts.push("system <b>" + man.system + "</b>");
  if (s.campaign.backend) parts.push(s.campaign.backend + " backend");
  parts.push(s.campaign.mode + " mode");
  if (man.config_hash) parts.push("config " + man.config_hash);
  parts.push("state: " + s.state);
  document.getElementById("subtitle").innerHTML = parts.join(" &middot; ");

  var c = s.counters;
  var cards = card("runs", c.n_runs) + card("fired", c.n_fired) +
    card("reconverged", (c.reconverged_fraction * 100).toFixed(0) + "%") +
    card("ms fast-forwarded", c.frames_fast_forwarded) +
    card("checkpoint reuses", c.checkpoint_reuses) +
    card("cached", c.cached || 0) +
    card("chunks", c.chunks_completed);
  document.getElementById("cards").innerHTML = cards;

  var p = s.progress;
  var pct = p.total ? (100 * p.done / p.total) : 0;
  document.getElementById("pfill").style.width = pct.toFixed(1) + "%";
  var note = p.done + " / " + p.total + " injection runs (" +
             pct.toFixed(0) + "%)";
  if (p.rate_runs_per_s) note += " &middot; " + p.rate_runs_per_s.toFixed(1) + " runs/s";
  if (p.eta_s !== null && p.eta_s !== undefined)
    note += " &middot; ETA " + p.eta_s.toFixed(0) + "s";
  if (p.elapsed_s !== null && p.elapsed_s !== undefined)
    note += " &middot; finished in " + p.elapsed_s.toFixed(1) + "s";
  document.getElementById("pnote").innerHTML = note;

  renderHeatmap(s.matrix);
  renderHistogram(s.lifetimes);

  var st = s.stream;
  document.getElementById("statusline").textContent =
    st.n_events + " events (last seq " + st.last_seq + ")" +
    (st.skipped_lines ? " \\u00b7 " + st.skipped_lines + " damaged lines skipped" : "");
}

function renderHeatmap(matrix) {
  var box = document.getElementById("heatmap");
  if (!matrix.entries.length) {
    box.innerHTML = '<span class="statusline">no classified outcomes yet</span>';
    return;
  }
  var rows = [], rowIndex = {}, cols = [], colIndex = {};
  matrix.entries.forEach(function (e) {
    var rk = e.module + "." + e.input;
    if (!(rk in rowIndex)) { rowIndex[rk] = rows.length; rows.push(rk); }
    if (!(e.output in colIndex)) { colIndex[e.output] = cols.length; cols.push(e.output); }
  });
  var grid = {};
  matrix.entries.forEach(function (e) {
    grid[e.module + "." + e.input + "|" + e.output] = e;
  });
  var html = '<table class="heatmap"><tr><th></th>';
  cols.forEach(function (cName) { html += '<th class="col">' + cName + "</th>"; });
  html += "</tr>";
  rows.forEach(function (rName) {
    html += "<tr><th>" + rName + "</th>";
    cols.forEach(function (cName) {
      var e = grid[rName + "|" + cName];
      if (!e) { html += '<td class="cell empty"></td>'; return; }
      var dark = e.value > 0.45;
      html += '<td class="cell" data-key="' + rName + "|" + cName +
        '" style="background:' + rampVar(e.value) +
        ";color:" + (dark ? "#ffffff" : "var(--text-primary)") + '">' +
        e.value.toFixed(2) + "</td>";
    });
    html += "</tr>";
  });
  html += "</table>";
  box.innerHTML = html;
  box.querySelectorAll("td.cell[data-key]").forEach(function (cell) {
    cell.addEventListener("mousemove", function (evt) {
      var e = grid[cell.getAttribute("data-key")];
      showTip(evt, "<b>" + e.module + "</b>: " + e.input + " &rarr; " + e.output +
        '<br>P = ' + e.value.toFixed(3) + " (" + e.n_errors + "/" + e.n_injections +
        ')<br><span class="t2">95% Wilson [' + e.wilson[0].toFixed(3) + ", " +
        e.wilson[1].toFixed(3) + "]</span>");
    });
    cell.addEventListener("mouseleave", hideTip);
  });
}

function renderHistogram(lt) {
  var hist = document.getElementById("hist");
  var labels = document.getElementById("histlabels");
  var maxCount = Math.max.apply(null, lt.counts.concat([1]));
  var html = "", lhtml = "";
  lt.counts.forEach(function (count, index) {
    var label = index < lt.buckets.length
      ? "\\u2264" + lt.buckets[index] : "&gt;" + lt.buckets[lt.buckets.length - 1];
    var height = count ? Math.max(2, 100 * count / maxCount) : 0;
    html += '<div class="bar-slot"><div class="bar" data-n="' + count +
            '" data-l="' + label + '" style="height:' + height + '%"></div></div>';
    lhtml += "<span>" + label + "</span>";
  });
  hist.innerHTML = html;
  labels.innerHTML = lhtml;
  hist.querySelectorAll(".bar").forEach(function (bar) {
    bar.addEventListener("mousemove", function (evt) {
      showTip(evt, "<b>" + bar.getAttribute("data-n") + "</b> lifetimes " +
                   bar.getAttribute("data-l") + " ms");
    });
    bar.addEventListener("mouseleave", hideTip);
  });
  document.getElementById("histnote").innerHTML =
    lt.n_samples + " measured lifetimes, " + lt.n_censored +
    " right-censored (error alive at run end)";
}

var pending = false;
function refresh() {
  if (pending) return;
  pending = true;
  fetch("/api/snapshot").then(function (r) { return r.json(); })
    .then(function (s) { pending = false; render(s); })
    .catch(function () { pending = false; });
}
refresh();
var throttle = null;
try {
  var source = new EventSource("/api/events");
  source.onmessage = function () {
    if (throttle) return;
    throttle = setTimeout(function () { throttle = null; refresh(); }, 400);
  };
  source.addEventListener("end", function () { refresh(); source.close(); });
  source.onerror = function () { setTimeout(refresh, 2000); };
} catch (err) {
  setInterval(refresh, 2000);
}
</script>
</body>
</html>
"""
