"""Pure event-stream state reducer: one live JSON-able campaign snapshot.

:class:`CampaignStateReducer` folds the recorded campaign event stream
(:class:`~repro.obs.events.CampaignStarted` ...
:class:`~repro.obs.events.CampaignFinished`) into a single snapshot
dict — progress and ETA, the evolving observed permeability matrix with
Wilson intervals per arc, the error-lifetime histogram, reconvergence
fraction and kernel/fast-forward counters.  The reducer is *pure* over
the stream: it never touches the campaign engine, so it works equally
against a live in-process event feed (:class:`~repro.obs.dash.sink.
DashboardSink`), a finished ``events.jsonl`` on disk, or a file still
being written (``repro dash --events ... --follow``).

Parity contract
---------------
The folding applies exactly the rules of the post-hoc analyses, the
same way :mod:`repro.obs.propagation` mirrors
:func:`~repro.injection.estimator.estimate_matrix`:

* :meth:`CampaignStateReducer.matrix_jsonable` over a complete stream
  equals ``estimate_matrix(result).to_jsonable()`` — same pair order
  (the manifest's module topology preserves system order), same
  denominators (every classified outcome counts, fired or not), same
  direct-error numerators (``propagated_outputs`` carries the Section
  7.3 verdict computed by the observer's propagation fold).
* :meth:`CampaignStateReducer.lifetime_statistics` equals
  :func:`repro.injection.latency.lifetime_statistics` field for field,
  including right-censoring and the linear-interpolated median.
* The run counters match :class:`~repro.injection.outcomes.
  CampaignResult` (``n_fired``/``n_reconverged``/
  ``reconverged_fraction``/``frames_fast_forwarded_total``).

The test suite pins all three down for serial and parallel campaigns
under both simulation backends (``tests/test_dash.py``).

The exact-parity matrix requires the event stream to come from an
observer that carried the system model (``CampaignObserver.to_files(...,
system=system)``): only then does ``OutcomeClassified.propagated_outputs``
hold the direct-error outputs rather than the system-less fallback.
"""

from __future__ import annotations

import json
import math
from collections import Counter as TallyCounter
from typing import Any, Iterable, Mapping

from repro.core.permeability import PermeabilityEstimate
from repro.obs.events import (
    ArcsPruned,
    BackendSelected,
    BudgetExhausted,
    CampaignFinished,
    CampaignStarted,
    CheckpointReused,
    CheckpointSaved,
    ChunkCompleted,
    InjectionFired,
    LintReported,
    OutcomeClassified,
    ParsedEvent,
    RoundCompleted,
    RunReconverged,
    RunStarted,
    TargetRetired,
    UnitReused,
    decode_event,
    read_events,
)
from repro.obs.metrics import DEFAULT_MS_BUCKETS

__all__ = ["CampaignStateReducer", "validate_snapshot", "SNAPSHOT_SCHEMA_VERSION"]

#: Version stamp of the snapshot document produced by
#: :meth:`CampaignStateReducer.snapshot`; bump on shape changes.
#: v2: ``counters.pruned`` (runs skipped by static pruning) and pruned
#: targets folded into the matrix denominators.
#: v3: ``counters.cached`` (runs reused from the result store; their
#: replayed OutcomeClassified events still drive the matrix, so the
#: counter is informational, not a denominator).
#: v4: ``adaptive`` section (rounds, retired targets with their
#: achieved Wilson half-widths and stopping reasons, open-target count)
#: fed by the TargetRetired/RoundCompleted/BudgetExhausted events of
#: ``--adaptive`` campaigns; all-zero for exhaustive streams.
SNAPSHOT_SCHEMA_VERSION = 4

#: Metric names surfaced in the snapshot's ``metrics`` subset (the full
#: registry stays in ``metrics.json``; the dashboard shows the headline
#: kernel and fast-forward instruments).
_SNAPSHOT_METRICS = (
    "ff.runs_reconverged",
    "ff.frames_fast_forwarded",
    "kernel.lanes.active",
    "kernel.lanes.retired",
    "kernel.fallback.runs",
    "kernel.scalar_fallback.modules",
    "checkpoint.saved",
    "checkpoint.reused",
    "simulated_ms.skipped",
    "events.dropped",
)


def _percentile(sorted_values: list[int], fraction: float) -> float:
    """Linear-interpolated percentile, identical to
    :func:`repro.injection.latency._percentile`."""
    if not sorted_values:
        raise ValueError("no samples")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(sorted_values[low])
    weight = position - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


class CampaignStateReducer:
    """Incremental fold of campaign events into one snapshot dict.

    Feed envelopes with :meth:`feed` (raw dict), :meth:`feed_parsed`
    (typed) or :meth:`feed_line` (JSONL text, tolerant of truncation);
    read the current state with :meth:`snapshot` at any point — the
    snapshot is meaningful mid-stream (that is the live dashboard) and
    exact over a complete stream (the parity contract above).
    """

    def __init__(self) -> None:
        self.manifest: dict = {}
        self.mode: str = "?"
        self.backend: str | None = None
        self.total_runs: int = 0
        self.state: str = "empty"  # "empty" | "running" | "finished"
        self.elapsed_s: float | None = None
        self.metrics: dict = {}
        self.lint: dict | None = None
        # Stream bookkeeping.
        self.n_events = 0
        self.last_seq: int | None = None
        self.first_ts: float | None = None
        self.last_ts: float | None = None
        self.skipped_lines = 0
        # Run counters.
        self.n_classified = 0
        self.n_golden = 0
        self.n_fired = 0
        self.n_reconverged = 0
        self.frames_fast_forwarded = 0
        self.checkpoints_saved = 0
        self.checkpoint_reuses = 0
        self.skipped_ms = 0
        self.n_chunks = 0
        self.n_pruned_targets = 0
        self.n_pruned_runs = 0
        self.n_cached_units = 0
        self.n_cached_runs = 0
        self.outcome_mix: TallyCounter = TallyCounter()
        # Adaptive (sequential-stopping) state.
        self.n_rounds = 0
        self.n_open_targets: int | None = None
        self.adaptive_trials = 0
        self.retired_targets: list[dict] = []
        self.retired_by_reason: TallyCounter = TallyCounter()
        self.n_unconverged_targets = 0
        # Matrix state: denominators per injected location, numerators
        # per arc; the output universe comes from the manifest topology.
        self._modules: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {}
        self._injections: dict[tuple[str, str], int] = {}
        self._arc_errors: dict[tuple[str, str, str], int] = {}
        # Lifetime state: fired IRs pending reconvergence, keyed by the
        # grid coordinates that uniquely identify one IR.
        self._pending_fired: dict[tuple[str, str, str, int, str], int] = {}
        self._lifetimes: dict[tuple[str, str], list[int]] = {}
        self._lifetimes_sorted = True
        self._histogram_counts = [0] * (len(DEFAULT_MS_BUCKETS) + 1)

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def feed(self, record: Mapping) -> ParsedEvent:
        """Fold one raw envelope dict; returns the decoded event."""
        parsed = decode_event(record)
        self.feed_parsed(parsed)
        return parsed

    def feed_line(self, line: str) -> ParsedEvent | None:
        """Fold one JSONL line; tolerate damage instead of raising.

        Blank, truncated or otherwise undecodable lines are counted in
        :attr:`skipped_lines` and return ``None`` — a dashboard tailing
        a live file must survive partial trailing writes.
        """
        line = line.strip()
        if not line:
            return None
        try:
            return self.feed(json.loads(line))
        except (json.JSONDecodeError, ValueError, KeyError):
            self.skipped_lines += 1
            return None

    def feed_all(self, events: Iterable[ParsedEvent]) -> None:
        for parsed in events:
            self.feed_parsed(parsed)

    @classmethod
    def from_events_file(cls, path) -> "CampaignStateReducer":
        """Fold a recorded ``events.jsonl`` (strict parse, see
        :func:`~repro.obs.events.read_events`)."""
        reducer = cls()
        reducer.feed_all(read_events(path))
        return reducer

    def feed_parsed(self, parsed: ParsedEvent) -> None:
        self.n_events += 1
        self.last_seq = parsed.seq
        self.last_ts = parsed.ts
        if self.first_ts is None:
            self.first_ts = parsed.ts
        event = parsed.event
        if isinstance(event, CampaignStarted):
            self.manifest = dict(event.manifest)
            self.mode = event.mode
            self.total_runs = event.total_runs
            self.state = "running"
            self.backend = self.manifest.get("backend", self.backend)
            self._modules = {
                name: (tuple(spec.get("inputs", ())), tuple(spec.get("outputs", ())))
                for name, spec in self.manifest.get("modules", {}).items()
            }
        elif isinstance(event, BackendSelected):
            self.backend = event.backend
        elif isinstance(event, LintReported):
            self.lint = {
                "system": event.system,
                "errors": event.errors,
                "warnings": event.warnings,
                "info": event.info,
                "codes": list(event.codes),
            }
        elif isinstance(event, ArcsPruned):
            # Pruned targets are exact zero-error measurements: their
            # injections enter the matrix denominators directly (no
            # per-IR events will arrive for them), keeping the matrix
            # equal to estimate_matrix() over the pruned campaign.
            self.n_pruned_targets += len(event.targets)
            self.n_pruned_runs += (
                len(event.targets) * event.n_injections_per_target
            )
            for module, signal in event.targets:
                location = (module, signal)
                self._injections[location] = (
                    self._injections.get(location, 0)
                    + event.n_injections_per_target
                )
        elif isinstance(event, RunStarted):
            if event.kind == "golden":
                self.n_golden += 1
        elif isinstance(event, CheckpointSaved):
            self.checkpoints_saved += 1
        elif isinstance(event, CheckpointReused):
            self.checkpoint_reuses += 1
            self.skipped_ms += event.skipped_ms
        elif isinstance(event, InjectionFired):
            self.n_fired += 1
            key = (
                event.case_id,
                event.module,
                event.signal,
                event.scheduled_ms,
                event.error_model,
            )
            self._pending_fired[key] = event.fired_at_ms
        elif isinstance(event, OutcomeClassified):
            self.n_classified += 1
            self.outcome_mix[event.outcome] += 1
            location = (event.module, event.signal)
            self._injections[location] = self._injections.get(location, 0) + 1
            for output in event.propagated_outputs:
                arc = (event.module, event.signal, output)
                self._arc_errors[arc] = self._arc_errors.get(arc, 0) + 1
        elif isinstance(event, RunReconverged):
            self.n_reconverged += 1
            self.frames_fast_forwarded += event.frames_fast_forwarded
            key = (
                event.case_id,
                event.module,
                event.signal,
                event.time_ms,
                event.error_model,
            )
            fired_at = self._pending_fired.pop(key, None)
            if fired_at is not None:
                lifetime = event.reconverged_at_ms - fired_at
                self._lifetimes.setdefault(
                    (event.module, event.signal), []
                ).append(lifetime)
                self._lifetimes_sorted = False
                self._observe_lifetime(lifetime)
        elif isinstance(event, UnitReused):
            # The row's recorded outcomes are replayed right after this
            # event as ordinary OutcomeClassified events (driving the
            # matrix and progress), so only the reuse itself is counted.
            self.n_cached_units += 1
            self.n_cached_runs += event.n_runs
        elif isinstance(event, ChunkCompleted):
            self.n_chunks += 1
        elif isinstance(event, TargetRetired):
            self.adaptive_trials += event.n_trials
            self.retired_by_reason[event.reason] += 1
            self.retired_targets.append(
                {
                    "module": event.module,
                    "input": event.signal,
                    "n_trials": event.n_trials,
                    "half_width": event.half_width,
                    "reason": event.reason,
                    "round": event.round_index,
                }
            )
        elif isinstance(event, RoundCompleted):
            self.n_rounds += 1
            self.n_open_targets = event.n_open
        elif isinstance(event, BudgetExhausted):
            self.n_unconverged_targets = event.n_targets
        elif isinstance(event, CampaignFinished):
            self.state = "finished"
            self.elapsed_s = event.elapsed_s
            self.metrics = dict(event.metrics)

    def _observe_lifetime(self, lifetime_ms: int) -> None:
        """Bucket one lifetime exactly like the ``ff.error_lifetime.ms``
        histogram (:class:`~repro.obs.metrics.Histogram` semantics)."""
        index = len(DEFAULT_MS_BUCKETS)
        for i, bound in enumerate(DEFAULT_MS_BUCKETS):
            if lifetime_ms <= bound:
                index = i
                break
        self._histogram_counts[index] += 1

    # ------------------------------------------------------------------
    # Derived views (the parity surfaces)
    # ------------------------------------------------------------------

    def matrix_jsonable(self) -> dict:
        """The observed permeability matrix in
        :meth:`~repro.core.permeability.PermeabilityMatrix.to_jsonable`
        format — over a complete stream, exactly equal to
        ``estimate_matrix(result).to_jsonable()``.
        """
        entries = []
        for module, (inputs, outputs) in self._modules.items():
            for input_signal in inputs:
                n_injections = self._injections.get((module, input_signal), 0)
                if n_injections == 0:
                    continue
                for output_signal in outputs:
                    n_errors = self._arc_errors.get(
                        (module, input_signal, output_signal), 0
                    )
                    entries.append(
                        {
                            "module": module,
                            "input": input_signal,
                            "output": output_signal,
                            "value": n_errors / n_injections,
                            "n_injections": n_injections,
                            "n_errors": n_errors,
                        }
                    )
        return {"system": self.manifest.get("system", ""), "entries": entries}

    def _matrix_with_intervals(self) -> dict:
        matrix = self.matrix_jsonable()
        for entry in matrix["entries"]:
            interval = PermeabilityEstimate.from_counts(
                n_errors=entry["n_errors"], n_injections=entry["n_injections"]
            ).wilson_interval()
            entry["wilson"] = [interval[0], interval[1]]
        return matrix

    def lifetime_statistics(self) -> dict[tuple[str, str], dict]:
        """Per-input error-lifetime statistics from the stream alone.

        Field-for-field equal to
        ``{key: dataclasses.asdict(v) for key, v in
        repro.injection.latency.lifetime_statistics(result).items()}``
        over a complete stream: fired-but-never-reconverged IRs are
        right-censored, medians interpolate linearly.
        """
        censored: dict[tuple[str, str], int] = {}
        for (_case, module, signal, _t, _m), _fired in self._pending_fired.items():
            key = (module, signal)
            censored[key] = censored.get(key, 0) + 1
        if not self._lifetimes_sorted:
            for values in self._lifetimes.values():
                values.sort()
            self._lifetimes_sorted = True
        statistics: dict[tuple[str, str], dict] = {}
        for key in {**dict.fromkeys(self._lifetimes), **dict.fromkeys(censored)}:
            values = self._lifetimes.get(key, [])
            module, input_signal = key
            statistics[key] = {
                "module": module,
                "input_signal": input_signal,
                "n_samples": len(values),
                "n_censored": censored.get(key, 0),
                "min_ms": values[0] if values else 0,
                "max_ms": values[-1] if values else 0,
                "mean_ms": sum(values) / len(values) if values else 0.0,
                "median_ms": _percentile(values, 0.5) if values else 0.0,
            }
        return statistics

    def reconverged_fraction(self) -> float:
        """``CampaignResult.reconverged_fraction`` from the stream."""
        if not self.n_classified:
            return 0.0
        return self.n_reconverged / self.n_classified

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The campaign's current state as one JSON-able document."""
        done = self.n_classified + self.n_pruned_runs
        total = self.total_runs
        rate = None
        eta_s = None
        if (
            self.first_ts is not None
            and self.last_ts is not None
            and self.last_ts > self.first_ts
            and done
        ):
            rate = done / (self.last_ts - self.first_ts)
            if self.state == "running" and total > done:
                eta_s = (total - done) / rate
        lifetimes_per_input = {
            f"{module}.{signal}": stats
            for (module, signal), stats in sorted(
                self.lifetime_statistics().items()
            )
        }
        n_samples = sum(s["n_samples"] for s in lifetimes_per_input.values())
        n_censored = sum(s["n_censored"] for s in lifetimes_per_input.values())
        metrics = {
            name: self.metrics[name]
            for name in _SNAPSHOT_METRICS
            if name in self.metrics
        }
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "state": self.state,
            "campaign": {
                "manifest": self.manifest,
                "mode": self.mode,
                "backend": self.backend,
                "lint": self.lint,
            },
            "progress": {
                "done": done,
                "total": total,
                "fraction": done / total if total else 0.0,
                "golden_runs": self.n_golden,
                "rate_runs_per_s": rate,
                "eta_s": eta_s,
                "elapsed_s": self.elapsed_s,
            },
            "counters": {
                "n_runs": self.n_classified,
                "pruned": self.n_pruned_runs,
                "cached": self.n_cached_runs,
                "n_fired": self.n_fired,
                "n_reconverged": self.n_reconverged,
                "reconverged_fraction": self.reconverged_fraction(),
                "frames_fast_forwarded": self.frames_fast_forwarded,
                "checkpoints_saved": self.checkpoints_saved,
                "checkpoint_reuses": self.checkpoint_reuses,
                "skipped_ms": self.skipped_ms,
                "chunks_completed": self.n_chunks,
                "outcome_mix": dict(self.outcome_mix),
            },
            "adaptive": {
                "rounds": self.n_rounds,
                "targets_retired": len(self.retired_targets),
                "targets_open": self.n_open_targets,
                "trials": self.adaptive_trials,
                "unconverged": self.n_unconverged_targets,
                "by_reason": dict(self.retired_by_reason),
                "retired": list(self.retired_targets),
            },
            "matrix": self._matrix_with_intervals(),
            "lifetimes": {
                "buckets": list(DEFAULT_MS_BUCKETS),
                "counts": list(self._histogram_counts),
                "n_samples": n_samples,
                "n_censored": n_censored,
                "per_input": lifetimes_per_input,
            },
            "metrics": metrics,
            "stream": {
                "n_events": self.n_events,
                "last_seq": self.last_seq,
                "first_ts": self.first_ts,
                "last_ts": self.last_ts,
                "skipped_lines": self.skipped_lines,
            },
        }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid snapshot: {message}")


def validate_snapshot(snapshot: Mapping[str, Any]) -> None:
    """Structurally validate a :meth:`CampaignStateReducer.snapshot`.

    Stdlib-only (no jsonschema): checks the section layout, entry
    fields, count consistency and Wilson-interval containment.  Used by
    the CI dashboard smoke job and the test suite; raises
    :class:`ValueError` on the first violation.
    """
    _require(snapshot.get("schema") == SNAPSHOT_SCHEMA_VERSION, "schema version")
    _require(
        snapshot.get("state") in ("empty", "running", "finished"),
        f"state {snapshot.get('state')!r}",
    )
    for section in (
        "campaign", "progress", "counters", "adaptive", "matrix",
        "lifetimes", "metrics", "stream",
    ):
        _require(isinstance(snapshot.get(section), Mapping), f"missing {section}")
    progress = snapshot["progress"]
    _require(
        isinstance(progress["done"], int) and isinstance(progress["total"], int),
        "progress counts",
    )
    _require(0 <= progress["done"], "progress.done >= 0")
    counters = snapshot["counters"]
    for name in (
        "n_runs", "pruned", "cached", "n_fired", "n_reconverged",
        "frames_fast_forwarded", "checkpoints_saved", "checkpoint_reuses",
        "skipped_ms", "chunks_completed",
    ):
        _require(
            isinstance(counters.get(name), int) and counters[name] >= 0,
            f"counters.{name}",
        )
    # Per-IR order is InjectionFired -> OutcomeClassified, so mid-stream
    # one fired injection may not be classified yet.
    _require(
        counters["n_fired"] <= counters["n_runs"] + 1, "n_fired <= n_runs + 1"
    )
    _require(
        0.0 <= counters["reconverged_fraction"] <= 1.0, "reconverged_fraction"
    )
    adaptive = snapshot["adaptive"]
    for name in ("rounds", "targets_retired", "trials", "unconverged"):
        _require(
            isinstance(adaptive.get(name), int) and adaptive[name] >= 0,
            f"adaptive.{name}",
        )
    _require(isinstance(adaptive.get("retired"), list), "adaptive.retired")
    _require(
        len(adaptive["retired"]) == adaptive["targets_retired"],
        "adaptive retired count",
    )
    for entry in adaptive["retired"]:
        _require(
            isinstance(entry.get("n_trials"), int) and entry["n_trials"] >= 1,
            "adaptive retiree trials",
        )
        _require(
            0.0 <= entry["half_width"] <= 0.5, "adaptive retiree half-width"
        )
        _require(
            entry.get("reason") in ("confidence", "cap", "exhausted"),
            "adaptive retiree reason",
        )
    matrix = snapshot["matrix"]
    _require(isinstance(matrix.get("entries"), list), "matrix.entries")
    for entry in matrix["entries"]:
        for field_name in ("module", "input", "output"):
            _require(
                isinstance(entry.get(field_name), str), f"entry.{field_name}"
            )
        _require(
            0 <= entry["n_errors"] <= entry["n_injections"], "entry counts"
        )
        _require(0.0 <= entry["value"] <= 1.0, "entry value")
        low, high = entry["wilson"]
        _require(
            0.0 <= low <= entry["value"] <= high <= 1.0,
            "wilson interval containment",
        )
    lifetimes = snapshot["lifetimes"]
    _require(
        len(lifetimes["counts"]) == len(lifetimes["buckets"]) + 1,
        "lifetime histogram layout",
    )
    _require(
        sum(lifetimes["counts"]) == lifetimes["n_samples"],
        "lifetime histogram total",
    )
    for stats in lifetimes["per_input"].values():
        _require(
            stats["n_samples"] >= 0 and stats["n_censored"] >= 0,
            "lifetime sample counts",
        )
    stream = snapshot["stream"]
    _require(
        isinstance(stream["n_events"], int) and stream["n_events"] >= 0,
        "stream.n_events",
    )
