"""Metrics registry: counters, gauges and fixed-bucket histograms.

The campaign engine needs to answer "where does the wall-clock go?"
without a profiler attached: how long the Golden-Run phase took, what a
checkpoint save/restore costs, how per-IR suffix simulation compares to
the Golden-Run comparison, and how worker chunks are distributed.  The
registry here is the zero-dependency answer: named :class:`Counter`,
:class:`Gauge` and :class:`Histogram` instruments plus a
:meth:`MetricsRegistry.timer` span helper, all dumpable to a plain JSON
document (``metrics.json`` next to the campaign results).

Cross-process aggregation is explicit rather than magic: worker
processes run their own registry, ship :meth:`MetricsRegistry.to_dict`
snapshots back over the existing chunk-result channel, and the parent
folds them in with :meth:`MetricsRegistry.merge` — counters and
histogram buckets add, gauges keep the most recent value.
"""

from __future__ import annotations

import json
import math
import time
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_MS_BUCKETS",
]

#: Default histogram bucket upper bounds for span timers, in seconds.
#: Spans range from sub-millisecond checkpoint restores to multi-minute
#: campaign phases, hence the roughly logarithmic spacing.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
    0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

#: Default bucket bounds for *simulated-millisecond* quantities (error
#: lifetimes, skipped frames).  The paper's target runs for 8000 ms and
#: schedules in 7 ms cycles, hence the cycle-aligned low end.
DEFAULT_MS_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 7.0, 14.0, 49.0, 100.0, 500.0, 1000.0, 4000.0, 8000.0,
)


class Counter:
    """A monotonically increasing count (events, runs, bytes...)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot add {amount}")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A point-in-time value (queue depth, workers, skipped fraction)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are upper bounds of the counting buckets; observations
    above the last bound land in the implicit overflow bucket.  The
    fixed layout keeps snapshots mergeable across processes.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r}: buckets must be ascending")
        self.name = name
        self.buckets: tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.total = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class _SpanTimer:
    """Context manager feeding elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class MetricsRegistry:
    """Named instruments with get-or-create access and JSON snapshots."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets=buckets)

    def timer(self, name: str) -> _SpanTimer:
        """Span timer: ``with metrics.timer("phase.golden_run"): ...``"""
        return _SpanTimer(self.histogram(name))

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[str]:
        return iter(self._instruments)

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain JSON-serialisable snapshot of every instrument."""
        return {
            name: instrument.to_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    def merge(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold a :meth:`to_dict` snapshot (e.g. from a worker) in.

        Counters and histogram buckets add; gauges take the snapshot's
        value.  Histograms must share their bucket layout.
        """
        for name, data in snapshot.items():
            kind = data["type"]
            if kind == "counter":
                self.counter(name).inc(int(data["value"]))
            elif kind == "gauge":
                self.gauge(name).set(data["value"])
            elif kind == "histogram":
                histogram = self.histogram(name, buckets=data["buckets"])
                if list(histogram.buckets) != list(data["buckets"]):
                    raise ValueError(
                        f"histogram {name!r}: bucket layout mismatch on merge"
                    )
                for index, count in enumerate(data["counts"]):
                    histogram.counts[index] += count
                histogram.total += data["sum"]
                histogram.count += data["count"]
                if data["count"]:
                    histogram.min = min(histogram.min, data["min"])
                    histogram.max = max(histogram.max, data["max"])
            else:
                raise ValueError(f"unknown instrument type {kind!r} for {name!r}")

    def dump_json(self, path) -> None:
        """Write the snapshot as an indented ``metrics.json`` document."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_dict(cls, snapshot: Mapping[str, Mapping]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self._instruments)} instruments>"
