"""The campaign-facing façade bundling events, metrics and tracing.

:class:`InjectionCampaign` talks to observability through exactly one
object: a :class:`CampaignObserver` holding an optional
:class:`~repro.obs.events.EventStream`, an optional
:class:`~repro.obs.metrics.MetricsRegistry` and an optional
:class:`~repro.obs.propagation.PropagationObservations`.  Any of the
three may be absent; ``observer=None`` (the default) costs the engine a
single ``is None`` test per hook site.

The parallel campaign path cannot share an observer across processes.
Instead each worker builds its own via :meth:`CampaignObserver.for_worker`
(events into an unbounded ring buffer, a private metrics registry) and
ships :meth:`worker_payload` back over the chunk-result channel; the
parent folds it in with :meth:`absorb_worker`, preserving the workers'
event timestamps while re-sequencing them into its own stream.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable

from repro.obs.events import (
    ArcsPruned,
    BackendSelected,
    BudgetExhausted,
    CampaignFinished,
    CampaignStarted,
    CheckpointReused,
    CheckpointSaved,
    ChunkCompleted,
    EventStream,
    InjectionFired,
    JsonlSink,
    LintReported,
    MultiSink,
    OutcomeClassified,
    PrettyPrintSink,
    RingBufferSink,
    RoundCompleted,
    RunReconverged,
    RunStarted,
    StoreArtifactRejected,
    TargetRetired,
    UnitReused,
    build_manifest,
    decode_event,
)
from repro.obs.metrics import DEFAULT_MS_BUCKETS, MetricsRegistry
from repro.obs.propagation import PropagationObservations

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.injection.outcomes import CampaignResult, InjectionOutcome

__all__ = ["CampaignObserver"]


class CampaignObserver:
    """Bundle of event stream, metrics registry and propagation fold."""

    def __init__(
        self,
        events: EventStream | None = None,
        metrics: MetricsRegistry | None = None,
        propagation: PropagationObservations | None = None,
    ) -> None:
        self.events = events
        self.metrics = metrics
        self.propagation = propagation

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def to_files(
        cls,
        events_path=None,
        with_metrics: bool = True,
        pretty: bool = False,
        system=None,
        extra_sinks: Iterable = (),
    ) -> "CampaignObserver":
        """Standard full observer: JSONL events + metrics + tracing.

        ``events_path=None`` keeps events in a bounded ring buffer
        instead of a file; ``pretty=True`` adds stderr narration;
        ``system`` enables propagation folding; ``extra_sinks`` are
        appended to the fan-out (e.g. a live
        :class:`~repro.obs.dash.sink.DashboardSink`).
        """
        sinks = []
        if events_path is not None:
            sinks.append(JsonlSink(events_path))
        else:
            sinks.append(RingBufferSink())
        if pretty:
            sinks.append(PrettyPrintSink())
        sinks.extend(extra_sinks)
        sink = sinks[0] if len(sinks) == 1 else MultiSink(*sinks)
        return cls(
            events=EventStream(sink),
            metrics=MetricsRegistry() if with_metrics else None,
            propagation=(
                PropagationObservations(system) if system is not None else None
            ),
        )

    @classmethod
    def for_worker(cls, system=None) -> "CampaignObserver":
        """Worker-side observer: unbounded buffer + private registry.

        The worker's propagation fold exists only so per-IR events
        carry exact ``propagated_outputs``; the parent re-folds the
        returned outcomes into its own observations.
        """
        return cls(
            events=EventStream(RingBufferSink(capacity=None)),
            metrics=MetricsRegistry(),
            propagation=(
                PropagationObservations(system) if system is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Campaign hooks
    # ------------------------------------------------------------------

    def on_campaign_started(self, campaign, mode: str) -> None:
        if self.events is not None:
            self.events.emit(
                CampaignStarted(
                    manifest=build_manifest(campaign).to_dict(),
                    total_runs=campaign.total_runs(),
                    n_cases=len(campaign.case_ids()),
                    n_targets=len(campaign.targets),
                    runs_per_target=campaign.config.runs_per_target(),
                    mode=mode,
                )
            )
        if self.metrics is not None:
            self.metrics.gauge("campaign.total_runs").set(campaign.total_runs())

    def on_backend_selected(self, backend: str) -> None:
        """Record which simulation backend executes the injection runs."""
        if self.events is not None:
            self.events.emit(BackendSelected(backend=backend))

    def on_arcs_pruned(
        self,
        targets: Iterable[tuple[str, str]],
        n_injections_per_target: int,
        n_arcs: int,
    ) -> None:
        """Record statically-pruned targets (see :mod:`repro.flow`)."""
        targets = tuple(tuple(pair) for pair in targets)
        if self.events is not None:
            self.events.emit(
                ArcsPruned(
                    targets=targets,
                    n_injections_per_target=n_injections_per_target,
                    n_arcs=n_arcs,
                )
            )
        if self.metrics is not None:
            self.metrics.counter("prune.targets").inc(len(targets))
            self.metrics.counter("prune.arcs").inc(n_arcs)
            self.metrics.counter("prune.runs_skipped").inc(
                len(targets) * n_injections_per_target
            )

    def on_unit_reused(
        self, case_id: str, module: str, signal: str, n_runs: int, key: str
    ) -> None:
        """Record one target row recomposed from the result store."""
        if self.events is not None:
            self.events.emit(
                UnitReused(
                    case_id=case_id,
                    module=module,
                    signal=signal,
                    n_runs=n_runs,
                    key=key,
                )
            )
        if self.metrics is not None:
            self.metrics.counter("store.hits").inc()
            self.metrics.counter("store.runs_reused").inc(n_runs)

    def on_store_miss(self, case_id: str, module: str, signal: str) -> None:
        """Count one target row the result store could not answer."""
        if self.metrics is not None:
            self.metrics.counter("store.misses").inc()

    def on_store_artifact_rejected(
        self, key: str, path: str, reason: str
    ) -> None:
        """Record a store artifact that failed content verification."""
        if self.events is not None:
            self.events.emit(
                StoreArtifactRejected(key=key, path=path, reason=reason)
            )
        if self.metrics is not None:
            self.metrics.counter("store.rejected").inc()

    def on_target_retired(
        self,
        module: str,
        signal: str,
        n_trials: int,
        half_width: float,
        reason: str,
        round_index: int,
    ) -> None:
        """Record one adaptive target's stopping decision."""
        if self.events is not None:
            self.events.emit(
                TargetRetired(
                    module=module,
                    signal=signal,
                    n_trials=n_trials,
                    half_width=half_width,
                    reason=reason,
                    round_index=round_index,
                )
            )
        if self.metrics is not None:
            self.metrics.counter("adaptive.targets_retired").inc()
            self.metrics.counter(f"adaptive.retired.{reason}").inc()
            self.metrics.counter("adaptive.trials").inc(n_trials)

    def on_round_completed(
        self, round_index: int, n_trials: int, n_open: int
    ) -> None:
        """Record one finished adaptive round."""
        if self.events is not None:
            self.events.emit(
                RoundCompleted(
                    round_index=round_index, n_trials=n_trials, n_open=n_open
                )
            )
        if self.metrics is not None:
            self.metrics.counter("adaptive.rounds").inc()
            self.metrics.gauge("adaptive.targets_open").set(n_open)

    def on_budget_exhausted(self, reasons: dict[str, int]) -> None:
        """Record targets that retired without reaching confidence."""
        n_targets = sum(reasons.values())
        if self.events is not None:
            self.events.emit(
                BudgetExhausted(n_targets=n_targets, reasons=dict(reasons))
            )
        if self.metrics is not None:
            self.metrics.counter("adaptive.unconverged_targets").inc(n_targets)

    def on_lint_report(self, report) -> None:
        """Record the pre-campaign lint pass (a :class:`~repro.lint.LintReport`)."""
        if self.events is not None:
            self.events.emit(
                LintReported(
                    system=report.system_name,
                    errors=len(report.errors()),
                    warnings=len(report.warnings()),
                    info=len(report.infos()),
                    codes=report.codes(),
                    diagnostics=tuple(d.to_dict() for d in report),
                )
            )
        if self.metrics is not None:
            self.metrics.counter("lint.errors").inc(len(report.errors()))
            self.metrics.counter("lint.warnings").inc(len(report.warnings()))

    def on_run_started(
        self,
        case_id: str,
        kind: str,
        module: str | None = None,
        signal: str | None = None,
        time_ms: int | None = None,
        error_model: str | None = None,
    ) -> None:
        if self.events is not None:
            self.events.emit(
                RunStarted(
                    case_id=case_id,
                    kind=kind,
                    module=module,
                    signal=signal,
                    time_ms=time_ms,
                    error_model=error_model,
                )
            )
        if self.metrics is not None:
            self.metrics.counter(f"runs.{kind}").inc()

    def on_checkpoints_saved(self, case_id: str, times_ms: Iterable[int]) -> None:
        times = tuple(times_ms)
        if self.events is not None:
            for time_ms in times:
                self.events.emit(CheckpointSaved(case_id=case_id, time_ms=time_ms))
        if self.metrics is not None:
            self.metrics.counter("checkpoint.saved").inc(len(times))

    def on_checkpoint_reused(
        self, case_id: str, time_ms: int, skipped_ms: int
    ) -> None:
        if self.events is not None:
            self.events.emit(
                CheckpointReused(
                    case_id=case_id, time_ms=time_ms, skipped_ms=skipped_ms
                )
            )
        if self.metrics is not None:
            self.metrics.counter("checkpoint.reused").inc()
            self.metrics.counter("simulated_ms.skipped").inc(skipped_ms)

    def on_outcome(self, outcome: "InjectionOutcome") -> None:
        """Fold one finished IR: events, counters and propagation."""
        record = None
        if self.propagation is not None:
            record = self.propagation.record(outcome)
        if self.events is not None:
            if outcome.fired:
                assert outcome.fired_at_ms is not None
                self.events.emit(
                    InjectionFired(
                        case_id=outcome.case_id,
                        module=outcome.module,
                        signal=outcome.input_signal,
                        scheduled_ms=outcome.scheduled_time_ms,
                        fired_at_ms=outcome.fired_at_ms,
                        error_model=outcome.error_model,
                    )
                )
            diverged = {
                signal: time
                for signal, time in outcome.comparison.first_divergence_ms.items()
                if time is not None
            }
            if record is not None:
                propagated = record.propagated_outputs
            else:
                propagated = self._propagated_outputs(outcome)
            if not outcome.fired:
                verdict = "not_fired"
            elif propagated:
                verdict = "propagated"
            else:
                verdict = "no_effect"
            self.events.emit(
                OutcomeClassified(
                    case_id=outcome.case_id,
                    module=outcome.module,
                    signal=outcome.input_signal,
                    time_ms=outcome.scheduled_time_ms,
                    error_model=outcome.error_model,
                    fired=outcome.fired,
                    outcome=verdict,
                    diverged=diverged,
                    propagated_outputs=propagated,
                )
            )
        if self.events is not None and outcome.reconverged:
            assert outcome.reconverged_at_ms is not None
            self.events.emit(
                RunReconverged(
                    case_id=outcome.case_id,
                    module=outcome.module,
                    signal=outcome.input_signal,
                    time_ms=outcome.scheduled_time_ms,
                    error_model=outcome.error_model,
                    reconverged_at_ms=outcome.reconverged_at_ms,
                    frames_fast_forwarded=outcome.frames_fast_forwarded,
                )
            )
        if self.metrics is not None:
            self.metrics.counter("outcomes.total").inc()
            if outcome.fired:
                self.metrics.counter("outcomes.fired").inc()
            if not outcome.comparison.error_free():
                self.metrics.counter("outcomes.diverged").inc()
            if outcome.reconverged:
                self.metrics.counter("ff.runs_reconverged").inc()
                self.metrics.counter("ff.frames_fast_forwarded").inc(
                    outcome.frames_fast_forwarded
                )
                lifetime = outcome.error_lifetime_ms
                if lifetime is not None:
                    self.metrics.histogram(
                        "ff.error_lifetime.ms", buckets=DEFAULT_MS_BUCKETS
                    ).observe(lifetime)

    def _propagated_outputs(self, outcome: "InjectionOutcome") -> tuple[str, ...]:
        """Direct-error outputs when no propagation fold carries a system."""
        if not outcome.fired:
            return ()
        compared = outcome.comparison.first_divergence_ms
        # Without a system model the module's output set is unknown;
        # fall back to every diverged signal the module could have
        # produced directly (used only by system-less observers).
        return tuple(
            signal for signal, time in compared.items() if time is not None
        )

    def on_chunk_completed(
        self,
        chunk_index: int,
        case_id: str,
        n_targets: int,
        n_runs: int,
        elapsed_s: float,
    ) -> None:
        if self.events is not None:
            self.events.emit(
                ChunkCompleted(
                    chunk_index=chunk_index,
                    case_id=case_id,
                    n_targets=n_targets,
                    n_runs=n_runs,
                    elapsed_s=elapsed_s,
                )
            )
        if self.metrics is not None:
            self.metrics.histogram("chunk.seconds").observe(elapsed_s)
            self.metrics.counter("chunk.completed").inc()

    def dropped_events(self) -> int:
        """Envelopes evicted by bounded ring buffers in the sink chain.

        Non-zero means the in-memory stream is incomplete (older events
        were overwritten); surfaced as the ``events.dropped`` counter
        in ``metrics.json`` and warned about by ``repro obs summarize``.
        """
        if self.events is None:
            return 0
        sink = self.events.sink
        sinks = sink.sinks if isinstance(sink, MultiSink) else (sink,)
        return sum(
            s.dropped for s in sinks if isinstance(s, RingBufferSink)
        )

    def on_campaign_finished(
        self, result: "CampaignResult", elapsed_s: float
    ) -> None:
        if self.metrics is not None:
            self.metrics.gauge("campaign.elapsed_seconds").set(elapsed_s)
            dropped = self.dropped_events()
            if dropped:
                counter = self.metrics.counter("events.dropped")
                counter.inc(dropped - counter.value)
        if self.events is not None:
            self.events.emit(
                CampaignFinished(
                    n_runs=len(result),
                    n_fired=result.n_fired(),
                    elapsed_s=elapsed_s,
                    metrics=(
                        self.metrics.to_dict() if self.metrics is not None else {}
                    ),
                )
            )

    def close(self) -> None:
        if self.events is not None:
            self.events.close()

    # ------------------------------------------------------------------
    # Worker aggregation (parallel campaigns)
    # ------------------------------------------------------------------

    def worker_payload(self) -> dict:
        """Snapshot a worker observer for the chunk-result channel."""
        records: list[dict] = []
        if self.events is not None:
            sink = self.events._sink
            if isinstance(sink, RingBufferSink):
                records = sink.records
        return {
            "events": records,
            "metrics": self.metrics.to_dict() if self.metrics is not None else {},
        }

    def absorb_worker(self, payload: dict) -> None:
        """Fold a worker's :meth:`worker_payload` into this observer.

        Covers events (re-sequenced, timestamps preserved) and metrics.
        Propagation observations are *not* in the payload — the parent
        re-folds the worker's returned outcome objects itself, keeping
        exact parity with the serial path.
        """
        if self.events is not None:
            for record in payload.get("events", ()):
                parsed = decode_event(record)
                self.events.emit(parsed.event, ts=parsed.ts)
        if self.metrics is not None and payload.get("metrics"):
            self.metrics.merge(payload["metrics"])

    def timestamp(self) -> float:  # pragma: no cover - trivial
        return time.time()
