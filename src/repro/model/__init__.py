"""Software-system model substrate (Section 3 of the paper).

Modular software is modelled as black-box modules inter-linked by named
signals.  This subpackage provides the static declarations
(:class:`SignalSpec`, :class:`ModuleSpec`), the behavioural base class
(:class:`SoftwareModule`), the validated topology container
(:class:`SystemModel`), a fluent builder, and the paper's Fig. 2 example
system.
"""

from repro.model.builder import SystemBuilder
from repro.model.connection import Connection, ExternalInput, ExternalOutput
from repro.model.errors import (
    AnalysisError,
    CampaignError,
    DanglingSignalError,
    DuplicateNameError,
    DuplicateProducerError,
    InjectionError,
    InvalidProbabilityError,
    MissingPermeabilityError,
    ModelError,
    NotASystemSignalError,
    ReproError,
    ScheduleError,
    SimulationError,
    TraceMismatchError,
    UnknownModuleError,
    UnknownSignalError,
    ValidationError,
)
from repro.model.examples import build_fig2_system, fig2_permeabilities
from repro.model.module import BACKGROUND, ModuleSpec, SoftwareModule
from repro.model.ports import InputPort, OutputPort, Port, PortDirection
from repro.model.signal import SignalKind, SignalSpec, from_signed, to_signed, wrap_unsigned
from repro.model.system import SystemModel

__all__ = [
    "BACKGROUND",
    "AnalysisError",
    "CampaignError",
    "Connection",
    "DanglingSignalError",
    "DuplicateNameError",
    "DuplicateProducerError",
    "ExternalInput",
    "ExternalOutput",
    "InjectionError",
    "InputPort",
    "InvalidProbabilityError",
    "MissingPermeabilityError",
    "ModelError",
    "ModuleSpec",
    "NotASystemSignalError",
    "OutputPort",
    "Port",
    "PortDirection",
    "ReproError",
    "ScheduleError",
    "SignalKind",
    "SignalSpec",
    "SimulationError",
    "SoftwareModule",
    "SystemBuilder",
    "SystemModel",
    "TraceMismatchError",
    "UnknownModuleError",
    "UnknownSignalError",
    "ValidationError",
    "build_fig2_system",
    "fig2_permeabilities",
    "from_signed",
    "to_signed",
    "wrap_unsigned",
]
