"""Built-in example systems.

:func:`build_fig2_system` reconstructs the five-module example system of
the paper's Fig. 2 (modules *A* through *E*), used throughout Section 4
to illustrate the permeability graph (Fig. 3), the backtrack tree of the
system output :math:`O^E_1` (Fig. 4) and the trace tree of the system
input :math:`I^A_1` (Fig. 5).

The paper gives the example's structure but not its permeability
numbers; :func:`fig2_permeabilities` supplies a fixed, documented set of
analytic values so that the example trees and paths are deterministic
and usable in tests and benchmarks.
"""

from __future__ import annotations

from repro.model.builder import SystemBuilder
from repro.model.system import SystemModel

__all__ = ["build_fig2_system", "fig2_permeabilities", "FIG2_PERMEABILITIES"]


def build_fig2_system() -> SystemModel:
    """The five-module A–E example system of the paper's Fig. 2.

    Topology (signal names in parentheses):

    * ``A``: system input ``ext_a`` → output ``a1``.
    * ``B``: inputs ``b1`` (local feedback, the paper's
      :math:`O^B_1 \\to I^B_1` double line) and ``a1``;
      outputs ``b1`` and ``b2``.
    * ``C``: system input ``ext_c`` → output ``c1``.
    * ``D``: inputs ``b1`` and ``c1`` → output ``d1``.
    * ``E``: inputs ``b2``, ``d1`` and system input ``ext_e`` →
      system output ``sys_out`` (the paper's :math:`O^E_1`).

    External input is received at :math:`I^A_1`, :math:`I^C_1` and
    :math:`I^E_3`; the output produced by the system is :math:`O^E_1`.
    """
    builder = SystemBuilder(
        "fig2-example",
        description="Five-module example system of the paper's Fig. 2",
    )
    builder.add_module(
        "A",
        inputs=["ext_a"],
        outputs=["a1"],
        description="Front-end module fed by system input ext_a",
    )
    builder.add_module(
        "B",
        inputs=["b1", "a1"],
        outputs=["b1", "b2"],
        description="Module with local feedback (O^B_1 -> I^B_1)",
    )
    builder.add_module(
        "C",
        inputs=["ext_c"],
        outputs=["c1"],
        description="Front-end module fed by system input ext_c",
    )
    builder.add_module(
        "D",
        inputs=["b1", "c1"],
        outputs=["d1"],
        description="Merging module combining B's feedback branch with C",
    )
    builder.add_module(
        "E",
        inputs=["b2", "d1", "ext_e"],
        outputs=["sys_out"],
        description="Back-end module producing the system output O^E_1",
    )
    builder.mark_system_input("ext_a", "ext_c", "ext_e")
    builder.mark_system_output("sys_out")
    return builder.build()


#: Fixed analytic permeability values for the Fig. 2 example system.
#: Keys are (module, input signal, output signal); values are the
#: conditional propagation probabilities of Eq. 1.  Chosen so that
#: every structural feature of the example is exercised: a certain
#: pair (1.0), a blocked pair (0.0), and distinct path weights.
FIG2_PERMEABILITIES: dict[tuple[str, str, str], float] = {
    ("A", "ext_a", "a1"): 0.8,
    ("B", "b1", "b1"): 0.5,
    ("B", "b1", "b2"): 0.3,
    ("B", "a1", "b1"): 0.6,
    ("B", "a1", "b2"): 0.7,
    ("C", "ext_c", "c1"): 1.0,
    ("D", "b1", "d1"): 0.4,
    ("D", "c1", "d1"): 0.9,
    ("E", "b2", "sys_out"): 0.65,
    ("E", "d1", "sys_out"): 0.55,
    ("E", "ext_e", "sys_out"): 0.0,
}


def fig2_permeabilities() -> dict[tuple[str, str, str], float]:
    """A fresh copy of :data:`FIG2_PERMEABILITIES`."""
    return dict(FIG2_PERMEABILITIES)
