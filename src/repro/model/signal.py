"""Signal declarations for the software-system model.

The paper's system model (Section 3) treats software as a set of
black-box modules inter-linked by *signals*, "much like for hardware
components on a circuit board".  A signal is a named, typed value that
originates either from a module output or from the external environment
(e.g. a sensor register) and is consumed by module inputs or by the
external environment (e.g. an actuator register).

This module defines :class:`SignalSpec`, the static declaration of a
signal, together with helpers for its bit-level value domain.  The
evaluation system of the paper uses 16-bit signals throughout, which is
therefore the default width.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.model.errors import InvalidProbabilityError

__all__ = ["SignalKind", "SignalSpec", "wrap_unsigned", "to_signed", "from_signed"]


class SignalKind(enum.Enum):
    """Interpretation of a signal's raw integer value.

    All signals are carried as integers of a fixed bit width (the paper
    injects bit-flips into 16-bit words), but the *meaning* of the word
    differs per signal.  The kind is metadata used by reports, error
    models and the plant simulation; the propagation analysis itself is
    agnostic to it.
    """

    UNSIGNED = "unsigned"
    SIGNED = "signed"
    BOOLEAN = "boolean"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def wrap_unsigned(value: int, width: int) -> int:
    """Wrap ``value`` into the unsigned range of a ``width``-bit register.

    Hardware counters such as the HC11's ``TCNT`` free-running counter
    wrap modulo ``2**width``; the same rule is applied to every signal so
    that injected bit patterns always remain representable.
    """
    return value & ((1 << width) - 1)


def to_signed(raw: int, width: int) -> int:
    """Interpret a raw ``width``-bit pattern as a two's-complement integer."""
    raw = wrap_unsigned(raw, width)
    sign_bit = 1 << (width - 1)
    if raw & sign_bit:
        return raw - (1 << width)
    return raw


def from_signed(value: int, width: int) -> int:
    """Encode a (possibly negative) integer as a raw ``width``-bit pattern."""
    return wrap_unsigned(value, width)


@dataclass(frozen=True)
class SignalSpec:
    """Static declaration of a signal.

    Parameters
    ----------
    name:
        Globally unique signal name, e.g. ``"pulscnt"`` or ``"SetValue"``.
    width:
        Bit width of the signal's value domain.  The paper's target
        system uses 16-bit signals exclusively.
    kind:
        How the raw bit pattern is interpreted (see :class:`SignalKind`).
    description:
        Human-readable documentation shown in reports.
    initial:
        Reset value of the signal at simulation start.
    unit:
        Physical unit of the encoded quantity (documentation only).
    error_probability:
        Optional prior probability of an error occurring on this signal,
        used to scale propagation-path weights (the ``Pr(A_1)`` factor of
        Section 4.2).  ``None`` means "unknown", in which case paths are
        reported with conditional weights only.
    """

    name: str
    width: int = 16
    kind: SignalKind = SignalKind.UNSIGNED
    description: str = ""
    initial: int = 0
    unit: str = ""
    error_probability: float | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("signal name must be non-empty")
        if self.width < 1:
            raise ValueError(f"signal {self.name!r}: width must be >= 1")
        if self.error_probability is not None and not (
            0.0 <= self.error_probability <= 1.0
        ):
            raise InvalidProbabilityError(
                f"error probability of signal {self.name!r}", self.error_probability
            )

    @property
    def max_unsigned(self) -> int:
        """Largest raw value representable in this signal's width."""
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary integer into this signal's raw value domain."""
        return wrap_unsigned(value, self.width)

    def encode(self, value: int | bool) -> int:
        """Encode a logical value (per :attr:`kind`) as a raw bit pattern."""
        if self.kind is SignalKind.BOOLEAN:
            return 1 if value else 0
        if self.kind is SignalKind.SIGNED:
            return from_signed(int(value), self.width)
        return wrap_unsigned(int(value), self.width)

    def decode(self, raw: int) -> int | bool:
        """Decode a raw bit pattern into the logical value (per :attr:`kind`)."""
        if self.kind is SignalKind.BOOLEAN:
            return bool(raw & 1)
        if self.kind is SignalKind.SIGNED:
            return to_signed(raw, self.width)
        return wrap_unsigned(raw, self.width)

    def flip_bit(self, raw: int, bit: int) -> int:
        """Return ``raw`` with bit position ``bit`` inverted.

        This is the elementary operation of the paper's error model
        (Section 7.3: "We injected bit-flips in each bit position").
        """
        if not 0 <= bit < self.width:
            raise ValueError(
                f"signal {self.name!r}: bit {bit} outside width {self.width}"
            )
        return self.wrap(raw ^ (1 << bit))

    def describe(self) -> str:
        """One-line human-readable summary used by reports."""
        parts = [f"{self.name} ({self.width}-bit {self.kind})"]
        if self.unit:
            parts.append(f"[{self.unit}]")
        if self.description:
            parts.append(f"- {self.description}")
        return " ".join(parts)
