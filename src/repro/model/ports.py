"""Port descriptors: the (module, direction, index, signal) tuples.

The paper numbers module inputs and outputs (Fig. 8: "the numbers shown
at the inputs and outputs are used for numbering the signals", e.g.
``PACNT`` is input #1 of ``DIST_S``).  Ports make this numbering a
first-class concept so that permeability values can be addressed both by
signal name and by the paper's :math:`P^{M}_{i,k}` index notation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PortDirection", "Port", "InputPort", "OutputPort"]


class PortDirection(enum.Enum):
    """Whether a port consumes (input) or produces (output) its signal."""

    INPUT = "input"
    OUTPUT = "output"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Port:
    """A single input or output of a module.

    Attributes
    ----------
    module:
        Name of the owning module.
    direction:
        :class:`PortDirection.INPUT` or :class:`PortDirection.OUTPUT`.
    index:
        1-based position of the port within the module's input (or
        output) list, matching the paper's subscript notation.
    signal:
        Name of the signal carried by the port.
    """

    module: str
    direction: PortDirection
    index: int
    signal: str

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(
                f"port index must be 1-based, got {self.index} "
                f"for {self.module}.{self.signal}"
            )

    @property
    def is_input(self) -> bool:
        return self.direction is PortDirection.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction is PortDirection.OUTPUT

    def label(self) -> str:
        """Paper-style label, e.g. ``I^DIST_S_1`` or ``O^CALC_2``.

        The paper writes :math:`I^{M}_{i}` for the *i*-th input of module
        *M* and :math:`O^{M}_{k}` for the *k*-th output.
        """
        prefix = "I" if self.is_input else "O"
        return f"{prefix}^{self.module}_{self.index}"

    def __str__(self) -> str:
        return f"{self.label()}({self.signal})"


def InputPort(module: str, index: int, signal: str) -> Port:
    """Convenience constructor for an input port."""
    return Port(module=module, direction=PortDirection.INPUT, index=index, signal=signal)


def OutputPort(module: str, index: int, signal: str) -> Port:
    """Convenience constructor for an output port."""
    return Port(module=module, direction=PortDirection.OUTPUT, index=index, signal=signal)
