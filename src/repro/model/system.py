"""The software-system model: modules inter-linked by signals.

This is the substrate on which the whole propagation analysis operates
(Section 3 of the paper).  A :class:`SystemModel` owns

* a set of :class:`~repro.model.signal.SignalSpec` declarations,
* a set of :class:`~repro.model.module.ModuleSpec` declarations whose
  inputs and outputs reference those signals, and
* the designation of *system inputs* (signals with no producing module,
  fed by the environment) and *system outputs* (signals consumed by the
  environment).

From these it derives the resolved connection list, producer/consumer
look-ups, and the validation rules that make the topology well-formed:

* every signal has at most one producer;
* a signal without a producer must be declared a system input;
* every signal is consumed by at least one module or declared a system
  output;
* system outputs must have a producer.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.model.connection import Connection, ExternalInput, ExternalOutput
from repro.model.errors import (
    DuplicateNameError,
    DuplicateProducerError,
    UnknownModuleError,
    UnknownSignalError,
    ValidationError,
)
from repro.model.module import ModuleSpec
from repro.model.ports import Port
from repro.model.signal import SignalSpec

__all__ = ["SystemModel"]


class SystemModel:
    """Immutable-after-validation container for a modular software system.

    Instances are usually built through
    :class:`repro.model.builder.SystemBuilder`; direct construction takes
    pre-made spec collections.

    Parameters
    ----------
    name:
        Name of the system (used in reports).
    signals:
        Signal declarations.  Any signal referenced by a module but not
        declared here is auto-declared with default parameters, so
        explicit declaration is only needed for non-default widths,
        kinds or documentation.
    modules:
        Module declarations.
    system_inputs:
        Names of signals fed by the external environment.
    system_outputs:
        Names of signals consumed by the external environment.
    description:
        Human-readable documentation.
    validate:
        When ``True`` (the default), :meth:`validate` runs at
        construction and a malformed topology raises
        :class:`ValidationError`.  ``False`` defers the check, which is
        what :mod:`repro.lint` uses to turn the same problems into
        structured diagnostics instead of an exception (e.g. for the
        mutation corpus of the property tests).  Duplicate names and
        duplicate producers are structural and always raise.
    """

    def __init__(
        self,
        name: str,
        modules: Iterable[ModuleSpec],
        system_inputs: Iterable[str],
        system_outputs: Iterable[str],
        signals: Iterable[SignalSpec] = (),
        description: str = "",
        validate: bool = True,
    ) -> None:
        self.name = name
        self.description = description
        self._modules: dict[str, ModuleSpec] = {}
        for module in modules:
            if module.name in self._modules:
                raise DuplicateNameError("module", module.name)
            self._modules[module.name] = module

        self._signals: dict[str, SignalSpec] = {}
        for signal in signals:
            if signal.name in self._signals:
                raise DuplicateNameError("signal", signal.name)
            self._signals[signal.name] = signal
        # Auto-declare referenced-but-undeclared signals with defaults.
        for module in self._modules.values():
            for signal_name in (*module.inputs, *module.outputs):
                if signal_name not in self._signals:
                    self._signals[signal_name] = SignalSpec(name=signal_name)

        self._system_inputs: tuple[str, ...] = tuple(dict.fromkeys(system_inputs))
        self._system_outputs: tuple[str, ...] = tuple(dict.fromkeys(system_outputs))

        self._producer: dict[str, Port] = {}
        self._consumers: dict[str, tuple[Port, ...]] = {}
        self._index_topology()
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _index_topology(self) -> None:
        """Build producer/consumer indices from the module declarations."""
        consumers: dict[str, list[Port]] = {name: [] for name in self._signals}
        for module in self._modules.values():
            for port in module.output_ports():
                existing = self._producer.get(port.signal)
                if existing is not None:
                    raise DuplicateProducerError(
                        port.signal, existing.module, port.module
                    )
                self._producer[port.signal] = port
            for port in module.input_ports():
                consumers[port.signal].append(port)
        self._consumers = {
            signal: tuple(sorted(ports)) for signal, ports in consumers.items()
        }

    def validate(self) -> None:
        """Check the topology rules; raise :class:`ValidationError` on failure."""
        problems = self.validation_problems()
        if problems:
            raise ValidationError(problems)

    def validation_problems(self) -> list[str]:
        """All topology-rule violations as strings, without raising.

        An empty list means the model is well-formed.  The lint rules
        R001–R003 report the same problems as structured diagnostics.
        """
        problems: list[str] = []
        for signal in self._system_inputs:
            if signal not in self._signals:
                problems.append(f"system input {signal!r} is not a known signal")
            elif signal in self._producer:
                port = self._producer[signal]
                problems.append(
                    f"system input {signal!r} is produced internally by "
                    f"{port.module!r}"
                )
        for signal in self._system_outputs:
            if signal not in self._signals:
                problems.append(f"system output {signal!r} is not a known signal")
            elif signal not in self._producer:
                problems.append(f"system output {signal!r} has no producing module")
        external_inputs = set(self._system_inputs)
        external_outputs = set(self._system_outputs)
        for signal in self._signals:
            produced = signal in self._producer
            consumed = bool(self._consumers.get(signal))
            if not produced and signal not in external_inputs:
                problems.append(
                    f"signal {signal!r} has no producer and is not a system input"
                )
            if not consumed and signal not in external_outputs:
                problems.append(
                    f"signal {signal!r} has no consumer and is not a system output"
                )
        return problems

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def modules(self) -> Mapping[str, ModuleSpec]:
        """Module declarations, keyed by name."""
        return dict(self._modules)

    @property
    def signals(self) -> Mapping[str, SignalSpec]:
        """Signal declarations, keyed by name."""
        return dict(self._signals)

    @property
    def system_inputs(self) -> tuple[str, ...]:
        """Signals fed by the external environment, in declaration order."""
        return self._system_inputs

    @property
    def system_outputs(self) -> tuple[str, ...]:
        """Signals consumed by the external environment, in declaration order."""
        return self._system_outputs

    def module(self, name: str) -> ModuleSpec:
        """Look up a module declaration by name."""
        try:
            return self._modules[name]
        except KeyError:
            raise UnknownModuleError(name, candidates=self._modules) from None

    def signal(self, name: str) -> SignalSpec:
        """Look up a signal declaration by name."""
        try:
            return self._signals[name]
        except KeyError:
            raise UnknownSignalError(name, candidates=self._signals) from None

    def module_names(self) -> tuple[str, ...]:
        """All module names in declaration order."""
        return tuple(self._modules)

    def signal_names(self) -> tuple[str, ...]:
        """All signal names (declaration order, then auto-declared)."""
        return tuple(self._signals)

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    def producer_of(self, signal: str) -> Port | None:
        """The output port producing ``signal``, or ``None`` for system inputs."""
        if signal not in self._signals:
            raise UnknownSignalError(signal, candidates=self._signals)
        return self._producer.get(signal)

    def consumers_of(self, signal: str) -> tuple[Port, ...]:
        """All input ports consuming ``signal`` (possibly empty)."""
        if signal not in self._signals:
            raise UnknownSignalError(signal, candidates=self._signals)
        return self._consumers.get(signal, ())

    def is_system_input(self, signal: str) -> bool:
        """Whether ``signal`` is fed by the external environment."""
        return signal in set(self._system_inputs)

    def is_system_output(self, signal: str) -> bool:
        """Whether ``signal`` is consumed by the external environment."""
        return signal in set(self._system_outputs)

    def connections(self) -> Iterator[Connection]:
        """All resolved internal producer→consumer links."""
        for signal, producer in sorted(self._producer.items()):
            for consumer in self._consumers.get(signal, ()):
                yield Connection(producer=producer, consumer=consumer)

    def external_input_links(self) -> Iterator[ExternalInput]:
        """All links from the environment into module inputs."""
        for signal in self._system_inputs:
            for consumer in self._consumers.get(signal, ()):
                yield ExternalInput(consumer=consumer)

    def external_output_links(self) -> Iterator[ExternalOutput]:
        """All links from module outputs to the environment."""
        for signal in self._system_outputs:
            producer = self._producer.get(signal)
            if producer is not None:
                yield ExternalOutput(producer=producer)

    def feedback_modules(self) -> tuple[str, ...]:
        """Names of modules with at least one output wired back to an input."""
        return tuple(
            name for name, spec in self._modules.items() if spec.has_feedback()
        )

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------

    def n_pairs(self) -> int:
        """Total number of input/output pairs across all modules.

        The paper's target system has 25 such pairs ("In the target
        system, we have 25 input/output pairs", Section 8).
        """
        return sum(spec.n_pairs for spec in self._modules.values())

    def pair_index(self) -> Iterator[tuple[str, str, str]]:
        """All (module, input signal, output signal) triples in order."""
        for module in self._modules.values():
            for input_signal, output_signal in module.pairs():
                yield (module.name, input_signal, output_signal)

    def summary(self) -> str:
        """Multi-line human-readable description of the topology."""
        lines = [
            f"System {self.name!r}: {len(self._modules)} modules, "
            f"{len(self._signals)} signals, {self.n_pairs()} input/output pairs",
            f"  system inputs : {', '.join(self._system_inputs) or '(none)'}",
            f"  system outputs: {', '.join(self._system_outputs) or '(none)'}",
        ]
        for module in self._modules.values():
            period = (
                "background" if module.is_background else f"{module.period_ms} ms"
            )
            lines.append(
                f"  {module.name}: in=[{', '.join(module.inputs)}] "
                f"out=[{', '.join(module.outputs)}] period={period}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SystemModel {self.name!r} modules={len(self._modules)} "
            f"signals={len(self._signals)}>"
        )
