"""Module declarations and the behavioural base class.

Section 3 of the paper: "A module is a generalised black-box having
multiple inputs and outputs. ... A software module performs computations
using the provided inputs to generate the outputs."

Two layers are separated here:

* :class:`ModuleSpec` -- the *static* declaration (name, ordered input
  and output signals, scheduling period).  This is all the propagation
  analysis needs.
* :class:`SoftwareModule` -- the *behavioural* base class executed by
  the runtime simulator.  Concrete modules (e.g. the arrestment
  system's ``CALC``) subclass it and implement :meth:`SoftwareModule.activate`.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.model.errors import DuplicateNameError, UnknownSignalError
from repro.model.ports import InputPort, OutputPort, Port

__all__ = ["ModuleSpec", "SoftwareModule", "BACKGROUND"]

#: Sentinel period for background tasks that run "when other modules are
#: dormant" (the paper's CALC module has "Period = n/a (background task)").
BACKGROUND: None = None


@dataclass(frozen=True)
class ModuleSpec:
    """Static declaration of a software module.

    Parameters
    ----------
    name:
        Unique module name, e.g. ``"CALC"``.
    inputs:
        Ordered tuple of input signal names.  Order defines the paper's
        1-based input numbering (``inputs[0]`` is input #1).
    outputs:
        Ordered tuple of output signal names, numbered likewise.
    description:
        Human-readable documentation.
    period_ms:
        Scheduling period in milliseconds, or ``None`` for a background
        task scheduled whenever no periodic module is due.
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    description: str = ""
    period_ms: int | None = field(default=1)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("module name must be non-empty")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        seen: set[str] = set()
        for signal in self.inputs:
            if signal in seen:
                raise DuplicateNameError("input signal", signal)
            seen.add(signal)
        seen.clear()
        for signal in self.outputs:
            if signal in seen:
                raise DuplicateNameError("output signal", signal)
            seen.add(signal)
        if self.period_ms is not None and self.period_ms < 1:
            raise ValueError(
                f"module {self.name!r}: period must be >= 1 ms or None"
            )

    # -- port arithmetic ---------------------------------------------------

    @property
    def n_inputs(self) -> int:
        """Number of inputs (the paper's *m*)."""
        return len(self.inputs)

    @property
    def n_outputs(self) -> int:
        """Number of outputs (the paper's *n*)."""
        return len(self.outputs)

    @property
    def n_pairs(self) -> int:
        """Number of input/output pairs (*m* · *n*), one permeability each."""
        return self.n_inputs * self.n_outputs

    @property
    def is_background(self) -> bool:
        """Whether the module is a background task (no fixed period)."""
        return self.period_ms is BACKGROUND

    def input_index(self, signal: str) -> int:
        """1-based index of an input signal (the paper's *i*)."""
        try:
            return self.inputs.index(signal) + 1
        except ValueError:
            raise UnknownSignalError(
                signal,
                candidates=self.inputs,
                where=f"inputs of module {self.name!r}",
            ) from None

    def output_index(self, signal: str) -> int:
        """1-based index of an output signal (the paper's *k*)."""
        try:
            return self.outputs.index(signal) + 1
        except ValueError:
            raise UnknownSignalError(
                signal,
                candidates=self.outputs,
                where=f"outputs of module {self.name!r}",
            ) from None

    def input_port(self, signal: str) -> Port:
        """The :class:`Port` record for an input signal."""
        return InputPort(self.name, self.input_index(signal), signal)

    def output_port(self, signal: str) -> Port:
        """The :class:`Port` record for an output signal."""
        return OutputPort(self.name, self.output_index(signal), signal)

    def input_ports(self) -> Iterator[Port]:
        """All input ports in declaration order."""
        for index, signal in enumerate(self.inputs, start=1):
            yield InputPort(self.name, index, signal)

    def output_ports(self) -> Iterator[Port]:
        """All output ports in declaration order."""
        for index, signal in enumerate(self.outputs, start=1):
            yield OutputPort(self.name, index, signal)

    def pairs(self) -> Iterator[tuple[str, str]]:
        """All (input signal, output signal) pairs in index order.

        The iteration order matches the paper's Table 1 layout: for each
        input *i*, all outputs *k* in turn.
        """
        for input_signal in self.inputs:
            for output_signal in self.outputs:
                yield (input_signal, output_signal)

    def has_feedback(self) -> bool:
        """Whether any signal is both an input and an output of the module."""
        return bool(set(self.inputs) & set(self.outputs))

    def feedback_signals(self) -> tuple[str, ...]:
        """Signals wired from one of the module's outputs back to its input."""
        inputs = set(self.inputs)
        return tuple(s for s in self.outputs if s in inputs)


class SoftwareModule(abc.ABC):
    """Behavioural base class executed by the runtime simulator.

    Concrete modules own arbitrary internal state (reset via
    :meth:`reset`) and implement :meth:`activate`, which maps a snapshot
    of the module's input signals to new values for its output signals.

    The simulator calls :meth:`activate` once per scheduled activation
    with the *raw* (bit-pattern) values of the inputs; the module returns
    raw values for any outputs it wishes to update.  Outputs omitted from
    the returned mapping keep their previous value, which models the
    common embedded pattern of registers holding state between writes.
    """

    def __init__(self, spec: ModuleSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> ModuleSpec:
        """The static declaration of this module."""
        return self._spec

    @property
    def name(self) -> str:
        """The module name (shorthand for ``spec.name``)."""
        return self._spec.name

    def reset(self) -> None:
        """Reset internal state to power-on defaults.

        The default implementation is a no-op; stateful modules override.
        """

    def state_dict(self) -> dict:
        """Snapshot of the module's internal state for checkpoint/restore.

        The default implementation deepcopies every instance attribute
        except the (immutable, shared) ``_spec`` — always correct for
        plain Python state.  Modules with a known small state override
        this with an explicit, cheaper snapshot.
        """
        return copy.deepcopy(
            {key: value for key, value in vars(self).items() if key != "_spec"}
        )

    def load_state_dict(self, state: dict) -> None:
        """Restore internal state captured by :meth:`state_dict`.

        The same snapshot may be restored many times (once per
        checkpointed injection run), so implementations must not alias
        mutable containers out of ``state``.
        """
        for key, value in copy.deepcopy(state).items():
            setattr(self, key, value)

    @abc.abstractmethod
    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        """Execute one activation.

        Parameters
        ----------
        inputs:
            Mapping from input-signal name to its current raw value.
            Contains exactly the signals declared in ``spec.inputs``.
        now_ms:
            Current simulated time in milliseconds.

        Returns
        -------
        Mapping from output-signal name to new raw value.  May be a
        subset of ``spec.outputs``; omitted outputs are left unchanged.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
