"""Fluent construction API for :class:`~repro.model.system.SystemModel`.

Example
-------
The five-module example system of the paper's Fig. 2 can be written as::

    builder = SystemBuilder("fig2-example")
    builder.add_module("A", inputs=["ext_a"], outputs=["a_out"])
    builder.add_module("B", inputs=["a_out", "b_fb"], outputs=["b_fb", "b_out"])
    ...
    builder.mark_system_input("ext_a")
    builder.mark_system_output("sys_out")
    model = builder.build()

The builder accumulates declarations and defers every topology check to
:meth:`SystemBuilder.build`, which constructs (and thereby validates) the
model.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.model.errors import DuplicateNameError
from repro.model.module import ModuleSpec
from repro.model.signal import SignalKind, SignalSpec
from repro.model.system import SystemModel

__all__ = ["SystemBuilder"]


class SystemBuilder:
    """Incrementally assemble a :class:`SystemModel`.

    All mutator methods return ``self`` so calls can be chained.
    """

    def __init__(self, name: str, description: str = "") -> None:
        self._name = name
        self._description = description
        self._modules: list[ModuleSpec] = []
        self._module_names: set[str] = set()
        self._signals: list[SignalSpec] = []
        self._signal_names: set[str] = set()
        self._system_inputs: list[str] = []
        self._system_outputs: list[str] = []

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def add_signal(
        self,
        name: str,
        width: int = 16,
        kind: SignalKind = SignalKind.UNSIGNED,
        description: str = "",
        initial: int = 0,
        unit: str = "",
        error_probability: float | None = None,
    ) -> "SystemBuilder":
        """Declare a signal with non-default parameters.

        Signals referenced by modules but never declared explicitly are
        auto-declared by the model with 16-bit unsigned defaults.
        """
        if name in self._signal_names:
            raise DuplicateNameError("signal", name)
        self._signals.append(
            SignalSpec(
                name=name,
                width=width,
                kind=kind,
                description=description,
                initial=initial,
                unit=unit,
                error_probability=error_probability,
            )
        )
        self._signal_names.add(name)
        return self

    def add_signal_spec(self, spec: SignalSpec) -> "SystemBuilder":
        """Declare a signal from a prebuilt :class:`SignalSpec`."""
        if spec.name in self._signal_names:
            raise DuplicateNameError("signal", spec.name)
        self._signals.append(spec)
        self._signal_names.add(spec.name)
        return self

    def add_module(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        description: str = "",
        period_ms: int | None = 1,
    ) -> "SystemBuilder":
        """Declare a module with ordered input and output signal lists."""
        if name in self._module_names:
            raise DuplicateNameError("module", name)
        self._modules.append(
            ModuleSpec(
                name=name,
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                description=description,
                period_ms=period_ms,
            )
        )
        self._module_names.add(name)
        return self

    def add_module_spec(self, spec: ModuleSpec) -> "SystemBuilder":
        """Declare a module from a prebuilt :class:`ModuleSpec`."""
        if spec.name in self._module_names:
            raise DuplicateNameError("module", spec.name)
        self._modules.append(spec)
        self._module_names.add(spec.name)
        return self

    # ------------------------------------------------------------------
    # Environment boundary
    # ------------------------------------------------------------------

    def mark_system_input(self, *signals: str) -> "SystemBuilder":
        """Designate signals as fed by the external environment."""
        for signal in signals:
            if signal not in self._system_inputs:
                self._system_inputs.append(signal)
        return self

    def mark_system_output(self, *signals: str) -> "SystemBuilder":
        """Designate signals as consumed by the external environment."""
        for signal in signals:
            if signal not in self._system_outputs:
                self._system_outputs.append(signal)
        return self

    def mark_system_inputs(self, signals: Iterable[str]) -> "SystemBuilder":
        """Iterable variant of :meth:`mark_system_input`."""
        return self.mark_system_input(*signals)

    def mark_system_outputs(self, signals: Iterable[str]) -> "SystemBuilder":
        """Iterable variant of :meth:`mark_system_output`."""
        return self.mark_system_output(*signals)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def build(self, validate: bool = True) -> SystemModel:
        """Construct and validate the :class:`SystemModel`.

        ``validate=False`` defers the topology checks so a deliberately
        malformed model can be handed to :func:`repro.lint.lint_system`
        for structured diagnostics instead of a raised
        :class:`~repro.model.errors.ValidationError`.
        """
        return SystemModel(
            name=self._name,
            modules=self._modules,
            system_inputs=self._system_inputs,
            system_outputs=self._system_outputs,
            signals=self._signals,
            description=self._description,
            validate=validate,
        )
