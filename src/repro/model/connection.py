"""Resolved producer→consumer connection records.

With the global-signal model used by :class:`repro.model.system.SystemModel`
connections are implicit: a module output *emits* a named signal and any
module input naming the same signal *consumes* it.  For graph building
and reporting it is convenient to materialise the resolved pairs, which
is what :class:`Connection` provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.ports import Port

__all__ = ["Connection", "ExternalInput", "ExternalOutput"]


@dataclass(frozen=True, order=True)
class Connection:
    """A resolved link from a module output port to a module input port.

    ``producer.signal == consumer.signal`` always holds; the class exists
    to carry both endpoints (with their paper-style indices) together.
    """

    producer: Port
    consumer: Port

    def __post_init__(self) -> None:
        if not self.producer.is_output:
            raise ValueError(f"producer must be an output port: {self.producer}")
        if not self.consumer.is_input:
            raise ValueError(f"consumer must be an input port: {self.consumer}")
        if self.producer.signal != self.consumer.signal:
            raise ValueError(
                "connection endpoints carry different signals: "
                f"{self.producer.signal!r} vs {self.consumer.signal!r}"
            )

    @property
    def signal(self) -> str:
        """Name of the signal carried by the connection."""
        return self.producer.signal

    @property
    def is_feedback(self) -> bool:
        """Whether the connection loops back into the producing module.

        The paper treats module feedback specially in both tree
        constructions (steps A3/B3): the recursion it generates is
        followed at most once.
        """
        return self.producer.module == self.consumer.module

    def __str__(self) -> str:
        return f"{self.producer} -> {self.consumer}"


@dataclass(frozen=True, order=True)
class ExternalInput:
    """A system input: a signal arriving from outside the software.

    Examples from the paper's target system: the hardware registers
    ``PACNT``, ``TIC1``, ``TCNT`` and ``ADC``.
    """

    consumer: Port

    def __post_init__(self) -> None:
        if not self.consumer.is_input:
            raise ValueError(f"consumer must be an input port: {self.consumer}")

    @property
    def signal(self) -> str:
        return self.consumer.signal

    def __str__(self) -> str:
        return f"(external) -> {self.consumer}"


@dataclass(frozen=True, order=True)
class ExternalOutput:
    """A system output: a signal leaving the software.

    Example from the paper's target system: the output-compare register
    ``TOC2`` driving the pressure valves.
    """

    producer: Port

    def __post_init__(self) -> None:
        if not self.producer.is_output:
            raise ValueError(f"producer must be an output port: {self.producer}")

    @property
    def signal(self) -> str:
        return self.producer.signal

    def __str__(self) -> str:
        return f"{self.producer} -> (external)"
