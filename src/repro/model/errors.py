"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the individual failure modes.

The hierarchy mirrors the package layout:

* :class:`ModelError` -- problems in the static software-system model
  (unknown signals, duplicate producers, dangling inputs, ...).
* :class:`AnalysisError` -- problems during propagation analysis
  (missing permeability values, malformed graphs, ...).
* :class:`SimulationError` -- problems in the embedded-runtime simulator.
* :class:`InjectionError` -- problems in the fault-injection environment.
"""

from __future__ import annotations

import difflib
from typing import Iterable

__all__ = [
    "nearest_name",
    "did_you_mean",
    "ReproError",
    "ModelError",
    "UnknownSignalError",
    "UnknownModuleError",
    "DuplicateNameError",
    "DuplicateProducerError",
    "DanglingSignalError",
    "ValidationError",
    "AnalysisError",
    "MissingPermeabilityError",
    "InvalidProbabilityError",
    "NotASystemSignalError",
    "SimulationError",
    "ScheduleError",
    "InjectionError",
    "CampaignError",
    "TraceMismatchError",
]


def nearest_name(name: str, candidates: Iterable[str]) -> str | None:
    """The closest candidate to ``name``, or ``None`` when nothing is close.

    Backs the "did you mean ...?" suggestions of the unknown-name errors
    and of the lint diagnostics (:mod:`repro.lint`); a single shared
    matcher keeps the suggestions consistent across both layers.
    """
    matches = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.5)
    return matches[0] if matches else None


def did_you_mean(name: str, candidates: Iterable[str]) -> str:
    """Suggestion suffix `` (did you mean 'x'?)``, or ``""``."""
    suggestion = nearest_name(name, candidates)
    return f" (did you mean {suggestion!r}?)" if suggestion is not None else ""


class ReproError(Exception):
    """Base class for every exception raised by the library."""


# ---------------------------------------------------------------------------
# Static model errors
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for errors in the static software-system model."""


class _UnknownNameError(ModelError):
    """Shared behaviour of the unknown-signal/module errors.

    When the known names are passed as ``candidates``, the message
    carries a nearest-name "did you mean ...?" suggestion; ``where``
    adds the lookup context (e.g. ``"inputs of module 'CALC'"``).
    """

    kind = "name"

    def __init__(
        self,
        name: str,
        candidates: Iterable[str] = (),
        where: str | None = None,
    ) -> None:
        self.suggestion = nearest_name(name, candidates)
        message = f"unknown {self.kind}: {name!r}"
        if where:
            message += f" in {where}"
        if self.suggestion is not None:
            message += f" (did you mean {self.suggestion!r}?)"
        super().__init__(message)
        self.name = name
        self.where = where


class UnknownSignalError(_UnknownNameError):
    """A signal name was referenced but never declared."""

    kind = "signal"


class UnknownModuleError(_UnknownNameError):
    """A module name was referenced but never declared."""

    kind = "module"


class DuplicateNameError(ModelError):
    """A module or signal was declared twice under the same name."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(f"duplicate {kind} name: {name!r}")
        self.kind = kind
        self.name = name


class DuplicateProducerError(ModelError):
    """Two module outputs claim to produce the same signal.

    In the paper's system model a signal originates from exactly one
    source (a module output or the external environment), so a second
    producer is always a modelling mistake.
    """

    def __init__(self, signal: str, first: str, second: str) -> None:
        super().__init__(
            f"signal {signal!r} produced by both {first!r} and {second!r}"
        )
        self.signal = signal
        self.first = first
        self.second = second


class DanglingSignalError(ModelError):
    """A signal is produced but never consumed, or consumed but never produced."""

    def __init__(self, signal: str, problem: str) -> None:
        super().__init__(f"signal {signal!r}: {problem}")
        self.signal = signal
        self.problem = problem


class ValidationError(ModelError):
    """Aggregate of all validation problems found in a system model."""

    def __init__(self, problems: list[str]) -> None:
        joined = "; ".join(problems)
        super().__init__(f"system model validation failed: {joined}")
        self.problems = list(problems)


# ---------------------------------------------------------------------------
# Analysis errors
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Base class for errors in the propagation-analysis layer."""


class MissingPermeabilityError(AnalysisError):
    """A permeability value required by the analysis has not been set."""

    def __init__(self, module: str, input_signal: str, output_signal: str) -> None:
        super().__init__(
            "missing permeability value for "
            f"{module}: {input_signal} -> {output_signal}"
        )
        self.module = module
        self.input_signal = input_signal
        self.output_signal = output_signal


class InvalidProbabilityError(AnalysisError):
    """A probability-valued quantity fell outside the closed interval [0, 1]."""

    def __init__(self, what: str, value: float) -> None:
        super().__init__(f"{what} must lie in [0, 1], got {value!r}")
        self.what = what
        self.value = value


class NotASystemSignalError(AnalysisError):
    """A tree was requested for a signal that is not a system input/output."""

    def __init__(self, signal: str, expected: str) -> None:
        super().__init__(f"signal {signal!r} is not a {expected}")
        self.signal = signal
        self.expected = expected


# ---------------------------------------------------------------------------
# Simulation errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the embedded-runtime simulator."""


class ScheduleError(SimulationError):
    """The slot-based schedule is inconsistent (bad slot index, overlap, ...)."""


# ---------------------------------------------------------------------------
# Fault-injection errors
# ---------------------------------------------------------------------------


class InjectionError(ReproError):
    """Base class for errors raised by the fault-injection environment."""


class CampaignError(InjectionError):
    """An injection campaign was configured inconsistently."""


class TraceMismatchError(InjectionError):
    """Two traces that must be comparable (same signal set / length) are not."""
