"""Budget allocation policies for adaptive campaigns.

Each round, the adaptive controller hands the configured
:class:`BudgetPolicy` the round's trial budget plus a snapshot of every
*open* (not yet retired) target; the policy decides how many of the
round's trials each target receives.  Policies are pure functions of
their inputs — all randomness in the adaptive path lives in the
controller's seeded pool shuffles — so a (seed, config) pair fully
determines the round schedule.

``widest-first`` (the default)
    Greedy: repeatedly award one trial to the target whose *projected*
    Wilson half-width — the half-width it would still have after the
    trials already awarded this round — is largest.  Spends the budget
    where uncertainty is widest; when all targets are equally uncertain
    (e.g. the first round, where nothing has run), the projection ties
    and the greedy loop degenerates to round-robin.

``uniform``
    Round-robin in target order, one trial at a time.  The
    non-prioritising baseline; useful for ablations of the allocator
    itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.core.stats import wilson_interval

__all__ = [
    "BudgetPolicy",
    "TargetSnapshot",
    "UniformPolicy",
    "WidestFirstPolicy",
    "get_policy",
    "projected_half_width",
]


@dataclass(frozen=True)
class TargetSnapshot:
    """One open target as the allocator sees it.

    ``point_estimate`` is the observed permeability of the target's
    currently widest arc (0.5 before any trial ran — maximal binomial
    variance, i.e. "we know nothing"); ``n_trials`` the trials taken so
    far; ``capacity`` how many more the target can still absorb before
    its pool or per-target cap runs out.
    """

    module: str
    signal: str
    point_estimate: float
    n_trials: int
    capacity: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.signal)


def projected_half_width(
    point_estimate: float, n_trials: int, z: float = 1.96
) -> float:
    """Wilson half-width a target would have after ``n_trials`` trials.

    Holds the point estimate fixed and rescales the counts — the
    allocator's look-ahead for "how much would one more trial shrink
    this target".  With no trials there is no information: the
    half-width is the full-uncertainty 0.5.
    """
    if n_trials <= 0:
        return 0.5
    lo, hi = wilson_interval(point_estimate * n_trials, n_trials, z)
    return (hi - lo) / 2.0


@runtime_checkable
class BudgetPolicy(Protocol):
    """Strategy distributing one round's trial budget over open targets."""

    name: str

    def allocate(
        self, budget: int, targets: Sequence[TargetSnapshot], z: float = 1.96
    ) -> dict[tuple[str, str], int]:
        """Trials per target for this round.

        Must conserve the budget: the allocations sum to
        ``min(budget, sum of capacities)`` and never exceed any
        target's capacity.  Targets awarded zero trials may be omitted.
        """


class WidestFirstPolicy:
    """Greedy widest-first: each trial goes where uncertainty is largest.

    Ties (equal projected half-widths) break deterministically in favour
    of the earlier target in the snapshot order, which is the campaign's
    canonical target order.
    """

    name = "widest-first"

    def allocate(
        self, budget: int, targets: Sequence[TargetSnapshot], z: float = 1.96
    ) -> dict[tuple[str, str], int]:
        pending = {target.key: 0 for target in targets}
        widths = {
            target.key: projected_half_width(
                target.point_estimate, target.n_trials, z
            )
            for target in targets
        }
        remaining = min(budget, sum(t.capacity for t in targets))
        while remaining > 0:
            best = None
            best_width = -1.0
            for target in targets:
                if pending[target.key] >= target.capacity:
                    continue
                width = widths[target.key]
                if width > best_width:
                    best, best_width = target, width
            assert best is not None  # remaining > 0 implies spare capacity
            pending[best.key] += 1
            widths[best.key] = projected_half_width(
                best.point_estimate, best.n_trials + pending[best.key], z
            )
            remaining -= 1
        return {key: n for key, n in pending.items() if n > 0}


class UniformPolicy:
    """Round-robin baseline: one trial per open target until budget ends."""

    name = "uniform"

    def allocate(
        self, budget: int, targets: Sequence[TargetSnapshot], z: float = 1.96
    ) -> dict[tuple[str, str], int]:
        pending = {target.key: 0 for target in targets}
        remaining = min(budget, sum(t.capacity for t in targets))
        while remaining > 0:
            for target in targets:
                if remaining == 0:
                    break
                if pending[target.key] < target.capacity:
                    pending[target.key] += 1
                    remaining -= 1
        return {key: n for key, n in pending.items() if n > 0}


_POLICIES = {
    WidestFirstPolicy.name: WidestFirstPolicy,
    UniformPolicy.name: UniformPolicy,
}


def get_policy(name: str) -> BudgetPolicy:
    """Instantiate the policy registered under ``name``."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown budget policy {name!r}; "
            f"expected one of {', '.join(sorted(_POLICIES))}"
        ) from None
