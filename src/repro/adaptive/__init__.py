"""repro.adaptive — confidence-driven sequential-stopping campaigns.

Runs injection campaigns in rounds, retiring each (module, input)
target once the Wilson intervals of its output arcs are tight enough
(``ci_width``), and reallocating every round's budget to the widest
open intervals.  See docs/ADAPTIVE.md for the stopping rule, the
allocator and the soundness argument; the campaign engine wires this in
through ``CampaignConfig(adaptive=True, ...)`` / ``repro campaign
--adaptive``.

* :mod:`repro.adaptive.controller` — the round loop and stopping rule;
* :mod:`repro.adaptive.policy` — budget allocation policies
  (widest-first, uniform) behind the :class:`BudgetPolicy` protocol.
"""

from repro.adaptive.controller import (
    REASON_CAP,
    REASON_CONFIDENCE,
    REASON_EXHAUSTED,
    AdaptiveController,
    RetiredTarget,
    TargetMeasurement,
)
from repro.adaptive.policy import (
    BudgetPolicy,
    TargetSnapshot,
    UniformPolicy,
    WidestFirstPolicy,
    get_policy,
    projected_half_width,
)

__all__ = [
    "REASON_CAP",
    "REASON_CONFIDENCE",
    "REASON_EXHAUSTED",
    "AdaptiveController",
    "BudgetPolicy",
    "RetiredTarget",
    "TargetMeasurement",
    "TargetSnapshot",
    "UniformPolicy",
    "WidestFirstPolicy",
    "get_policy",
    "projected_half_width",
]
