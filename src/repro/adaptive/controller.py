"""Sequential-stopping controller for adaptive injection campaigns.

The exhaustive campaign spends ``cases x times x models`` injection
runs on *every* (module, input) target, no matter how quickly its
per-arc estimates tighten.  The adaptive controller instead runs the
grid in *rounds*:

1. each round, the configured :class:`~repro.adaptive.policy.BudgetPolicy`
   splits ``round_size`` trials over the still-open targets;
2. a target's trials are drawn (without replacement) from its own
   deterministically shuffled pool of the full exhaustive grid, so any
   prefix is a simple random sample of the grid;
3. after the round's outcomes are folded into live per-arc counts, a
   target *retires* once the widest Wilson interval across its output
   arcs has half-width below ``ci_width`` — or its per-target trial cap
   is hit, or its pool runs dry.

The controller is engine-agnostic: trials are opaque tokens (the
campaign uses ``(case_id, time_ms, model_index)`` triples), and the
uncertainty measurements come in from outside via
:meth:`AdaptiveController.complete_round`.  This keeps the stopping
logic unit-testable without a simulator.

Soundness sketch (docs/ADAPTIVE.md has the full argument): per-run
seeds are derived from the run's grid coordinates, not execution order,
so the sampled outcomes are *identical* to the exhaustive campaign's at
the same coordinates; the shuffled pool makes each target's achieved
trial set a uniform random subset of the exhaustive grid, for which the
Wilson interval at the achieved counts is a (finite-population
conservative) confidence interval around the exhaustive proportion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generic, Mapping, Sequence, TypeVar

from repro.adaptive.policy import BudgetPolicy, TargetSnapshot, WidestFirstPolicy

__all__ = ["AdaptiveController", "RetiredTarget", "TargetMeasurement"]

TrialT = TypeVar("TrialT")

#: Retirement reasons, in the order they are checked.
REASON_CONFIDENCE = "confidence"
REASON_CAP = "cap"
REASON_EXHAUSTED = "exhausted"


@dataclass(frozen=True)
class TargetMeasurement:
    """One open target's uncertainty after a round, measured externally.

    ``half_width`` is the maximum Wilson half-width across the target's
    output arcs; ``point_estimate`` the observed permeability of that
    widest arc (feeds the allocator's projection).
    """

    half_width: float
    point_estimate: float


@dataclass(frozen=True)
class RetiredTarget:
    """The stopping record of one retired (module, input) target."""

    module: str
    signal: str
    n_trials: int
    half_width: float
    reason: str
    round_index: int


class AdaptiveController(Generic[TrialT]):
    """Round-based sequential stopping over a set of injection targets.

    Parameters
    ----------
    pools:
        Per-target trial pools in canonical grid order (the controller
        shuffles a copy; the caller's sequences are not mutated).
    ci_width:
        Retire a target once its widest arc's Wilson half-width drops
        below this (requires at least one trial, so every target always
        contributes to the estimate matrix).
    round_size:
        Trials distributed per round.
    max_trials_per_target:
        Optional per-target cap; a target reaching it retires with
        reason ``"cap"`` even if still wide.  ``None``: the pool is the
        only cap (reason ``"exhausted"``).
    seed:
        Campaign master seed; each target's pool shuffle is seeded from
        it plus the target identity, so schedules are reproducible and
        independent of target enumeration order.
    z:
        Normal quantile of the interval (1.96: 95%).
    policy:
        The budget allocator; default widest-first.
    """

    def __init__(
        self,
        pools: Mapping[tuple[str, str], Sequence[TrialT]],
        *,
        ci_width: float,
        round_size: int,
        max_trials_per_target: int | None = None,
        seed: int = 0,
        z: float = 1.96,
        policy: BudgetPolicy | None = None,
    ) -> None:
        if not 0.0 < ci_width < 0.5:
            raise ValueError(
                f"ci_width must lie in (0, 0.5), got {ci_width} "
                "(0.5 is the half-width of total ignorance)"
            )
        if round_size < 1:
            raise ValueError(f"round_size must be >= 1, got {round_size}")
        if max_trials_per_target is not None and max_trials_per_target < 1:
            raise ValueError(
                "max_trials_per_target must be >= 1, "
                f"got {max_trials_per_target}"
            )
        self._ci_width = ci_width
        self._round_size = round_size
        self._cap = max_trials_per_target
        self._z = z
        self._policy: BudgetPolicy = (
            policy if policy is not None else WidestFirstPolicy()
        )
        self._pools: dict[tuple[str, str], list[TrialT]] = {}
        for key, pool in pools.items():
            if not pool:
                raise ValueError(f"target {key} has an empty trial pool")
            shuffled = list(pool)
            # Seed from the target identity, not enumeration order, so
            # the schedule survives target-set changes (e.g. pruning).
            random.Random(f"{seed}|adaptive|{key[0]}|{key[1]}").shuffle(
                shuffled
            )
            self._pools[key] = shuffled
        self._taken: dict[tuple[str, str], int] = dict.fromkeys(self._pools, 0)
        self._measure: dict[tuple[str, str], TargetMeasurement] = {
            key: TargetMeasurement(half_width=0.5, point_estimate=0.5)
            for key in self._pools
        }
        self._retired: dict[tuple[str, str], RetiredTarget] = {}
        self._round_index = 0
        self._n_scheduled = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def policy(self) -> BudgetPolicy:
        return self._policy

    @property
    def z(self) -> float:
        return self._z

    @property
    def ci_width(self) -> float:
        return self._ci_width

    @property
    def round_index(self) -> int:
        """Completed rounds so far."""
        return self._round_index

    @property
    def n_scheduled(self) -> int:
        """Trials scheduled across all rounds so far."""
        return self._n_scheduled

    def open_targets(self) -> tuple[tuple[str, str], ...]:
        """Targets still accumulating trials, in canonical order."""
        return tuple(key for key in self._pools if key not in self._retired)

    def retired(self) -> tuple[RetiredTarget, ...]:
        """Stopping records of every retired target, in retirement order."""
        return tuple(self._retired.values())

    @property
    def finished(self) -> bool:
        return len(self._retired) == len(self._pools)

    def n_taken(self, key: tuple[str, str]) -> int:
        """Trials scheduled so far for one target."""
        return self._taken[key]

    def _capacity(self, key: tuple[str, str]) -> int:
        limit = len(self._pools[key])
        if self._cap is not None:
            limit = min(limit, self._cap)
        return limit - self._taken[key]

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------

    def next_round(self) -> dict[tuple[str, str], list[TrialT]]:
        """Schedule the next round: target -> trials, in target order.

        Trials come off each target's shuffled pool in order, so a
        target's accumulated trials are always a prefix of its own
        deterministic permutation of the exhaustive grid.
        """
        snapshots = [
            TargetSnapshot(
                module=key[0],
                signal=key[1],
                point_estimate=self._measure[key].point_estimate,
                n_trials=self._taken[key],
                capacity=self._capacity(key),
            )
            for key in self.open_targets()
        ]
        allocation = self._policy.allocate(
            self._round_size, snapshots, self._z
        )
        schedule: dict[tuple[str, str], list[TrialT]] = {}
        for key in self.open_targets():
            n = allocation.get(key, 0)
            if n <= 0:
                continue
            if n > self._capacity(key):
                raise ValueError(
                    f"policy {self._policy.name!r} over-allocated {key}: "
                    f"{n} > capacity {self._capacity(key)}"
                )
            taken = self._taken[key]
            schedule[key] = self._pools[key][taken : taken + n]
            self._taken[key] = taken + n
            self._n_scheduled += n
        return schedule

    def complete_round(
        self, measurements: Mapping[tuple[str, str], TargetMeasurement]
    ) -> list[RetiredTarget]:
        """Fold the round's measurements; retire targets; return retirees.

        ``measurements`` must cover every open target.  Retirement
        checks confidence first (a tight interval beats hitting a cap),
        then the per-target cap, then pool exhaustion — so a retiree's
        ``reason`` tells whether the requested confidence was reached.
        """
        retirees: list[RetiredTarget] = []
        for key in self.open_targets():
            self._measure[key] = measurements[key]
        self._round_index += 1
        for key in self.open_targets():
            measurement = self._measure[key]
            taken = self._taken[key]
            reason = None
            if taken >= 1 and measurement.half_width < self._ci_width:
                reason = REASON_CONFIDENCE
            elif self._cap is not None and taken >= self._cap:
                reason = REASON_CAP
            elif taken >= len(self._pools[key]):
                reason = REASON_EXHAUSTED
            if reason is None:
                continue
            record = RetiredTarget(
                module=key[0],
                signal=key[1],
                n_trials=taken,
                half_width=measurement.half_width,
                reason=reason,
                round_index=self._round_index,
            )
            self._retired[key] = record
            retirees.append(record)
        return retirees
