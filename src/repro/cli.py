"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the paper's Fig. 2 example analysis and print all tables/trees.
``simulate``
    Run one closed-loop arrestment (mass/velocity selectable) and print
    the telemetry and the terminal signal values.
``campaign``
    Run an injection campaign against the arrestment system and print
    the paper's Tables 1–4, the placement report and the baselines.
    Results can be saved to JSON and re-analysed later.
``analyze``
    Re-run the analysis on a permeability matrix saved by ``campaign``.
``lint``
    Run the static model linter (see docs/LINTING.md) over one of the
    shipped systems, optionally with a permeability matrix, and print
    the findings as text, JSON or SARIF 2.1.0.
``flow``
    Run the static bit-flow permeability analysis (see
    docs/STATIC_ANALYSIS.md) over one of the shipped systems and print
    the per-arc interval bounds, exposure bounds, prunable targets and
    flow-backed findings (R013/R014) as text, JSON or SARIF 2.1.0.
``obs summarize`` / ``obs validate`` / ``obs tail``
    Render a text report from a recorded ``events.jsonl`` (phase
    timings, outcome mix, hottest propagation arcs), round-trip the
    file through the typed event parser (the CI schema check), or
    pretty-print the stream live (``--follow``) with ``--type``
    filtering.
``dash``
    Serve the live resilience dashboard over a recorded (or still
    growing) events file: permeability heatmap with Wilson intervals,
    progress/ETA and the error-lifetime distribution in a browser,
    with ``GET /api/snapshot`` and an SSE event feed (see
    docs/OBSERVABILITY.md).  ``campaign --dash`` serves the same
    dashboard live during a campaign.
``verify``
    Differential fuzzing (see docs/TESTING.md): generate random
    executable systems and cross-check analytical permeabilities
    against injection campaigns under every execution strategy and
    simulation backend.  Failures are shrunk and archived as corpus
    reproducers.

The CLI is a thin layer over the library; everything it does is
available programmatically (see README.md and docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import warnings
from pathlib import Path
from typing import Callable, Sequence, TextIO

from repro.arrestment import (
    build_arrestment_model,
    build_arrestment_run,
    paper_test_cases,
    reduced_test_cases,
)
from repro.arrestment.testcases import ArrestmentTestCase
from repro.baselines.uniform import analyse_uniform_propagation
from repro.baselines.edm_selection import greedy_edm_selection
from repro.core.analysis import PropagationAnalysis
from repro.core.permeability import PermeabilityMatrix
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.estimator import estimate_matrix
from repro.injection.latency import (
    latency_statistics,
    lifetime_statistics,
    render_latency_table,
    render_lifetime_table,
)
from repro.injection.selection import paper_times
from repro.model.errors import CampaignError
from repro.model.examples import build_fig2_system, fig2_permeabilities
from repro.obs import CampaignObserver, validate_events
from repro.obs.summary import summarize_events_file
from repro.simulation.backend import available_backends

__all__ = ["main", "make_progress_printer"]


def make_progress_printer(
    interval_s: float = 10.0,
    stream: TextIO | None = None,
    metrics=None,
) -> Callable[[int, int], None]:
    """Build a rate-limited ``(done, total)`` progress callback.

    Prints ``done/total (pct%)`` with the observed run rate and an ETA;
    when a live :class:`~repro.obs.metrics.MetricsRegistry` is given,
    appends the campaign's phase breakdown so a long campaign shows
    where its wall-clock is going while it runs.
    """
    out = stream if stream is not None else sys.stdout
    started = time.time()
    last = [0.0]

    def phase_suffix() -> str:
        if metrics is None:
            return ""
        parts = []
        for name, label in (
            ("phase.golden_run.seconds", "GR"),
            ("phase.injection_run.seconds", "IR"),
            ("phase.comparison.seconds", "cmp"),
            ("chunk.seconds", "chunks"),
        ):
            if name in metrics:
                histogram = metrics.histogram(name)
                if histogram.count:
                    parts.append(f"{label} {histogram.total:.1f}s")
        return f" [{' | '.join(parts)}]" if parts else ""

    def progress(done: int, total_runs: int) -> None:
        now = time.time()
        if done != total_runs and now - last[0] < interval_s:
            return
        last[0] = now
        elapsed = now - started
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = (total_runs - done) / rate if rate > 0 else float("inf")
        print(
            f"  {done}/{total_runs} ({done / total_runs:.0%}, "
            f"{rate:.1f} runs/s, ETA {eta:.0f}s){phase_suffix()}",
            file=out,
        )

    return progress


def _cmd_demo(args: argparse.Namespace) -> int:
    system = build_fig2_system()
    matrix = PermeabilityMatrix.from_dict(system, fig2_permeabilities())
    analysis = PropagationAnalysis(matrix)
    print(analysis.render_summary())
    print()
    print("Backtrack tree of sys_out (Fig. 4):")
    print(analysis.backtrack_trees["sys_out"].render())
    print()
    print("Trace tree of ext_a (Fig. 5):")
    print(analysis.trace_trees["ext_a"].render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    case = ArrestmentTestCase(mass_kg=args.mass, velocity_ms=args.velocity)
    runner = build_arrestment_run(case)
    result = runner.run(args.duration)
    print(f"Arrestment of {case}: {args.duration} ms simulated")
    for key, value in result.telemetry.items():
        print(f"  {key}: {value:.2f}")
    print("Final signal values:")
    for signal, value in result.final_signals.items():
        print(f"  {signal}: {value}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.twonode:
        from repro.arrestment.twonode import build_twonode_model, build_twonode_run

        system = build_twonode_model()
        factory = build_twonode_run
    else:
        system = build_arrestment_model()
        factory = build_arrestment_run
    if args.cases >= 25:
        cases = paper_test_cases()
    else:
        cases = reduced_test_cases(args.cases)
    times = (
        paper_times()
        if args.paper_grid
        else tuple(
            round(500 + index * (5000 - 500) / max(1, args.times - 1))
            for index in range(args.times)
        )
    )
    try:
        config = CampaignConfig(
            duration_ms=args.duration,
            injection_times_ms=times,
            error_models=tuple(bit_flip_models(args.bits)),
            seed=args.seed,
            reuse_golden_prefix=not args.no_prefix_reuse,
            fast_forward=not args.no_fast_forward,
            lint=not args.no_lint,
            backend=args.backend,
            dashboard=args.dash,
            static_prune=args.static_prune,
            store=args.store,
            no_cache=args.no_cache,
            adaptive=args.adaptive,
            ci_width=args.ci_width,
            round_size=args.round_size,
            max_trials_per_target=args.max_trials_per_target,
            budget_policy=args.budget_policy,
        )
    except CampaignError as exc:
        print(f"invalid campaign configuration: {exc}", file=sys.stderr)
        return 2
    dash_server = None
    extra_sinks: list = []
    if args.dash is not None:
        from repro.obs.dash import DashboardServer, DashboardSink

        address = _parse_dash_address(args.dash)
        if address is None:
            print(f"invalid --dash address: {args.dash!r} "
                  "(expected HOST:PORT)", file=sys.stderr)
            return 2
        dash_sink = DashboardSink()
        extra_sinks.append(dash_sink)
        dash_server = DashboardServer(dash_sink, *address).start()
        print(f"dashboard: {dash_server.url}")
    observer = None
    if args.events or args.metrics or extra_sinks:
        for path in (args.events, args.metrics):
            if path:
                Path(path).parent.mkdir(parents=True, exist_ok=True)
        observer = CampaignObserver.to_files(
            events_path=args.events,
            with_metrics=True,
            system=system,
            extra_sinks=extra_sinks,
        )
    campaign = InjectionCampaign(
        system, factory, cases, config, observer=observer
    )
    total = campaign.total_runs()
    print(f"{len(cases)} workloads x {len(campaign.targets)} signals x "
          f"{config.runs_per_target()} injections = {total} runs")
    if config.reuse_golden_prefix:
        skipped = campaign.simulated_ms_skipped()
        print(f"prefix reuse skips {skipped} of {campaign.simulated_ms_total()} "
              f"simulated ms ({skipped / campaign.simulated_ms_total():.0%})")
    started = time.time()
    progress = make_progress_printer(
        metrics=observer.metrics if observer is not None else None
    )

    workers = args.workers if args.workers is not None else (args.parallel or 1)
    if workers > 1:
        result = campaign.execute_parallel(
            max_workers=workers, progress=progress, chunk_size=args.chunk_size
        )
    else:
        result = campaign.execute(progress=progress)
    print(f"done in {time.time() - started:.0f}s")
    stats = campaign.last_store_stats
    if stats is not None and args.no_cache:
        print(
            f"result store: cache bypassed (--no-cache), "
            f"{stats.runs_executed} run(s) executed and refreshed"
        )
    elif stats is not None:
        print(
            f"result store: {stats.hits} row(s) reused "
            f"({stats.runs_reused} runs recomposed from cache), "
            f"{stats.misses} row(s) executed fresh"
            + (f", {stats.uncacheable} uncacheable" if stats.uncacheable else "")
            + (
                f"; WARNING: {stats.rejected} corrupt artifact(s) re-executed"
                if stats.rejected
                else ""
            )
        )
    if result.n_pruned_runs():
        print(
            f"static pruning: {len(result.pruned_targets())} target(s) "
            f"proven zero-permeability, {result.n_pruned_runs()} runs "
            "recorded as exact zeros without executing"
        )
    if config.adaptive:
        rows = result.adaptive_rows()
        n_trials = result.n_adaptive_trials()
        n_saved = result.n_adaptive_trials_saved()
        n_grid = n_trials + n_saved
        saved_pct = n_saved / n_grid if n_grid else 0.0
        by_reason: dict[str, int] = {}
        for row in rows:
            by_reason[row.reason] = by_reason.get(row.reason, 0) + 1
        reasons = ", ".join(
            f"{count} {reason}" for reason, count in sorted(by_reason.items())
        )
        print(
            f"adaptive stopping: {len(rows)} target(s) retired ({reasons}), "
            f"{n_trials}/{n_grid} trials executed "
            f"({saved_pct:.0%} saved)"
        )
    if config.fast_forward and len(result):
        print(
            f"fast-forward: {result.n_reconverged()}/{len(result)} IRs "
            f"reconverged ({result.reconverged_fraction():.0%}), "
            f"{result.frames_fast_forwarded_total()} simulated ms spliced"
        )

    if observer is not None:
        observer.close()
        if args.events:
            print(f"events written to {args.events}")
        if args.metrics:
            observer.metrics.dump_json(args.metrics)
            print(f"metrics written to {args.metrics}")

    matrix = estimate_matrix(result)
    if args.save:
        with open(args.save, "w", encoding="utf-8") as handle:
            handle.write(matrix.to_json())
        print(f"matrix saved to {args.save}")

    analysis = PropagationAnalysis(matrix)
    print()
    print(analysis.render_summary())
    print()
    print(render_latency_table(latency_statistics(result)))
    print()
    if config.fast_forward:
        lifetimes = lifetime_statistics(result)
        if lifetimes:
            print(render_lifetime_table(lifetimes))
            print()
    print(analyse_uniform_propagation(result).render())
    print()
    print(greedy_edm_selection(result, max_monitors=args.monitors).render())
    if dash_server is not None:
        _linger(dash_server, args.dash_linger)
    return 0


def _parse_dash_address(text: str) -> tuple[str, int] | None:
    """Parse ``HOST:PORT`` / ``:PORT`` / ``PORT`` into ``(host, port)``."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        return None
    if not 0 <= port <= 65535:
        return None
    return (host or "127.0.0.1", port)


def _linger(dash_server, linger_s: float | None) -> None:
    """Keep the dashboard serving after the campaign/replay finished.

    ``None`` serves until Ctrl-C (the interactive default for ``repro
    dash``); a finite value bounds the wait so scripted callers (the CI
    smoke job) can poll ``/api/snapshot`` and exit deterministically.
    """
    try:
        if linger_s is None:
            print(f"dashboard serving at {dash_server.url} "
                  "(Ctrl-C to stop)")
            while True:
                time.sleep(3600)
        elif linger_s > 0:
            print(f"dashboard serving at {dash_server.url} "
                  f"for {linger_s:g}s more")
            time.sleep(linger_s)
    except KeyboardInterrupt:
        print()
    finally:
        dash_server.stop()


def _cmd_dash(args: argparse.Namespace) -> int:
    import threading

    from repro.obs.dash import DashboardServer, DashboardSink, tail_lines

    address = _parse_dash_address(args.address)
    if address is None:
        print(f"invalid --address: {args.address!r} (expected HOST:PORT)",
              file=sys.stderr)
        return 2
    if not Path(args.events).exists() and not args.follow:
        print(f"no such events file: {args.events}", file=sys.stderr)
        return 2
    sink = DashboardSink()
    server = DashboardServer(sink, *address).start()
    stop = threading.Event()

    def feed() -> None:
        try:
            for line in tail_lines(
                args.events, follow=args.follow, stop=stop.is_set
            ):
                sink.emit_line(line)
        finally:
            if not args.follow:
                sink.close()

    feeder = threading.Thread(target=feed, name="repro-dash-feed", daemon=True)
    feeder.start()
    try:
        _linger(server, args.linger)
    finally:
        stop.set()
        sink.close()
    snapshot = sink.snapshot()
    print(f"served {snapshot['stream']['n_events']} event(s) "
          f"from {args.events}")
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    from repro.obs.dash import tail_lines
    from repro.obs.events import PrettyPrintSink, decode_event

    wanted = (
        {name.strip() for name in args.type.split(",") if name.strip()}
        if args.type
        else None
    )
    printer = PrettyPrintSink(stream=sys.stdout, verbose=True)
    skipped = 0
    try:
        for line in tail_lines(args.events, follow=args.follow):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                decode_event(record)
            except (json.JSONDecodeError, ValueError, KeyError, TypeError):
                skipped += 1
                continue
            if wanted is not None and record.get("type") not in wanted:
                continue
            printer.emit(record)
    except KeyboardInterrupt:
        print()
    if skipped:
        print(f"({skipped} damaged line(s) skipped)", file=sys.stderr)
    return 0


def _build_named_system(name: str):
    if name == "fig2":
        return build_fig2_system()
    if name == "twonode":
        from repro.arrestment.twonode import build_twonode_model

        return build_twonode_model()
    return build_arrestment_model()


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import Severity, lint_system, to_sarif

    system = _build_named_system(args.system)
    matrix = None
    if args.paper_matrix:
        if args.system != "fig2":
            print("--paper-matrix requires --system fig2", file=sys.stderr)
            return 2
        matrix = PermeabilityMatrix.from_dict(system, fig2_permeabilities())
    elif args.matrix:
        with open(args.matrix, "r", encoding="utf-8") as handle:
            matrix = PermeabilityMatrix.from_json(system, handle.read())
    report = lint_system(
        system,
        matrix,
        select=args.select.split(",") if args.select else None,
        ignore=args.ignore.split(",") if args.ignore else None,
    )
    if args.format == "json":
        rendered = report.to_json()
    elif args.format == "sarif":
        rendered = json.dumps(to_sarif(report), indent=2)
    else:
        rendered = report.render_text()
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(f"{report.summary()}; report written to {args.output}")
    else:
        print(rendered)
    return 1 if report.fails_at(Severity.from_label(args.fail_on)) else 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.flow import analyse_run, analyse_system, flow_report
    from repro.lint import Severity

    if args.system == "fig2":
        # Fig. 2 is an analysis-only model without an executable
        # runtime, so every module is opaque (T) to the flow analysis.
        analysis = analyse_system(build_fig2_system())
    else:
        case = ArrestmentTestCase(mass_kg=14000.0, velocity_ms=60.0)
        if args.system == "twonode":
            from repro.arrestment.twonode import build_twonode_run

            runner = build_twonode_run(case)
        else:
            runner = build_arrestment_run(case)
        analysis = analyse_run(runner)
    report = flow_report(analysis)
    if args.format == "json":
        rendered = report.to_json()
    elif args.format == "sarif":
        rendered = json.dumps(report.to_sarif(), indent=2)
    else:
        rendered = report.render_text()
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(f"{report.summary()}; report written to {args.output}")
    else:
        print(rendered)
    return 1 if report.fails_at(Severity.from_label(args.fail_on)) else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.twonode:
        from repro.arrestment.twonode import build_twonode_model

        system = build_twonode_model()
    else:
        system = build_arrestment_model()
    with open(args.matrix, "r", encoding="utf-8") as handle:
        matrix = PermeabilityMatrix.from_json(system, handle.read())
    analysis = PropagationAnalysis(matrix)
    print(analysis.render_summary())
    return 0


def _cmd_obs_summarize(args: argparse.Namespace) -> int:
    print(
        summarize_events_file(
            args.events, metrics_path=args.metrics, top=args.top
        )
    )
    return 0


def _cmd_obs_validate(args: argparse.Namespace) -> int:
    try:
        count = validate_events(args.events)
    except ValueError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"{args.events}: {count} events, schema valid")
    return 0


def _cmd_store_ls(args: argparse.Namespace) -> int:
    from repro.store import ResultStore

    store = ResultStore(args.dir)
    n_ok = n_bad = n_runs = 0
    for record in store.iter_artifacts():
        if not record.ok:
            n_bad += 1
            print(f"INVALID  {record.path}  ({record.reason})")
            continue
        n_ok += 1
        payload = record.payload
        kind = payload.get("kind", "?")
        runs = int(payload.get("n_runs", 0))
        n_runs += runs if kind == "unit" else 0
        print(
            f"{record.key[:16]}  {kind:<6} "
            f"{payload.get('case_id', '?')}/{payload.get('module', '?')}"
            f".{payload.get('signal', '?')}  {runs} runs"
        )
    print(
        f"{n_ok} valid artifact(s) ({n_runs} cached injection runs)"
        + (f", {n_bad} invalid" if n_bad else "")
    )
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    from repro.store import ResultStore

    removed = ResultStore(args.dir).gc(max_age_days=args.max_age_days)
    print(f"removed {len(removed)} artifact(s)")
    for path in removed:
        print(f"  {path}")
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.store import ResultStore

    n_ok = n_bad = 0
    for record in ResultStore(args.dir).iter_artifacts():
        if record.ok:
            n_ok += 1
        else:
            n_bad += 1
            print(f"INVALID  {record.path}  ({record.reason})", file=sys.stderr)
    print(f"{args.dir}: {n_ok} valid artifact(s), {n_bad} invalid")
    return 1 if n_bad else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import (
        OracleFailure,
        Reproducer,
        default_campaign,
        generate_system,
        iter_corpus,
        load_reproducer,
        replay,
        shrink_failure,
        verify_generated,
        write_reproducer,
    )

    corpus_dir = Path(args.corpus)
    backends = None if args.backend == "both" else (args.backend,)

    if args.replay is not None:
        paths = [Path(p) for p in args.replay] or iter_corpus(corpus_dir)
        if not paths:
            print(f"no reproducers found under {corpus_dir}", file=sys.stderr)
            return 2
        status = 0
        for path in paths:
            try:
                report = replay(load_reproducer(path), backends=backends)
            except OracleFailure as failure:
                print(f"FAIL {path}: {failure}", file=sys.stderr)
                status = 1
            except Exception as exc:
                print(
                    f"FAIL {path}: oracle crashed: "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
                status = 1
            else:
                print(f"ok   {path}: {report.render()}")
        return status

    deadline = None if args.budget is None else time.monotonic() + args.budget
    verified = 0
    feedback_seen = 0
    for seed in range(args.start_seed, args.start_seed + args.seeds):
        if deadline is not None and time.monotonic() >= deadline:
            print(
                f"time budget exhausted after {verified} system(s); stopping"
            )
            break
        generated = generate_system(seed)
        campaign = default_campaign(generated)
        feedback_seen += 1 if generated.has_feedback else 0
        try:
            report = verify_generated(generated, campaign, backends=backends)
        except OracleFailure as failure:
            message = str(failure)
        except Exception as exc:  # a crash mid-oracle is a failure too
            message = f"oracle crashed: {type(exc).__name__}: {exc}"
        else:
            verified += 1
            print(f"seed {seed}: {report.render()}")
            continue
        print(f"seed {seed}: ORACLE FAILURE: {message}", file=sys.stderr)
        spec = generated.spec
        if not args.no_shrink:
            print("shrinking the failing system ...")
            spec, campaign, message = shrink_failure(spec, campaign)
            connections = sum(len(m.inputs) for m in spec.modules)
            print(
                f"shrunk to {len(spec.modules)} module(s), "
                f"{connections} connection(s), "
                f"{len(campaign.injection_times_ms)} injection time(s), "
                f"{campaign.n_bits} bit(s)"
            )
        path = write_reproducer(
            corpus_dir,
            Reproducer(
                kind="generated",
                campaign=campaign,
                spec=spec,
                note=f"found by 'repro verify' (seed {seed})",
                failure=message,
            ),
        )
        print(f"reproducer written: {path}", file=sys.stderr)
        return 1
    print(
        f"verified {verified} generated system(s), {feedback_seen} with "
        "marked feedback: all oracle checks passed"
    )
    return 0


class _WorkersAction(argparse.Action):
    """``--workers``: reject combination with the ``--parallel`` alias."""

    def __call__(self, parser, namespace, values, option_string=None):
        if getattr(namespace, "parallel", None) is not None:
            parser.error(
                "--workers conflicts with the deprecated --parallel alias; "
                "pass --workers only"
            )
        setattr(namespace, self.dest, values)


class _DeprecatedParallelAction(argparse.Action):
    """``--parallel``: warn about deprecation, reject ``--workers`` mix."""

    def __call__(self, parser, namespace, values, option_string=None):
        warnings.warn(
            "--parallel is deprecated; use --workers instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if getattr(namespace, "workers", None) is not None:
            parser.error(
                "--parallel is a deprecated alias of --workers; "
                "pass --workers only"
            )
        setattr(namespace, self.dest, values)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Error-propagation analysis (Hiller/Jhumka/Suri, DSN 2001)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="analyse the paper's Fig. 2 example")
    demo.set_defaults(func=_cmd_demo)

    simulate = commands.add_parser(
        "simulate", help="run one closed-loop arrestment"
    )
    simulate.add_argument("--mass", type=float, default=14000.0, help="kg")
    simulate.add_argument("--velocity", type=float, default=60.0, help="m/s")
    simulate.add_argument("--duration", type=int, default=12000, help="ms")
    simulate.set_defaults(func=_cmd_simulate)

    campaign = commands.add_parser(
        "campaign", help="run an injection campaign and print Tables 1-4"
    )
    campaign.add_argument("--cases", type=int, default=2,
                          help="workloads (25 = the paper's full grid)")
    campaign.add_argument("--times", type=int, default=2,
                          help="injection instants between 0.5s and 5s")
    campaign.add_argument("--bits", type=int, default=16,
                          help="bit positions to flip")
    campaign.add_argument("--duration", type=int, default=6000, help="run ms")
    campaign.add_argument("--seed", type=int, default=2001)
    campaign.add_argument("--monitors", type=int, default=3,
                          help="EDM subset size for the [18] baseline")
    campaign.add_argument("--paper-grid", action="store_true",
                          help="use the paper's ten half-second instants")
    campaign.add_argument("--workers", type=int, default=None, metavar="N",
                          action=_WorkersAction,
                          help="worker processes for the grid-sharded "
                          "parallel path (scales past the case count)")
    campaign.add_argument("--chunk-size", type=int, default=None, metavar="M",
                          help="injection targets per parallel work item "
                          "(default: ~4 chunks per worker)")
    campaign.add_argument("--parallel", type=int, default=None, metavar="N",
                          action=_DeprecatedParallelAction,
                          help="deprecated alias for --workers "
                          "(conflicts with it)")
    campaign.add_argument("--events", metavar="FILE", default=None,
                          help="record the structured campaign event "
                          "stream as JSONL (see docs/OBSERVABILITY.md)")
    campaign.add_argument("--metrics", metavar="FILE", default=None,
                          help="dump the campaign metrics registry "
                          "(counters/histograms) as JSON")
    campaign.add_argument("--dash", metavar="HOST:PORT", nargs="?",
                          const="127.0.0.1:8765", default=None,
                          help="serve the live dashboard while the "
                          "campaign runs (default address when given "
                          "without a value: 127.0.0.1:8765; port 0 "
                          "picks a free port)")
    campaign.add_argument("--dash-linger", type=float, default=None,
                          metavar="SECS",
                          help="with --dash: keep serving this many "
                          "seconds after the campaign finishes "
                          "(default: until Ctrl-C)")
    campaign.add_argument("--no-prefix-reuse", action="store_true",
                          help="disable Golden-Run checkpoint reuse "
                          "(re-run every IR from time zero)")
    campaign.add_argument("--no-fast-forward", action="store_true",
                          help="disable reconvergence fast-forward "
                          "(simulate every IR to the end even after "
                          "its injected error provably died out)")
    campaign.add_argument("--backend", choices=available_backends(),
                          default=os.environ.get("REPRO_BACKEND", "reference"),
                          help="simulation backend executing the injection "
                          "runs (default: $REPRO_BACKEND or 'reference'; "
                          "see docs/PERFORMANCE.md)")
    campaign.add_argument("--no-lint", action="store_true",
                          help="skip the pre-campaign model lint gate "
                          "(see docs/LINTING.md)")
    campaign.add_argument("--adaptive", action="store_true",
                          help="confidence-driven sequential stopping: "
                          "run injections in rounds and retire each "
                          "(module, input) target once its widest Wilson "
                          "interval is narrow enough (see docs/ADAPTIVE.md)")
    campaign.add_argument("--ci-width", type=float, default=None,
                          metavar="W",
                          help="with --adaptive: retire a target when "
                          "every output arc's Wilson half-width drops "
                          "below W (default 0.05)")
    campaign.add_argument("--round-size", type=int, default=None, metavar="N",
                          help="with --adaptive: injection budget per "
                          "round (default: 2x the open target count)")
    campaign.add_argument("--max-trials-per-target", type=int, default=None,
                          metavar="N",
                          help="with --adaptive: hard trial cap per "
                          "target (default: the full grid)")
    campaign.add_argument("--budget-policy",
                          choices=("widest-first", "uniform"), default=None,
                          help="with --adaptive: round budget allocator "
                          "(default widest-first)")
    campaign.add_argument("--static-prune", action="store_true",
                          help="skip injection targets whose arcs the "
                          "static flow analysis proves zero-permeability, "
                          "recording them as exact zero counts "
                          "(see docs/STATIC_ANALYSIS.md)")
    campaign.add_argument("--store", metavar="DIR", default=None,
                          help="content-addressed result store: reuse "
                          "cached target rows and record fresh ones "
                          "(see docs/INCREMENTAL.md)")
    campaign.add_argument("--no-cache", action="store_true",
                          help="with --store: re-execute everything and "
                          "refresh the store instead of reading it")
    campaign.add_argument("--twonode", action="store_true",
                          help="analyse the master/slave configuration")
    campaign.add_argument("--save", metavar="FILE",
                          help="save the estimated matrix as JSON")
    campaign.set_defaults(func=_cmd_campaign)

    lint = commands.add_parser(
        "lint", help="statically analyse a system model (docs/LINTING.md)"
    )
    lint.add_argument("--system", choices=("arrestment", "fig2", "twonode"),
                      default="arrestment", help="which shipped model to lint")
    lint.add_argument("--matrix", metavar="FILE", default=None,
                      help="permeability matrix JSON enabling the "
                      "R009/R010 matrix rules")
    lint.add_argument("--paper-matrix", action="store_true",
                      help="use the built-in Fig. 2 permeabilities "
                      "(requires --system fig2)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="output format")
    lint.add_argument("--select", metavar="CODES", default=None,
                      help="comma-separated code prefixes to keep "
                      "(e.g. R001,R00)")
    lint.add_argument("--ignore", metavar="CODES", default=None,
                      help="comma-separated code prefixes to suppress")
    lint.add_argument("--fail-on", choices=("error", "warning", "info"),
                      default="error",
                      help="exit non-zero when a finding at or above "
                      "this severity remains (default: error)")
    lint.add_argument("--output", metavar="FILE", default=None,
                      help="write the report to a file instead of stdout")
    lint.set_defaults(func=_cmd_lint)

    flow = commands.add_parser(
        "flow",
        help="static bit-flow permeability bounds (docs/STATIC_ANALYSIS.md)",
    )
    flow.add_argument("--system", choices=("arrestment", "fig2", "twonode"),
                      default="arrestment",
                      help="which shipped model to analyse (fig2 has no "
                      "executable runtime: every module is T)")
    flow.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="output format")
    flow.add_argument("--fail-on", choices=("error", "warning", "info"),
                      default="error",
                      help="exit non-zero when a finding at or above "
                      "this severity remains (default: error)")
    flow.add_argument("--output", metavar="FILE", default=None,
                      help="write the report to a file instead of stdout")
    flow.set_defaults(func=_cmd_flow)

    analyze = commands.add_parser(
        "analyze", help="re-analyse a saved permeability matrix"
    )
    analyze.add_argument("matrix", help="JSON file from 'campaign --save'")
    analyze.add_argument("--twonode", action="store_true",
                         help="the matrix belongs to the master/slave system")
    analyze.set_defaults(func=_cmd_analyze)

    obs = commands.add_parser(
        "obs", help="inspect recorded campaign observability artifacts"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_commands.add_parser(
        "summarize",
        help="text report from an events file: phase timings, outcome "
        "mix, hottest propagation arcs",
    )
    summarize.add_argument("events", help="events.jsonl from 'campaign --events'")
    summarize.add_argument("--metrics", metavar="FILE", default=None,
                           help="metrics.json overriding the snapshot "
                           "embedded in the events file")
    summarize.add_argument("--top", type=int, default=10,
                           help="propagation arcs to list")
    summarize.set_defaults(func=_cmd_obs_summarize)
    validate = obs_commands.add_parser(
        "validate",
        help="round-trip an events file through the typed event parser",
    )
    validate.add_argument("events", help="events.jsonl to validate")
    validate.set_defaults(func=_cmd_obs_validate)
    tail = obs_commands.add_parser(
        "tail",
        help="pretty-print an events file, optionally following a "
        "still-growing stream",
    )
    tail.add_argument("events", help="events.jsonl to print")
    tail.add_argument("--follow", "-f", action="store_true",
                      help="keep the file open and print events as a "
                      "running campaign appends them (Ctrl-C to stop)")
    tail.add_argument("--type", metavar="TYPES", default=None,
                      help="comma-separated event types to keep "
                      "(e.g. InjectionFired,RunReconverged)")
    tail.set_defaults(func=_cmd_obs_tail)

    store = commands.add_parser(
        "store",
        help="inspect a content-addressed campaign result store "
        "(docs/INCREMENTAL.md)",
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_commands.add_parser(
        "ls", help="list the store's artifacts and their cached runs"
    )
    store_ls.add_argument("dir", help="store directory (campaign --store)")
    store_ls.set_defaults(func=_cmd_store_ls)
    store_gc = store_commands.add_parser(
        "gc",
        help="delete invalid artifacts, leftover temp files and "
        "(optionally) artifacts older than --max-age-days",
    )
    store_gc.add_argument("dir", help="store directory to clean")
    store_gc.add_argument("--max-age-days", type=float, default=None,
                          metavar="DAYS",
                          help="also delete artifacts not rewritten in "
                          "this many days")
    store_gc.set_defaults(func=_cmd_store_gc)
    store_verify = store_commands.add_parser(
        "verify",
        help="re-hash every artifact; exit 1 if any fails validation",
    )
    store_verify.add_argument("dir", help="store directory to check")
    store_verify.set_defaults(func=_cmd_store_verify)

    dash = commands.add_parser(
        "dash",
        help="serve the live dashboard over a recorded events file "
        "(docs/OBSERVABILITY.md)",
    )
    dash.add_argument("--events", metavar="FILE", required=True,
                      help="events.jsonl from 'campaign --events' "
                      "(may still be growing with --follow)")
    dash.add_argument("--follow", "-f", action="store_true",
                      help="keep tailing the file for new events "
                      "(live replay of a running campaign)")
    dash.add_argument("--address", metavar="HOST:PORT",
                      default="127.0.0.1:8765",
                      help="listen address (default: 127.0.0.1:8765; "
                      "port 0 picks a free port)")
    dash.add_argument("--linger", type=float, default=None, metavar="SECS",
                      help="stop serving after this many seconds "
                      "(default: until Ctrl-C)")
    dash.set_defaults(func=_cmd_dash)

    verify = commands.add_parser(
        "verify",
        help="differential fuzzing: analysis vs. injection on generated "
        "systems (docs/TESTING.md)",
    )
    verify.add_argument("--seeds", type=int, default=25,
                        help="number of generated systems to verify")
    verify.add_argument("--start-seed", type=int, default=0,
                        help="first generator seed (fuzz different systems "
                        "by sliding the window)")
    verify.add_argument("--budget", type=float, default=None, metavar="SECS",
                        help="wall-clock budget; stop cleanly when exceeded")
    verify.add_argument("--corpus", metavar="DIR", default="tests/corpus",
                        help="directory receiving shrunk reproducers "
                        "(default: tests/corpus)")
    verify.add_argument("--replay", metavar="FILE", nargs="*", default=None,
                        help="replay reproducer file(s) instead of fuzzing; "
                        "without arguments, replay the whole corpus")
    verify.add_argument("--backend", choices=(*available_backends(), "both"),
                        default="both",
                        help="restrict the oracle's strategy matrix to one "
                        "simulation backend (default: cross-check both)")
    verify.add_argument("--no-shrink", action="store_true",
                        help="archive failures unshrunk (faster triage)")
    verify.set_defaults(func=_cmd_verify)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
