"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the paper's Fig. 2 example analysis and print all tables/trees.
``simulate``
    Run one closed-loop arrestment (mass/velocity selectable) and print
    the telemetry and the terminal signal values.
``campaign``
    Run an injection campaign against the arrestment system and print
    the paper's Tables 1–4, the placement report and the baselines.
    Results can be saved to JSON and re-analysed later.
``analyze``
    Re-run the analysis on a permeability matrix saved by ``campaign``.

The CLI is a thin layer over the library; everything it does is
available programmatically (see README.md).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.arrestment import (
    build_arrestment_model,
    build_arrestment_run,
    paper_test_cases,
    reduced_test_cases,
)
from repro.arrestment.testcases import ArrestmentTestCase
from repro.baselines.uniform import analyse_uniform_propagation
from repro.baselines.edm_selection import greedy_edm_selection
from repro.core.analysis import PropagationAnalysis
from repro.core.permeability import PermeabilityMatrix
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.estimator import estimate_matrix
from repro.injection.latency import latency_statistics, render_latency_table
from repro.injection.selection import paper_times
from repro.model.examples import build_fig2_system, fig2_permeabilities

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    system = build_fig2_system()
    matrix = PermeabilityMatrix.from_dict(system, fig2_permeabilities())
    analysis = PropagationAnalysis(matrix)
    print(analysis.render_summary())
    print()
    print("Backtrack tree of sys_out (Fig. 4):")
    print(analysis.backtrack_trees["sys_out"].render())
    print()
    print("Trace tree of ext_a (Fig. 5):")
    print(analysis.trace_trees["ext_a"].render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    case = ArrestmentTestCase(mass_kg=args.mass, velocity_ms=args.velocity)
    runner = build_arrestment_run(case)
    result = runner.run(args.duration)
    print(f"Arrestment of {case}: {args.duration} ms simulated")
    for key, value in result.telemetry.items():
        print(f"  {key}: {value:.2f}")
    print("Final signal values:")
    for signal, value in result.final_signals.items():
        print(f"  {signal}: {value}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.twonode:
        from repro.arrestment.twonode import build_twonode_model, build_twonode_run

        system = build_twonode_model()
        factory = build_twonode_run
    else:
        system = build_arrestment_model()
        factory = build_arrestment_run
    if args.cases >= 25:
        cases = paper_test_cases()
    else:
        cases = reduced_test_cases(args.cases)
    times = (
        paper_times()
        if args.paper_grid
        else tuple(
            round(500 + index * (5000 - 500) / max(1, args.times - 1))
            for index in range(args.times)
        )
    )
    config = CampaignConfig(
        duration_ms=args.duration,
        injection_times_ms=times,
        error_models=tuple(bit_flip_models(args.bits)),
        seed=args.seed,
        reuse_golden_prefix=not args.no_prefix_reuse,
    )
    campaign = InjectionCampaign(system, factory, cases, config)
    total = campaign.total_runs()
    print(f"{len(cases)} workloads x {len(campaign.targets)} signals x "
          f"{config.runs_per_target()} injections = {total} runs")
    if config.reuse_golden_prefix:
        skipped = campaign.simulated_ms_skipped()
        print(f"prefix reuse skips {skipped} of {campaign.simulated_ms_total()} "
              f"simulated ms ({skipped / campaign.simulated_ms_total():.0%})")
    started = time.time()
    last = [0.0]

    def progress(done: int, _total: int) -> None:
        now = time.time()
        if now - last[0] >= 10.0:
            print(f"  {done}/{_total} ({done / (now - started):.1f}/s)")
            last[0] = now

    workers = args.workers if args.workers is not None else args.parallel
    if workers > 1:
        result = campaign.execute_parallel(
            max_workers=workers, progress=progress, chunk_size=args.chunk_size
        )
    else:
        result = campaign.execute(progress=progress)
    print(f"done in {time.time() - started:.0f}s")

    matrix = estimate_matrix(result)
    if args.save:
        with open(args.save, "w", encoding="utf-8") as handle:
            handle.write(matrix.to_json())
        print(f"matrix saved to {args.save}")

    analysis = PropagationAnalysis(matrix)
    print()
    print(analysis.render_summary())
    print()
    print(render_latency_table(latency_statistics(result)))
    print()
    print(analyse_uniform_propagation(result).render())
    print()
    print(greedy_edm_selection(result, max_monitors=args.monitors).render())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.twonode:
        from repro.arrestment.twonode import build_twonode_model

        system = build_twonode_model()
    else:
        system = build_arrestment_model()
    with open(args.matrix, "r", encoding="utf-8") as handle:
        matrix = PermeabilityMatrix.from_json(system, handle.read())
    analysis = PropagationAnalysis(matrix)
    print(analysis.render_summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Error-propagation analysis (Hiller/Jhumka/Suri, DSN 2001)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="analyse the paper's Fig. 2 example")
    demo.set_defaults(func=_cmd_demo)

    simulate = commands.add_parser(
        "simulate", help="run one closed-loop arrestment"
    )
    simulate.add_argument("--mass", type=float, default=14000.0, help="kg")
    simulate.add_argument("--velocity", type=float, default=60.0, help="m/s")
    simulate.add_argument("--duration", type=int, default=12000, help="ms")
    simulate.set_defaults(func=_cmd_simulate)

    campaign = commands.add_parser(
        "campaign", help="run an injection campaign and print Tables 1-4"
    )
    campaign.add_argument("--cases", type=int, default=2,
                          help="workloads (25 = the paper's full grid)")
    campaign.add_argument("--times", type=int, default=2,
                          help="injection instants between 0.5s and 5s")
    campaign.add_argument("--bits", type=int, default=16,
                          help="bit positions to flip")
    campaign.add_argument("--duration", type=int, default=6000, help="run ms")
    campaign.add_argument("--seed", type=int, default=2001)
    campaign.add_argument("--monitors", type=int, default=3,
                          help="EDM subset size for the [18] baseline")
    campaign.add_argument("--paper-grid", action="store_true",
                          help="use the paper's ten half-second instants")
    campaign.add_argument("--workers", type=int, default=None, metavar="N",
                          help="worker processes for the grid-sharded "
                          "parallel path (scales past the case count)")
    campaign.add_argument("--chunk-size", type=int, default=None, metavar="M",
                          help="injection targets per parallel work item "
                          "(default: ~4 chunks per worker)")
    campaign.add_argument("--parallel", type=int, default=1, metavar="N",
                          help="deprecated alias for --workers")
    campaign.add_argument("--no-prefix-reuse", action="store_true",
                          help="disable Golden-Run checkpoint reuse "
                          "(re-run every IR from time zero)")
    campaign.add_argument("--twonode", action="store_true",
                          help="analyse the master/slave configuration")
    campaign.add_argument("--save", metavar="FILE",
                          help="save the estimated matrix as JSON")
    campaign.set_defaults(func=_cmd_campaign)

    analyze = commands.add_parser(
        "analyze", help="re-analyse a saved permeability matrix"
    )
    analyze.add_argument("matrix", help="JSON file from 'campaign --save'")
    analyze.add_argument("--twonode", action="store_true",
                         help="the matrix belongs to the master/slave system")
    analyze.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
