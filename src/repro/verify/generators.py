"""Random *executable* system generator for differential testing.

Upgrades the analysis-only layered-DAG strategies of
``tests/strategies.py``: every generated system is a runnable
:class:`~repro.simulation.runtime.SimulationRun` wired into the
simulation runtime — layered DAGs plus (optionally) one marked
feedback loop per module, varied signal widths and schedules, fully
deterministic from a single integer seed.

The behavioural model is deliberately *bit-linear*: every module
computes each output as the XOR of its masked inputs
(``out = XOR_i (in_i & mask[i][out])``).  A single injected bit-flip
therefore propagates through a mask chain iff the flipped bit survives
every AND along the way, which makes the analytical error permeability
of each (input, output) pair **exact** rather than merely estimable:

    P(i, o) = popcount(eff(i, o) & wmask(o) & bits(B)) / B

where ``B`` is the number of bit-flip error models, ``wmask`` the
signal-width mask and ``eff`` the effective propagation mask including
the (at most one) feedback signal of the module:

    eff(i, o) = mask[i][o] | (mask[i][fb] & wmask(fb) & mask[fb][o])

Higher-order feedback round-trips only shrink the surviving bit set
(every extra trip ANDs in ``mask[fb][fb]``), so the first-order term
is already exact.  The differential oracle
(:mod:`repro.verify.oracles`) exploits this to demand *exact*
agreement between measured and analytical permeability, which catches
off-by-one errors that confidence intervals at small sample sizes
cannot.

Constraints upheld by construction (and validated on deserialisation):

* layered DAG between modules — the only cycles are single-module
  self-loops (marked feedback), so an injected system input's stored
  value never diverges and every output divergence is "direct" in the
  sense of :meth:`InjectionOutcome.direct_output_error`;
* at most one feedback signal per module (keeps ``eff`` exact);
* every module input is at least as wide as the bit-flip model count,
  so :class:`~repro.injection.error_models.BitFlip` never rejects.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import cached_property
from random import Random
from typing import Any, Iterator, Mapping

from repro.core.permeability import PermeabilityMatrix
from repro.model.module import ModuleSpec, SoftwareModule
from repro.model.signal import SignalSpec
from repro.model.system import SystemModel
from repro.simulation.runtime import SignalStore, SimulationRun
from repro.simulation.scheduler import SlotSchedule

__all__ = [
    "GeneratedModule",
    "GeneratedSystem",
    "GeneratedSystemSpec",
    "LcgEnvironment",
    "MaskModule",
    "OpaqueMaskModule",
    "SpecError",
    "analytical_matrix",
    "generate_system",
]

#: Widest signal the generator emits (the paper's register width).
MAX_WIDTH = 16


class SpecError(ValueError):
    """A generated-system spec is structurally invalid."""


# ---------------------------------------------------------------------------
# Declarative spec (JSON-able, the unit the shrinker edits)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratedModule:
    """One module of a generated system: masks, schedule, ports."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    #: ``masks[input][output]`` — the AND mask applied to ``input``
    #: when XOR-accumulating ``output``.
    masks: Mapping[str, Mapping[str, int]]
    period_ms: int = 1
    phase: int = 0
    #: When ``True`` the module is built as :class:`OpaqueMaskModule`
    #: (behaviourally identical, but hidden from the batched backend's
    #: vectorizer) — exercises the scalar per-lane fallback path.
    opaque: bool = False

    @property
    def feedback_signal(self) -> str | None:
        """The module's self-loop signal, if any (at most one)."""
        loops = [s for s in self.outputs if s in self.inputs]
        if len(loops) > 1:
            raise SpecError(
                f"module {self.name!r} has {len(loops)} feedback signals; "
                "the generator model allows at most one"
            )
        return loops[0] if loops else None

    def mask(self, input_signal: str, output_signal: str) -> int:
        try:
            return self.masks[input_signal][output_signal]
        except KeyError:
            raise SpecError(
                f"module {self.name!r} has no mask for pair "
                f"({input_signal!r}, {output_signal!r})"
            ) from None


@dataclass(frozen=True)
class GeneratedSystemSpec:
    """Complete declarative description of a generated system.

    Everything needed to rebuild the :class:`SystemModel`, the
    behavioural modules, the schedule and the environment — plain data,
    JSON round-trippable, and the unit of work for the shrinker.
    """

    name: str
    seed: int
    n_slots: int
    env_seed: int
    #: Signal name -> width in bits.
    widths: Mapping[str, int]
    system_inputs: tuple[str, ...]
    system_outputs: tuple[str, ...]
    modules: tuple[GeneratedModule, ...]
    #: Per system input: the externally assumed Pr(err) (paper Eq. 7
    #: weighting); drives the Pr(err)-scaling metamorphic relation.
    error_probabilities: Mapping[str, float] = field(default_factory=dict)

    # -- derived views ------------------------------------------------

    def module(self, name: str) -> GeneratedModule:
        for module in self.modules:
            if module.name == name:
                return module
        raise SpecError(f"unknown module {name!r}")

    def consumers_of(self, signal: str) -> list[str]:
        return [m.name for m in self.modules if signal in m.inputs]

    def producer_of(self, signal: str) -> str | None:
        for module in self.modules:
            if signal in module.outputs:
                return module.name
        return None

    def connections(self) -> Iterator[tuple[str, str]]:
        """Every (module, input_signal) pair."""
        for module in self.modules:
            for signal in module.inputs:
                yield module.name, signal

    def min_input_width(self) -> int:
        """Narrowest module input — the ceiling for bit-flip models."""
        widths = [self.widths[s] for m in self.modules for s in m.inputs]
        return min(widths) if widths else MAX_WIDTH

    def validate(self) -> None:
        """Raise :class:`SpecError` on structural problems."""
        if not self.modules:
            raise SpecError("spec has no modules")
        for module in self.modules:
            module.feedback_signal  # noqa: B018 — raises on >1 loop
            for signal in (*module.inputs, *module.outputs):
                if signal not in self.widths:
                    raise SpecError(
                        f"signal {signal!r} of module {module.name!r} has "
                        "no declared width"
                    )
            for i in module.inputs:
                for o in module.outputs:
                    module.mask(i, o)
            if module.period_ms < 1 or self.n_slots % module.period_ms:
                raise SpecError(
                    f"module {module.name!r} period {module.period_ms} does "
                    f"not divide n_slots={self.n_slots}"
                )
            if not 0 <= module.phase < module.period_ms:
                raise SpecError(
                    f"module {module.name!r} phase {module.phase} outside "
                    f"period {module.period_ms}"
                )

    # -- serialisation ------------------------------------------------

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "n_slots": self.n_slots,
            "env_seed": self.env_seed,
            "widths": dict(self.widths),
            "system_inputs": list(self.system_inputs),
            "system_outputs": list(self.system_outputs),
            "error_probabilities": dict(self.error_probabilities),
            "modules": [
                {
                    "name": m.name,
                    "inputs": list(m.inputs),
                    "outputs": list(m.outputs),
                    "masks": {i: dict(per) for i, per in m.masks.items()},
                    "period_ms": m.period_ms,
                    "phase": m.phase,
                    # Only serialized when set, so the content hashes of
                    # pre-existing (fully vectorizable) corpus entries
                    # are unchanged.
                    **({"opaque": True} if m.opaque else {}),
                }
                for m in self.modules
            ],
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "GeneratedSystemSpec":
        try:
            spec = cls(
                name=str(data["name"]),
                seed=int(data["seed"]),
                n_slots=int(data["n_slots"]),
                env_seed=int(data["env_seed"]),
                widths={str(k): int(v) for k, v in data["widths"].items()},
                system_inputs=tuple(data["system_inputs"]),
                system_outputs=tuple(data["system_outputs"]),
                error_probabilities={
                    str(k): float(v)
                    for k, v in data.get("error_probabilities", {}).items()
                },
                modules=tuple(
                    GeneratedModule(
                        name=str(m["name"]),
                        inputs=tuple(m["inputs"]),
                        outputs=tuple(m["outputs"]),
                        masks={
                            str(i): {str(o): int(v) for o, v in per.items()}
                            for i, per in m["masks"].items()
                        },
                        period_ms=int(m.get("period_ms", 1)),
                        phase=int(m.get("phase", 0)),
                        opaque=bool(m.get("opaque", False)),
                    )
                    for m in data["modules"]
                ),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise SpecError(f"malformed generated-system spec: {exc!r}") from exc
        spec.validate()
        return spec


# ---------------------------------------------------------------------------
# Behavioural layer
# ---------------------------------------------------------------------------


class MaskModule(SoftwareModule):
    """XOR-of-masked-inputs behaviour: ``out = XOR_i (in_i & mask)``.

    Stateless by design — feedback, where present, flows through the
    signal store (the module re-reads its own output), so checkpoints
    need not capture anything here.
    """

    def __init__(self, module: GeneratedModule, description: str = "") -> None:
        super().__init__(
            ModuleSpec(
                name=module.name,
                inputs=module.inputs,
                outputs=module.outputs,
                description=description or "generated XOR-mask module",
                period_ms=module.period_ms,
            )
        )
        self._plan = tuple(
            (out, tuple((inp, module.masks[inp][out]) for inp in module.inputs))
            for out in module.outputs
        )

    def activate(self, inputs: Mapping[str, int], now_ms: int) -> Mapping[str, int]:
        produced = {}
        for out, terms in self._plan:
            acc = 0
            for inp, mask in terms:
                acc ^= inputs[inp] & mask
            produced[out] = acc
        return produced

    def vector_plan(self) -> tuple:
        """The mask plan for the batched backend's column kernel.

        Exposing this asserts the module is stateless and its
        ``activate`` is exactly ``out = XOR_i (in_i & mask)`` per the
        returned ``(out, ((in, mask), ...))`` terms.
        """
        return self._plan

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class OpaqueMaskModule(MaskModule):
    """A :class:`MaskModule` hidden from the batched vectorizer.

    Behaviourally identical (same masks, same activations, stateless),
    but ``vector_plan`` is absent, so the batched backend must step it
    through the scalar per-lane fallback.  Used by corpus reproducers
    and tests to pin the mixed vectorized/scalar path.
    """

    #: Shadows the parent method with a non-callable: the batched
    #: backend treats the module as non-vectorizable.
    vector_plan = None


class LcgEnvironment:
    """Deterministic stimulus for generated systems.

    Each system input is driven by its own linear congruential
    generator (seeded from ``env_seed`` and the signal name), giving
    uncorrelated but fully reproducible excitation on every frame.
    Telemetry reports a *last-frame* checksum of the system outputs —
    deliberately not cumulative, so an injection run whose error dies
    out reconverges with its Golden Run and the fast-forward strategy
    has something to fast-forward.
    """

    #: The stimulus is a function of the LCG state alone — nothing read
    #: from the signal store influences any write — so this environment
    #: cannot carry an injected error between signals.  Incremental
    #: campaigns (repro.store) may therefore use narrow signal-graph
    #: dependency cones for generated systems.
    SIGNAL_COUPLING = False

    _A = 1103515245
    _C = 12345
    _MASK = 0x7FFFFFFF

    def __init__(
        self,
        env_seed: int,
        inputs: tuple[str, ...],
        outputs: tuple[str, ...],
    ) -> None:
        self._env_seed = env_seed
        self._inputs = tuple(inputs)
        self._outputs = tuple(outputs)
        self._states: dict[str, int] = {}
        self._out_checksum = 0
        self.reset()

    def _initial_state(self, signal: str) -> int:
        raw = f"{self._env_seed}:{signal}".encode()
        return (zlib.crc32(raw) | 1) & self._MASK

    def reset(self) -> None:
        self._states = {s: self._initial_state(s) for s in self._inputs}
        self._out_checksum = 0

    def before_software(self, now_ms: int, store: SignalStore) -> None:
        for signal in self._inputs:
            state = (self._A * self._states[signal] + self._C) & self._MASK
            self._states[signal] = state
            store.write(signal, state >> 7)

    def after_software(self, now_ms: int, store: SignalStore) -> None:
        checksum = 0
        for signal in self._outputs:
            checksum ^= store.read(signal)
        self._out_checksum = checksum

    def telemetry(self) -> dict[str, float]:
        return {"env_out_checksum": float(self._out_checksum)}

    def state_dict(self) -> dict:
        return {"states": dict(self._states), "checksum": self._out_checksum}

    def load_state_dict(self, state: dict) -> None:
        self._states = dict(state["states"])
        self._out_checksum = state["checksum"]

    # -- batched-backend contract (lane-invariant environment) --------

    #: ``before_software`` never reads the store and ``after_software``
    #: derives its state from output values alone, so one shared
    #: instance can drive every lane of a batch.
    lane_invariant = True

    def lane_state_dict(self, values: Mapping[str, int]) -> dict:
        """:meth:`state_dict` as it would read on a lane with ``values``."""
        checksum = 0
        for signal in self._outputs:
            checksum ^= values[signal]
        return {"states": dict(self._states), "checksum": checksum}

    def lane_telemetry(self, values: Mapping[str, int]) -> dict[str, float]:
        """:meth:`telemetry` as it would read on a lane with ``values``."""
        checksum = 0
        for signal in self._outputs:
            checksum ^= values[signal]
        return {"env_out_checksum": float(checksum)}


# ---------------------------------------------------------------------------
# Spec -> executable system
# ---------------------------------------------------------------------------


class GeneratedSystem:
    """A spec plus everything executable derived from it."""

    def __init__(self, spec: GeneratedSystemSpec) -> None:
        spec.validate()
        self.spec = spec

    @cached_property
    def system(self) -> SystemModel:
        """The static topology (validated on first access)."""
        spec = self.spec
        signals = [
            SignalSpec(
                name,
                width=width,
                error_probability=spec.error_probabilities.get(name),
            )
            for name, width in spec.widths.items()
        ]
        return SystemModel(
            name=spec.name,
            modules=[
                ModuleSpec(
                    name=m.name,
                    inputs=m.inputs,
                    outputs=m.outputs,
                    period_ms=m.period_ms,
                )
                for m in spec.modules
            ],
            system_inputs=list(spec.system_inputs),
            system_outputs=list(spec.system_outputs),
            signals=signals,
            description=f"generated system (seed {spec.seed})",
        )

    @property
    def has_feedback(self) -> bool:
        return any(m.feedback_signal for m in self.spec.modules)

    def build_run(self) -> SimulationRun:
        """A fresh executable instance of the generated system."""
        spec = self.spec
        schedule = SlotSchedule(n_slots=spec.n_slots)
        for module in spec.modules:
            schedule.assign_period(module.name, module.period_ms, module.phase)
        return SimulationRun(
            system=self.system,
            modules=[
                (OpaqueMaskModule if m.opaque else MaskModule)(m)
                for m in spec.modules
            ],
            schedule=schedule,
            environment=LcgEnvironment(
                spec.env_seed, spec.system_inputs, spec.system_outputs
            ),
        )

    def run_factory(self, case: object) -> SimulationRun:
        """Campaign-compatible run factory (the case is ignored)."""
        return self.build_run()

    def analytical_matrix(self, n_bits: int) -> PermeabilityMatrix:
        """Exact permeabilities under ``n_bits`` bit-flip models."""
        return analytical_matrix(self.spec, n_bits, system=self.system)


def analytical_matrix(
    spec: GeneratedSystemSpec,
    n_bits: int,
    system: SystemModel | None = None,
) -> PermeabilityMatrix:
    """The *exact* permeability matrix of a generated system.

    Because module behaviour is XOR-of-masked-inputs, a single flipped
    bit ``b`` in input ``i`` reaches output ``o`` iff ``b`` survives the
    direct mask or the (single-step) feedback detour — see the module
    docstring for why higher-order feedback terms are subsets.
    """
    if n_bits < 1:
        raise SpecError("n_bits must be >= 1")
    if n_bits > spec.min_input_width():
        raise SpecError(
            f"n_bits={n_bits} exceeds the narrowest module input "
            f"({spec.min_input_width()} bits)"
        )
    if system is None:
        system = GeneratedSystem(spec).system
    bits = (1 << n_bits) - 1
    matrix = PermeabilityMatrix(system)
    for module in spec.modules:
        fb = module.feedback_signal
        for i in module.inputs:
            for o in module.outputs:
                eff = module.mask(i, o)
                if fb is not None:
                    fb_mask = (1 << spec.widths[fb]) - 1
                    eff |= module.mask(i, fb) & fb_mask & module.mask(fb, o)
                out_mask = (1 << spec.widths[o]) - 1
                survivors = eff & out_mask & bits
                matrix.set(module.name, i, o, bin(survivors).count("1") / n_bits)
    return matrix


# ---------------------------------------------------------------------------
# Random generation
# ---------------------------------------------------------------------------


def generate_system(seed: int) -> GeneratedSystem:
    """A random executable system, deterministic from ``seed``.

    2–6 modules in a layered DAG; roughly one in three modules carries
    a marked feedback loop; widths vary per signal; periods divide the
    slot count.  The result is lint-clean at error severity by
    construction (every module reachable from a system input, every
    produced signal consumed or exported).
    """
    rng = Random(seed)
    n_slots = rng.choice((1, 2, 4))
    # Floor for signal widths so any n_bits <= 8 stays injectable.
    min_width = 8
    n_modules = rng.randint(2, 6)

    widths: dict[str, int] = {}
    system_inputs: list[str] = []
    error_probabilities: dict[str, float] = {}
    modules: list[GeneratedModule] = []
    available: list[str] = []
    consumed: set[str] = set()
    ext_counter = 0

    def declare(signal: str) -> None:
        widths[signal] = rng.randint(min_width, MAX_WIDTH)

    for index in range(n_modules):
        inputs: list[str] = []
        for _ in range(rng.randint(1, 3)):
            if available and rng.random() < 0.6:
                signal = rng.choice(available)
                if signal in inputs:
                    continue
            else:
                signal = f"ext{ext_counter}"
                ext_counter += 1
                declare(signal)
                system_inputs.append(signal)
                error_probabilities[signal] = round(rng.uniform(0.05, 0.5), 6)
            inputs.append(signal)
        outputs = [f"s{index}_{k}" for k in range(rng.randint(1, 2))]
        for signal in outputs:
            declare(signal)
        feedback = None
        if rng.random() < 0.34:
            feedback = f"s{index}_fb"
            declare(feedback)
            outputs.append(feedback)
            inputs.append(feedback)
        masks: dict[str, dict[str, int]] = {}
        for i in inputs:
            masks[i] = {}
            for o in outputs:
                mask = rng.getrandbits(widths[i])
                # Bias towards interesting propagation in the flip band.
                if rng.random() < 0.75:
                    mask |= 1 << rng.randrange(min_width)
                masks[i][o] = mask
        period = rng.choice([p for p in (1, 2, 4) if n_slots % p == 0])
        modules.append(
            GeneratedModule(
                name=f"M{index}",
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                masks=masks,
                period_ms=period,
                phase=rng.randrange(period),
            )
        )
        consumed.update(inputs)
        available.extend(o for o in outputs if o != feedback)

    produced = [o for m in modules for o in m.outputs]
    unconsumed = [s for s in produced if s not in consumed]
    if not unconsumed:
        unconsumed = [produced[-1]]
    spec = GeneratedSystemSpec(
        name=f"gen-{seed}",
        seed=seed,
        n_slots=n_slots,
        env_seed=rng.getrandbits(32),
        widths=widths,
        system_inputs=tuple(system_inputs),
        system_outputs=tuple(unconsumed),
        modules=tuple(modules),
        error_probabilities=error_probabilities,
    )
    return GeneratedSystem(spec)
