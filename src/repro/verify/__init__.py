"""repro.verify — differential verification harness.

Fuzzes randomly generated *executable* systems through the whole
pipeline and cross-checks the analytical half of the paper
(permeability matrices, exposures, propagation paths) against the
experimental half (injection campaigns under all three execution
strategies).  Failures are shrunk to minimal witnesses and archived
as JSON reproducers the test suite replays forever.

* :mod:`repro.verify.generators` — seed-deterministic random runnable
  systems with *exact* analytical permeabilities (XOR-mask modules);
* :mod:`repro.verify.oracles` — the differential oracle and the
  metamorphic relations;
* :mod:`repro.verify.shrink` — greedy minimisation of failing triples;
* :mod:`repro.verify.corpus` — reproducer serialisation and replay.

CLI entry point: ``repro verify --seeds N [--budget SECS] [--corpus DIR]``.
"""

from repro.verify.corpus import (
    Reproducer,
    iter_corpus,
    load_reproducer,
    replay,
    write_reproducer,
)
from repro.verify.generators import (
    GeneratedModule,
    GeneratedSystem,
    GeneratedSystemSpec,
    LcgEnvironment,
    MaskModule,
    SpecError,
    analytical_matrix,
    generate_system,
)
from repro.verify.oracles import (
    OracleFailure,
    OracleReport,
    VerifyCampaign,
    check_adaptive_soundness,
    check_incremental_parity,
    default_campaign,
    differential_oracle,
    verify_generated,
)
from repro.verify.shrink import oracle_failure, shrink_failure

__all__ = [
    "GeneratedModule",
    "GeneratedSystem",
    "GeneratedSystemSpec",
    "LcgEnvironment",
    "MaskModule",
    "OracleFailure",
    "OracleReport",
    "Reproducer",
    "SpecError",
    "VerifyCampaign",
    "analytical_matrix",
    "check_adaptive_soundness",
    "check_incremental_parity",
    "default_campaign",
    "differential_oracle",
    "generate_system",
    "iter_corpus",
    "load_reproducer",
    "oracle_failure",
    "replay",
    "shrink_failure",
    "verify_generated",
    "write_reproducer",
]
