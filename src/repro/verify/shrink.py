"""Greedy shrinker for failing (system, campaign) oracle triples.

When ``repro verify`` finds a generated system on which the
differential oracle fails, the raw witness is usually bigger than the
bug: six modules, a dozen connections, two injection instants, eight
bit positions.  :func:`shrink_failure` minimises it with a greedy
fixpoint of four passes — delete a module, delete a connection, drop
an injection instant, narrow the bit-flip set — accepting each edit
only while the oracle *still fails*.  Invalid intermediate specs
(e.g. a module whose last input would disappear) are skipped, not
counted as failures.

The output triple is what gets archived in ``tests/corpus/`` (see
:mod:`repro.verify.corpus`) and replayed forever by the regression
suite.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.verify.generators import GeneratedModule, GeneratedSystem, GeneratedSystemSpec
from repro.verify.oracles import OracleFailure, VerifyCampaign, verify_generated

__all__ = ["oracle_failure", "shrink_failure"]

#: ``failure_of(spec, campaign)`` -> failure message, or ``None`` if the
#: oracle passes (or the candidate is not even constructible).
FailurePredicate = Callable[
    [GeneratedSystemSpec, VerifyCampaign], "str | None"
]


def oracle_failure(
    spec: GeneratedSystemSpec, campaign: VerifyCampaign
) -> str | None:
    """The default failure predicate: run the full generated-system oracle.

    Returns ``None`` when the oracle passes *or* the candidate spec is
    structurally invalid (shrink steps must not mistake a broken
    candidate for a reproduced failure).  Unexpected exceptions during
    the oracle run *do* count as failures — a crash is a bug too.
    """
    try:
        generated = GeneratedSystem(spec)
        generated.system  # noqa: B018 — force topology validation
    except Exception:
        return None
    try:
        verify_generated(generated, campaign)
    except OracleFailure as failure:
        return str(failure)
    except Exception as exc:
        return f"oracle crashed: {type(exc).__name__}: {exc}"
    return None


# ---------------------------------------------------------------------------
# Structural edits
# ---------------------------------------------------------------------------


def _rebuild(
    spec: GeneratedSystemSpec, modules: tuple[GeneratedModule, ...]
) -> GeneratedSystemSpec | None:
    """Re-derive boundary marks and signal tables after a module edit.

    Signals that lost their producer become system inputs (the
    environment drives them); produced signals that lost their last
    consumer become system outputs.  Returns ``None`` when the edit
    cannot yield a meaningful system (no modules or no outputs left).
    """
    if not modules:
        return None
    produced = {s for m in modules for s in m.outputs}
    consumed: list[str] = []
    for module in modules:
        for signal in module.inputs:
            if signal not in consumed:
                consumed.append(signal)
    referenced = produced | set(consumed)
    system_inputs = [s for s in spec.system_inputs if s in referenced]
    system_inputs += [
        s for s in consumed if s not in produced and s not in system_inputs
    ]
    system_outputs = [s for s in spec.system_outputs if s in produced]
    system_outputs += [
        s for s in produced if s not in consumed and s not in system_outputs
    ]
    if not system_outputs:
        return None
    return dataclasses.replace(
        spec,
        modules=modules,
        widths={s: w for s, w in spec.widths.items() if s in referenced},
        system_inputs=tuple(system_inputs),
        system_outputs=tuple(system_outputs),
        error_probabilities={
            s: p
            for s, p in spec.error_probabilities.items()
            if s in system_inputs
        },
    )


def remove_module(
    spec: GeneratedSystemSpec, name: str
) -> GeneratedSystemSpec | None:
    """The spec without module ``name``, or ``None`` if not removable."""
    modules = tuple(m for m in spec.modules if m.name != name)
    if len(modules) == len(spec.modules):
        return None
    return _rebuild(spec, modules)


def remove_connection(
    spec: GeneratedSystemSpec, module_name: str, input_signal: str
) -> GeneratedSystemSpec | None:
    """The spec without one (module, input) connection.

    Never removes a module's last input — that edit is covered by
    :func:`remove_module`.
    """
    modules: list[GeneratedModule] = []
    edited = False
    for module in spec.modules:
        if module.name == module_name and input_signal in module.inputs:
            if len(module.inputs) == 1:
                return None
            module = dataclasses.replace(
                module,
                inputs=tuple(s for s in module.inputs if s != input_signal),
                masks={
                    i: per for i, per in module.masks.items() if i != input_signal
                },
            )
            edited = True
        modules.append(module)
    if not edited:
        return None
    return _rebuild(spec, tuple(modules))


# ---------------------------------------------------------------------------
# The greedy fixpoint
# ---------------------------------------------------------------------------


def shrink_failure(
    spec: GeneratedSystemSpec,
    campaign: VerifyCampaign,
    failure_of: FailurePredicate = oracle_failure,
) -> tuple[GeneratedSystemSpec, VerifyCampaign, str]:
    """Minimise a failing triple while ``failure_of`` keeps failing.

    Returns the shrunk ``(spec, campaign, failure_message)``.  Raises
    :class:`ValueError` when the initial triple does not fail — a
    shrinker run on a passing input would "minimise" it to nonsense.
    """
    failure = failure_of(spec, campaign)
    if failure is None:
        raise ValueError("cannot shrink: the initial (spec, campaign) passes")

    changed = True
    while changed:
        changed = False
        for name in [m.name for m in spec.modules]:
            candidate = remove_module(spec, name)
            if candidate is None:
                continue
            message = failure_of(candidate, campaign)
            if message is not None:
                spec, failure, changed = candidate, message, True
        for module_name, input_signal in list(spec.connections()):
            candidate = remove_connection(spec, module_name, input_signal)
            if candidate is None:
                continue
            message = failure_of(candidate, campaign)
            if message is not None:
                spec, failure, changed = candidate, message, True
        if len(campaign.injection_times_ms) > 1:
            for time_ms in campaign.injection_times_ms:
                if len(campaign.injection_times_ms) == 1:
                    break
                candidate_campaign = dataclasses.replace(
                    campaign,
                    injection_times_ms=tuple(
                        t for t in campaign.injection_times_ms if t != time_ms
                    ),
                )
                message = failure_of(spec, candidate_campaign)
                if message is not None:
                    campaign, failure, changed = (
                        candidate_campaign,
                        message,
                        True,
                    )
        while campaign.n_bits > 1:
            candidate_campaign = dataclasses.replace(
                campaign, n_bits=campaign.n_bits - 1
            )
            message = failure_of(spec, candidate_campaign)
            if message is None:
                break
            campaign, failure, changed = candidate_campaign, message, True
    return spec, campaign, failure
