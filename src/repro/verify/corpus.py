"""Reproducer corpus: JSON witnesses the regression suite replays forever.

Every failure ``repro verify`` finds is shrunk
(:mod:`repro.verify.shrink`) and archived as a small JSON file — a
:class:`Reproducer` — in ``tests/corpus/``.  A parametrised test
(``tests/test_verify_corpus.py``) replays every file through the
differential oracle on every run, so once-found bugs stay found.

Two reproducer kinds:

``generated``
    A full :class:`~repro.verify.generators.GeneratedSystemSpec` plus
    its campaign — self-contained, rebuilt from the JSON alone, checked
    against its exact analytical matrix.
``builtin``
    A named repo system (``arrestment``, ``twonode``) with a campaign
    slice (usually a target subset) — exercises the oracle's
    cross-strategy and obs-vs-estimator checks on the paper's real
    target system, without analytical exactness (the plant is not
    bit-linear).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.verify.generators import GeneratedSystem, GeneratedSystemSpec, SpecError
from repro.verify.oracles import (
    OracleReport,
    VerifyCampaign,
    differential_oracle,
    verify_generated,
)

__all__ = [
    "Reproducer",
    "iter_corpus",
    "load_reproducer",
    "replay",
    "write_reproducer",
]

#: Schema version of the reproducer JSON files.
REPRODUCER_VERSION = 1

#: Systems a ``builtin`` reproducer may name.
BUILTIN_SYSTEMS = ("arrestment", "twonode")


@dataclass(frozen=True)
class Reproducer:
    """One archived oracle failure (or hand-written oracle workload)."""

    kind: str  # "generated" | "builtin"
    campaign: VerifyCampaign
    spec: GeneratedSystemSpec | None = None
    builtin: str | None = None
    note: str = ""
    failure: str = ""

    def __post_init__(self) -> None:
        if self.kind == "generated":
            if self.spec is None:
                raise SpecError("generated reproducer requires a system spec")
        elif self.kind == "builtin":
            if self.builtin not in BUILTIN_SYSTEMS:
                raise SpecError(
                    f"unknown builtin system {self.builtin!r}; "
                    f"expected one of {BUILTIN_SYSTEMS}"
                )
        else:
            raise SpecError(f"unknown reproducer kind {self.kind!r}")

    def content_id(self) -> str:
        """Stable short hash of the workload (failure text excluded)."""
        payload = self.to_jsonable()
        payload.pop("failure", None)
        canonical = json.dumps(payload, sort_keys=True).encode()
        return hashlib.blake2b(canonical, digest_size=5).hexdigest()

    def to_jsonable(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "version": REPRODUCER_VERSION,
            "kind": self.kind,
            "note": self.note,
            "campaign": self.campaign.to_jsonable(),
        }
        if self.kind == "generated":
            assert self.spec is not None
            data["system"] = self.spec.to_jsonable()
        else:
            data["system"] = self.builtin
        if self.failure:
            data["failure"] = self.failure
        return data

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "Reproducer":
        version = data.get("version")
        if version != REPRODUCER_VERSION:
            raise SpecError(
                f"unsupported reproducer version {version!r} "
                f"(expected {REPRODUCER_VERSION})"
            )
        kind = str(data["kind"])
        campaign = VerifyCampaign.from_jsonable(data["campaign"])
        if kind == "generated":
            return cls(
                kind=kind,
                campaign=campaign,
                spec=GeneratedSystemSpec.from_jsonable(data["system"]),
                note=str(data.get("note", "")),
                failure=str(data.get("failure", "")),
            )
        return cls(
            kind=kind,
            campaign=campaign,
            builtin=str(data["system"]),
            note=str(data.get("note", "")),
            failure=str(data.get("failure", "")),
        )


# ---------------------------------------------------------------------------
# Disk I/O
# ---------------------------------------------------------------------------


def write_reproducer(
    directory: Path, reproducer: Reproducer, stem: str = "shrunk"
) -> Path:
    """Write a reproducer JSON; the filename embeds a content hash."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{stem}-{reproducer.content_id()}.json"
    path.write_text(
        json.dumps(reproducer.to_jsonable(), indent=2) + "\n", encoding="utf-8"
    )
    return path


def load_reproducer(path: Path) -> Reproducer:
    """Parse one reproducer JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SpecError(f"cannot read reproducer {path}: {exc}") from exc
    return Reproducer.from_jsonable(data)


def iter_corpus(directory: Path) -> list[Path]:
    """All reproducer files of a corpus directory, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def _builtin_workload(name: str):
    if name == "arrestment":
        from repro.arrestment.system import build_arrestment_model, build_arrestment_run
        from repro.arrestment.testcases import ArrestmentTestCase

        return (
            build_arrestment_model(),
            build_arrestment_run,
            {"case": ArrestmentTestCase(mass_kg=14000.0, velocity_ms=60.0)},
        )
    if name == "twonode":
        from repro.arrestment.testcases import ArrestmentTestCase
        from repro.arrestment.twonode import build_twonode_model, build_twonode_run

        return (
            build_twonode_model(),
            build_twonode_run,
            {"case": ArrestmentTestCase(mass_kg=14000.0, velocity_ms=60.0)},
        )
    raise SpecError(f"unknown builtin system {name!r}")


def replay(
    reproducer: Reproducer, backends: tuple[str, ...] | None = None
) -> OracleReport:
    """Run a reproducer through the oracle; raises OracleFailure if it fails.

    ``backends`` restricts the oracle's strategy matrix to the named
    simulation backends (``None`` exercises all of them).
    """
    if reproducer.kind == "generated":
        assert reproducer.spec is not None
        return verify_generated(
            GeneratedSystem(reproducer.spec), reproducer.campaign,
            backends=backends,
        )
    assert reproducer.builtin is not None
    system, run_factory, cases = _builtin_workload(reproducer.builtin)
    report, _ = differential_oracle(
        system, run_factory, cases, reproducer.campaign, backends=backends
    )
    return report
