"""Differential oracle: analysis vs. injection vs. execution strategies.

Given an executable system, :func:`differential_oracle` runs one small
injection campaign under all three execution strategies (naive,
checkpointed, fast-forward) and asserts the cross-cutting invariants
the rest of the repo relies on:

``strategy-identity``
    Byte-identical traces (per-IR and Golden Run) and identical
    outcome fingerprints across all three strategies.
``obs-vs-estimator``
    :meth:`PropagationObservations.to_matrix` agrees with
    :func:`estimate_matrix` — values *and* raw trial counts.
``exact-agreement`` (generated systems)
    Measured permeability equals the analytical matrix exactly.  The
    XOR-mask behavioural model of :mod:`repro.verify.generators` makes
    the analytical value exact, so any deviation — including the
    off-by-one a wide confidence interval would forgive at n≈16 —
    is a bug.
``ci-containment`` / ``ci-sanity`` (generated systems)
    The Wilson interval of every measured pair contains the analytical
    value, and the interval itself is well-formed
    (``0 <= lo <= p̂ <= hi <= 1``).
``static-containment`` (generated systems)
    The static flow bounds of :mod:`repro.flow` contain the measured
    permeability of every arc, and are exact-tight (``lo == hi ==``
    the analytical value) on the pure-XOR generated modules.
``incremental-parity`` (generated systems)
    Re-running the campaign against a warm :mod:`repro.store` result
    store executes zero injection runs yet recomposes outcomes and the
    estimate matrix byte-identical to the cold pass.
``adaptive-soundness`` (generated systems)
    The confidence-driven campaign (``CampaignConfig(adaptive=True)``,
    see :mod:`repro.adaptive`) samples only outcomes that are
    byte-identical to the exhaustive campaign's at the same grid
    coordinates, retires every target, records stopping half-widths
    that agree with its achieved counts, and every retired Wilson
    interval contains the analytical permeability of each output arc.
``metamorphic-dead-sink`` (generated systems)
    Adding a module that consumes an existing signal but feeds nothing
    never changes the exposures of pre-existing modules and signals.
``metamorphic-prerr-scaling`` (generated systems)
    Scaling a system input's ``Pr(err)`` by ``c`` rescales every
    adjusted propagation-path weight from that input by exactly ``c``.

A violated invariant raises :class:`OracleFailure` naming the check.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.backtrack import build_all_backtrack_trees
from repro.core.exposure import all_module_exposures, signal_exposures_for_matrix
from repro.core.graph import PermeabilityGraph
from repro.core.paths import paths_of_backtrack_tree
from repro.core.permeability import PermeabilityEstimate, PermeabilityMatrix
from repro.core.stats import wilson_interval
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.error_models import bit_flip_models
from repro.injection.estimator import estimate_matrix, pair_trial_counts
from repro.model.module import ModuleSpec
from repro.model.system import SystemModel
from repro.obs.propagation import PropagationObservations
from repro.simulation.runtime import RunResult, SimulationRun
from repro.verify.generators import GeneratedSystem

__all__ = [
    "OracleFailure",
    "OracleReport",
    "VerifyCampaign",
    "check_adaptive_soundness",
    "check_incremental_parity",
    "check_static_containment",
    "default_campaign",
    "differential_oracle",
    "select_strategies",
    "verify_generated",
]

#: The execution strategies under test:
#: (label, reuse_golden_prefix, fast_forward, backend).  The first
#: entry is the baseline every other strategy must match byte-for-byte;
#: the ``batched`` strategy runs the vectorized lane kernel on top of
#: the fast-forward configuration, so one oracle pass cross-checks the
#: campaign engine *and* the simulation backend.
STRATEGIES: tuple[tuple[str, bool, bool, str], ...] = (
    ("naive", False, False, "reference"),
    ("checkpointed", True, False, "reference"),
    ("fast_forward", True, True, "reference"),
    ("batched", True, True, "batched"),
)

#: Slack between measured floats that should be *identical* arithmetic.
EXACT_ATOL = 1e-9


class OracleFailure(AssertionError):
    """A differential-oracle invariant was violated."""

    def __init__(self, check: str, message: str) -> None:
        super().__init__(f"[{check}] {message}")
        self.check = check
        self.message = message


@dataclass(frozen=True)
class OracleReport:
    """Summary of one successful oracle pass."""

    system: str
    n_runs: int
    has_feedback: bool
    checks: tuple[str, ...]
    n_strategies: int = len(STRATEGIES)

    def render(self) -> str:
        feedback = "with feedback" if self.has_feedback else "acyclic"
        return (
            f"{self.system}: {self.n_runs} runs x "
            f"{self.n_strategies} strategies ({feedback}); "
            f"checks: {', '.join(self.checks)}"
        )


@dataclass(frozen=True)
class VerifyCampaign:
    """JSON-able campaign shape the oracle runs per system."""

    duration_ms: int
    injection_times_ms: tuple[int, ...]
    n_bits: int
    seed: int
    #: ``None`` injects every input of every module.
    targets: tuple[tuple[str, str], ...] | None = None

    def to_config(
        self, reuse: bool, fast_forward: bool, backend: str = "reference"
    ) -> CampaignConfig:
        return CampaignConfig(
            duration_ms=self.duration_ms,
            injection_times_ms=self.injection_times_ms,
            error_models=tuple(bit_flip_models(self.n_bits)),
            targets=self.targets,
            seed=self.seed,
            reuse_golden_prefix=reuse,
            fast_forward=fast_forward,
            backend=backend,
        )

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "duration_ms": self.duration_ms,
            "injection_times_ms": list(self.injection_times_ms),
            "n_bits": self.n_bits,
            "seed": self.seed,
            "targets": (
                None if self.targets is None else [list(t) for t in self.targets]
            ),
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "VerifyCampaign":
        targets = data.get("targets")
        return cls(
            duration_ms=int(data["duration_ms"]),
            injection_times_ms=tuple(int(t) for t in data["injection_times_ms"]),
            n_bits=int(data["n_bits"]),
            seed=int(data["seed"]),
            targets=(
                None
                if targets is None
                else tuple((str(m), str(s)) for m, s in targets)
            ),
        )


def default_campaign(generated: GeneratedSystem) -> VerifyCampaign:
    """The standard small campaign for a generated system.

    Two injection instants; the duration leaves every module at least
    two further activations after the latest instant, so via-feedback
    propagation is always observable within the run.
    """
    spec = generated.spec
    times = (3, 7 + spec.n_slots)
    return VerifyCampaign(
        duration_ms=max(times) + 3 * spec.n_slots + 2,
        injection_times_ms=times,
        n_bits=min(8, spec.min_input_width()),
        seed=spec.seed * 2 + 1,
    )


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def run_digest(result: RunResult) -> str:
    """Digest of every recorded trace of a run (order-sensitive)."""
    h = hashlib.blake2b(digest_size=16)
    for trace in result.traces:
        h.update(trace.signal.encode())
        h.update(b"\x00")
        h.update(memoryview(trace.samples).cast("B"))
    return h.hexdigest()


def _outcome_fingerprint(outcome) -> tuple:
    divergences = tuple(sorted(outcome.comparison.first_divergence_ms.items()))
    return (
        outcome.case_id,
        outcome.module,
        outcome.input_signal,
        outcome.scheduled_time_ms,
        outcome.error_model,
        outcome.fired_at_ms,
        divergences,
    )


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


def select_strategies(
    backends: tuple[str, ...] | None = None,
) -> tuple[tuple[str, bool, bool, str], ...]:
    """The :data:`STRATEGIES` subset exercising ``backends``.

    ``None`` keeps every strategy.  The baseline (first) strategy is
    always retained so there is something to compare against.
    """
    if backends is None:
        return STRATEGIES
    wanted = set(backends)
    selected = tuple(
        strategy
        for index, strategy in enumerate(STRATEGIES)
        if index == 0 or strategy[3] in wanted
    )
    return selected


def differential_oracle(
    system: SystemModel,
    run_factory: Callable[..., SimulationRun],
    cases: Mapping[str, object],
    campaign: VerifyCampaign,
    analytical: PermeabilityMatrix | None = None,
    backends: tuple[str, ...] | None = None,
):
    """Run the campaign under every strategy and cross-check the results.

    Returns ``(OracleReport, CampaignResult)`` — the result is the
    naive strategy's, for callers wanting further analysis.  Raises
    :class:`OracleFailure` on the first violated invariant.
    ``backends`` restricts the strategy matrix to the named simulation
    backends (the baseline strategy always stays in).
    """
    checks: list[str] = []
    results = {}
    fingerprints = {}
    strategies = select_strategies(backends)
    for label, reuse, fast_forward, backend in strategies:
        config = campaign.to_config(
            reuse=reuse, fast_forward=fast_forward, backend=backend
        )
        run = InjectionCampaign(system, run_factory, cases, config)
        ir_prints: list[tuple] = []

        def inspector(outcome, result, golden, sink=ir_prints):
            sink.append((_outcome_fingerprint(outcome), run_digest(result)))

        result = run.execute(inspector=inspector)
        golden_prints = tuple(
            sorted(
                (case_id, run_digest(golden.result))
                for case_id, golden in run.golden_runs().items()
            )
        )
        results[label] = result
        fingerprints[label] = (tuple(ir_prints), golden_prints)

    reference_label = strategies[0][0]
    reference = fingerprints[reference_label]
    for label, _, _, _ in strategies[1:]:
        if fingerprints[label] != reference:
            raise OracleFailure(
                "strategy-identity",
                f"{label} diverged from {reference_label} on {system.name!r}: "
                f"{_first_difference(reference, fingerprints[label])}",
            )
    checks.append("strategy-identity")

    result = results[reference_label]
    require_complete = campaign.targets is None
    measured = estimate_matrix(result, require_complete=require_complete)
    observed = PropagationObservations.from_campaign_result(result).to_matrix()
    diff = measured.diff(observed)
    if not diff.agrees(atol=0.0):
        raise OracleFailure(
            "obs-vs-estimator",
            f"to_matrix() disagrees with estimate_matrix on {system.name!r}: "
            f"max |delta| = {diff.max_abs_delta}",
        )
    if pair_trial_counts(measured) != pair_trial_counts(observed):
        raise OracleFailure(
            "obs-vs-estimator",
            f"per-pair trial counts differ on {system.name!r}",
        )
    checks.append("obs-vs-estimator")

    if analytical is not None:
        _check_against_analytical(system, measured, analytical, checks)

    report = OracleReport(
        system=system.name,
        n_runs=len(result),
        has_feedback=bool(system.feedback_modules()),
        checks=tuple(checks),
        n_strategies=len(strategies),
    )
    return report, result


def _first_difference(reference, candidate) -> str:
    ref_irs, ref_golden = reference
    cand_irs, cand_golden = candidate
    if ref_golden != cand_golden:
        return f"golden-run digests differ: {ref_golden} vs {cand_golden}"
    for index, (ref_item, cand_item) in enumerate(zip(ref_irs, cand_irs)):
        if ref_item != cand_item:
            return (
                f"IR #{index}: {ref_item[0]} -> outcome/digest "
                f"{cand_item[0]!r}/{cand_item[1]} vs {ref_item[1]}"
            )
    return f"IR count differs: {len(ref_irs)} vs {len(cand_irs)}"


def _check_against_analytical(
    system: SystemModel,
    measured: PermeabilityMatrix,
    analytical: PermeabilityMatrix,
    checks: list[str],
) -> None:
    diff = measured.diff(analytical)
    if not diff.agrees(atol=EXACT_ATOL):
        raise OracleFailure(
            "exact-agreement",
            f"measured != analytical on {system.name!r} "
            f"(bit-deterministic behaviours must match exactly):\n"
            f"{diff.render()}",
        )
    checks.append("exact-agreement")

    for key, (n_errors, n_injections) in pair_trial_counts(measured).items():
        estimate = PermeabilityEstimate.from_counts(n_errors, n_injections)
        lo, hi = estimate.wilson_interval()
        module, input_signal, output_signal = key
        pair = f"{module}: {input_signal} -> {output_signal}"
        if not (0.0 <= lo <= estimate.value + EXACT_ATOL and
                estimate.value - EXACT_ATOL <= hi <= 1.0):
            raise OracleFailure(
                "ci-sanity",
                f"Wilson interval ({lo}, {hi}) malformed around point "
                f"estimate {estimate.value} for {pair} on {system.name!r}",
            )
        expected = analytical.get_or_none(*key)
        if expected is None:
            raise OracleFailure(
                "ci-containment",
                f"analytical matrix misses measured pair {pair}",
            )
        if not (lo - EXACT_ATOL <= expected <= hi + EXACT_ATOL):
            raise OracleFailure(
                "ci-containment",
                f"analytical {expected} outside Wilson interval "
                f"({lo}, {hi}) of {pair} on {system.name!r} "
                f"(n={n_injections}, errors={n_errors})",
            )
    checks.append("ci-sanity")
    checks.append("ci-containment")


# ---------------------------------------------------------------------------
# Static flow bounds (generated systems)
# ---------------------------------------------------------------------------


def check_static_containment(
    generated: GeneratedSystem,
    campaign: VerifyCampaign,
    measured: PermeabilityMatrix,
    analytical: PermeabilityMatrix,
) -> None:
    """The static flow bounds contain the measurement and are tight.

    Soundness applies everywhere: the measured matrix must lie within
    the bounds on every arc.  Tightness applies to the analysable part:
    a pure XOR-mask module loses nothing under the abstract
    interpretation of :mod:`repro.flow`, so each of its arcs must come
    out as a *point* interval equal to the analytical permeability.
    Arcs of opaque modules (``OpaqueMaskModule`` hides its plan) stay
    at ⊤ and are only checked for containment.
    """
    from repro.flow import analyse_run

    runner = generated.build_run()
    analysis = analyse_run(
        runner, error_models=tuple(bit_flip_models(campaign.n_bits))
    )
    bounds = analysis.bounds
    if not bounds.is_complete():
        raise OracleFailure(
            "static-containment",
            f"flow analysis left arcs unbounded on "
            f"{generated.system.name!r}: {bounds.missing_pairs()[:3]}",
        )
    violations = bounds.violations(measured, atol=EXACT_ATOL)
    if violations:
        raise OracleFailure(
            "static-containment",
            f"measured permeability escapes static bounds on "
            f"{generated.system.name!r}: " + "; ".join(violations[:3]),
        )
    flows = analysis.module_flows
    for (module, input_signal, output_signal), interval in bounds.items():
        if not flows[module].exact:
            continue  # opaque module: T is the best (and a sound) answer
        pair = f"{module}: {input_signal} -> {output_signal}"
        if not interval.exact:
            raise OracleFailure(
                "static-containment",
                f"bounds {interval} not tight on pure-XOR arc {pair} "
                f"of {generated.system.name!r}",
            )
        expected = analytical.get_or_none(module, input_signal, output_signal)
        if expected is None or abs(interval.lo - expected) > EXACT_ATOL:
            raise OracleFailure(
                "static-containment",
                f"static point bound {interval.lo} != analytical "
                f"{expected} on {pair} of {generated.system.name!r}",
            )


# ---------------------------------------------------------------------------
# Incremental result store (generated systems)
# ---------------------------------------------------------------------------


def check_incremental_parity(
    generated: GeneratedSystem, campaign: VerifyCampaign
) -> None:
    """A warm result store replays the campaign without executing.

    Runs the campaign cold into a fresh store, then warm from it, and
    asserts the contract of :mod:`repro.store`: the warm pass executes
    zero injection runs (every row a cache hit) yet recomposes outcomes
    and estimate matrix byte-identical to the cold pass — and to a
    store-less run, since the cold pass itself is compared against the
    baseline fingerprints by ``strategy-identity`` conventions.
    """
    import tempfile

    cases = {"gen": None}

    def run(store_dir: str):
        config = campaign.to_config(reuse=True, fast_forward=True)
        config = dataclasses.replace(config, store=store_dir)
        run_ = InjectionCampaign(
            generated.system, generated.run_factory, cases, config
        )
        result = run_.execute()
        return result, run_.last_store_stats

    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_dir:
        cold_result, cold_stats = run(store_dir)
        warm_result, warm_stats = run(store_dir)
    if cold_stats.hits or not cold_stats.misses:
        raise OracleFailure(
            "incremental-parity",
            f"cold pass expected all misses on {generated.system.name!r}, "
            f"got {cold_stats.to_jsonable()}",
        )
    if warm_stats.runs_executed or warm_stats.misses or warm_stats.rejected:
        raise OracleFailure(
            "incremental-parity",
            f"warm pass executed work on {generated.system.name!r}: "
            f"{warm_stats.to_jsonable()}",
        )
    cold_prints = [outcome.to_jsonable() for outcome in cold_result]
    warm_prints = [outcome.to_jsonable() for outcome in warm_result]
    if cold_prints != warm_prints:
        raise OracleFailure(
            "incremental-parity",
            f"warm outcomes differ from cold on {generated.system.name!r}",
        )
    require_complete = campaign.targets is None
    cold_matrix = estimate_matrix(
        cold_result, require_complete=require_complete
    ).to_jsonable()
    warm_matrix = estimate_matrix(
        warm_result, require_complete=require_complete
    ).to_jsonable()
    if cold_matrix != warm_matrix:
        raise OracleFailure(
            "incremental-parity",
            f"warm estimate matrix differs from cold on "
            f"{generated.system.name!r}",
        )


# ---------------------------------------------------------------------------
# Adaptive stopping (generated systems)
# ---------------------------------------------------------------------------


def check_adaptive_soundness(
    generated: GeneratedSystem,
    campaign: VerifyCampaign,
    analytical: PermeabilityMatrix,
    ci_width: float = 0.2,
) -> None:
    """The confidence-driven campaign stops early without lying.

    Runs the campaign exhaustively and adaptively (same seed, same
    grid) and asserts the contract of :mod:`repro.adaptive`:

    - every sampled adaptive outcome is byte-identical to the
      exhaustive outcome at the same grid coordinates (the sequential
      controller only *selects*, it never perturbs a run);
    - every live target retires, with ``1 <= n_trials <= n_grid``;
    - the recorded stopping half-width of each retired target agrees
      with the Wilson half-width recomputed from its achieved counts;
    - targets retired for ``confidence`` actually meet the configured
      interval width;
    - the achieved Wilson interval of every output arc contains the
      analytical permeability (XOR-mask systems measure exactly, so
      containment is necessary, not merely probable);
    - the adaptive estimate matrix is still complete.
    """
    cases = {"gen": None}
    base = campaign.to_config(reuse=True, fast_forward=True)
    exhaustive = InjectionCampaign(
        generated.system, generated.run_factory, cases, base
    ).execute()
    adaptive_config = dataclasses.replace(base, adaptive=True, ci_width=ci_width)
    adaptive = InjectionCampaign(
        generated.system, generated.run_factory, cases, adaptive_config
    ).execute()
    name = generated.system.name

    by_coord = {
        (
            outcome.case_id,
            outcome.module,
            outcome.input_signal,
            outcome.scheduled_time_ms,
            outcome.error_model,
        ): outcome
        for outcome in exhaustive
    }
    for outcome in adaptive:
        coord = (
            outcome.case_id,
            outcome.module,
            outcome.input_signal,
            outcome.scheduled_time_ms,
            outcome.error_model,
        )
        reference = by_coord.get(coord)
        if reference is None:
            raise OracleFailure(
                "adaptive-soundness",
                f"adaptive run sampled {coord} outside the exhaustive "
                f"grid of {name!r}",
            )
        if reference.to_jsonable() != outcome.to_jsonable():
            raise OracleFailure(
                "adaptive-soundness",
                f"adaptive outcome at {coord} differs from the "
                f"exhaustive outcome on {name!r}",
            )

    rows = adaptive.adaptive_rows()
    live_targets = {(o.module, o.input_signal) for o in exhaustive}
    retired = {(row.module, row.input_signal) for row in rows}
    if retired != live_targets:
        raise OracleFailure(
            "adaptive-soundness",
            f"retired targets {sorted(retired)} != campaign targets "
            f"{sorted(live_targets)} on {name!r}",
        )
    n_grid = len(cases) * base.runs_per_target()
    for row in rows:
        if row.n_grid != n_grid or not 1 <= row.n_trials <= row.n_grid:
            raise OracleFailure(
                "adaptive-soundness",
                f"retired target {(row.module, row.input_signal)} of "
                f"{name!r} reports {row.n_trials}/{row.n_grid} trials "
                f"against a grid of {n_grid}",
            )

    measured = estimate_matrix(
        adaptive, require_complete=campaign.targets is None
    )
    counts = pair_trial_counts(measured)
    outputs_of = {
        (module, input_signal): sorted(
            output
            for (m, i, output) in counts
            if (m, i) == (module, input_signal)
        )
        for (module, input_signal, _) in counts
    }
    for row in rows:
        achieved_half = 0.0
        for output in outputs_of.get((row.module, row.input_signal), ()):
            n_errors, n_injections = counts[
                (row.module, row.input_signal, output)
            ]
            lo, hi = wilson_interval(n_errors, n_injections)
            achieved_half = max(achieved_half, (hi - lo) / 2)
            expected = analytical.get_or_none(
                row.module, row.input_signal, output
            )
            if expected is None:
                raise OracleFailure(
                    "adaptive-soundness",
                    f"no analytical value for arc "
                    f"{(row.module, row.input_signal, output)} of {name!r}",
                )
            if not lo - EXACT_ATOL <= expected <= hi + EXACT_ATOL:
                raise OracleFailure(
                    "adaptive-soundness",
                    f"retired interval ({lo}, {hi}) of arc "
                    f"{(row.module, row.input_signal, output)} excludes "
                    f"the analytical permeability {expected} on {name!r}",
                )
        if abs(achieved_half - row.half_width) > EXACT_ATOL:
            raise OracleFailure(
                "adaptive-soundness",
                f"recorded stopping half-width {row.half_width} of "
                f"{(row.module, row.input_signal)} disagrees with the "
                f"achieved counts ({achieved_half}) on {name!r}",
            )
        if row.reason == "confidence" and not achieved_half < (
            ci_width + EXACT_ATOL
        ):
            raise OracleFailure(
                "adaptive-soundness",
                f"target {(row.module, row.input_signal)} retired for "
                f"confidence at half-width {achieved_half} >= requested "
                f"{ci_width} on {name!r}",
            )


# ---------------------------------------------------------------------------
# Metamorphic relations (analysis-level, generated systems)
# ---------------------------------------------------------------------------


def check_dead_sink_invariance(
    generated: GeneratedSystem, analytical: PermeabilityMatrix
) -> None:
    """Adding a dead sink never changes pre-existing exposures."""
    system = generated.system
    base_modules = all_module_exposures(PermeabilityGraph(analytical))
    base_signals = signal_exposures_for_matrix(analytical)

    victim = system.system_outputs[0]
    sink = ModuleSpec(
        name="DEAD_SINK",
        inputs=(victim,),
        outputs=("dead_sink_out",),
        description="metamorphic probe: consumes but feeds nothing",
    )
    mutated_system = SystemModel(
        name=system.name,
        modules=[*system.modules.values(), sink],
        system_inputs=system.system_inputs,
        system_outputs=system.system_outputs,
        signals=list(system.signals.values()),
        validate=False,  # the sink's output is genuinely dangling
    )
    mutated = PermeabilityMatrix(mutated_system)
    for (module, input_signal, output_signal), estimate in analytical.items():
        mutated.set(module, input_signal, output_signal, estimate.value)
    mutated.set("DEAD_SINK", victim, "dead_sink_out", 0.7)

    new_modules = all_module_exposures(PermeabilityGraph(mutated))
    for name, base in base_modules.items():
        after = new_modules[name]
        if (after.exposure, after.nonweighted_exposure) != (
            base.exposure,
            base.nonweighted_exposure,
        ):
            raise OracleFailure(
                "metamorphic-dead-sink",
                f"module exposure of {name!r} changed after adding a dead "
                f"sink: {base} -> {after}",
            )
    new_signals = signal_exposures_for_matrix(mutated)
    for name, base_value in base_signals.items():
        if abs(new_signals[name] - base_value) > EXACT_ATOL:
            raise OracleFailure(
                "metamorphic-dead-sink",
                f"signal exposure of {name!r} changed after adding a dead "
                f"sink: {base_value} -> {new_signals[name]}",
            )


def check_prerr_scaling(
    generated: GeneratedSystem,
    analytical: PermeabilityMatrix,
    factor: float = 0.5,
) -> None:
    """Scaling Pr(err) by ``factor`` rescales adjusted weights linearly."""
    spec = generated.spec
    scaled_spec = dataclasses.replace(
        spec,
        error_probabilities={
            name: value * factor
            for name, value in spec.error_probabilities.items()
        },
    )
    scaled_system = GeneratedSystem(scaled_spec).system
    trees = build_all_backtrack_trees(analytical)
    for tree in trees.values():
        for path in paths_of_backtrack_tree(tree):
            source = path.source
            base_p = generated.system.signal(source).error_probability
            scaled_p = scaled_system.signal(source).error_probability
            if base_p is None:
                if scaled_p is not None:
                    raise OracleFailure(
                        "metamorphic-prerr-scaling",
                        f"signal {source!r} gained a Pr(err) from scaling",
                    )
                continue
            if abs(scaled_p - factor * base_p) > EXACT_ATOL:
                raise OracleFailure(
                    "metamorphic-prerr-scaling",
                    f"Pr(err) of {source!r} scaled to {scaled_p}, expected "
                    f"{factor * base_p}",
                )
            base_weight = path.adjusted_weight(base_p)
            scaled_weight = path.adjusted_weight(scaled_p)
            if abs(scaled_weight - factor * base_weight) > EXACT_ATOL:
                raise OracleFailure(
                    "metamorphic-prerr-scaling",
                    f"adjusted weight of path {path.signals} scaled to "
                    f"{scaled_weight}, expected {factor * base_weight}",
                )


# ---------------------------------------------------------------------------
# Entry point for generated systems
# ---------------------------------------------------------------------------


def verify_generated(
    generated: GeneratedSystem,
    campaign: VerifyCampaign | None = None,
    backends: tuple[str, ...] | None = None,
) -> OracleReport:
    """Full oracle pass over one generated system.

    Differential campaign checks plus the analysis-level metamorphic
    relations.  Raises :class:`OracleFailure` on any violation.
    """
    if campaign is None:
        campaign = default_campaign(generated)
    analytical = generated.analytical_matrix(campaign.n_bits)
    report, result = differential_oracle(
        generated.system,
        generated.run_factory,
        {"gen": None},
        campaign,
        analytical=analytical,
        backends=backends,
    )
    measured = estimate_matrix(result, require_complete=campaign.targets is None)
    check_static_containment(generated, campaign, measured, analytical)
    check_incremental_parity(generated, campaign)
    check_adaptive_soundness(generated, campaign, analytical)
    check_dead_sink_invariance(generated, analytical)
    check_prerr_scaling(generated, analytical)
    return dataclasses.replace(
        report,
        checks=(
            *report.checks,
            "static-containment",
            "incremental-parity",
            "adaptive-soundness",
            "metamorphic-dead-sink",
            "metamorphic-prerr-scaling",
        ),
    )
