"""Baseline analyses the paper positions itself against (Section 2).

* :mod:`repro.baselines.uniform` — the uniform-propagation hypothesis
  of reference [12], which the paper refutes.
* :mod:`repro.baselines.edm_selection` — coverage/latency-driven EDM
  subset optimisation in the style of reference [18].
"""

from repro.baselines.edm_selection import (
    EdmCandidate,
    EdmSelection,
    evaluate_candidates,
    greedy_edm_selection,
)
from repro.baselines.uniform import (
    LocationPropagation,
    UniformPropagationReport,
    analyse_uniform_propagation,
)

__all__ = [
    "EdmCandidate",
    "EdmSelection",
    "LocationPropagation",
    "UniformPropagationReport",
    "analyse_uniform_propagation",
    "evaluate_candidates",
    "greedy_edm_selection",
]
