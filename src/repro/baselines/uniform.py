"""Uniform-propagation analysis — the baseline claim of reference [12].

"An investigation in [12] reported that there was evidence of uniform
propagation of data errors.  That is, a data error occurring at a
location *l* in a program would, to a high degree, exhibit uniform
propagation, meaning that for location *l* either all data errors would
propagate to the system output or none of them would.  Our findings do
not corroborate this assertion" (Section 2).

This module quantifies the claim against a campaign: for every injection
location (module input), the *propagation ratio* is the fraction of
injections whose error reached a system output.  Under strict uniform
propagation every location's ratio is 0 or 1; the paper's counter-claim
predicts a substantial mass of intermediate ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.injection.outcomes import CampaignResult

__all__ = [
    "LocationPropagation",
    "UniformPropagationReport",
    "analyse_uniform_propagation",
]


@dataclass(frozen=True)
class LocationPropagation:
    """Propagation statistics of one injection location."""

    module: str
    input_signal: str
    n_injections: int
    n_propagated: int

    @property
    def ratio(self) -> float:
        """Fraction of injections that reached a system output."""
        if self.n_injections == 0:
            return 0.0
        return self.n_propagated / self.n_injections

    def is_uniform(self, tolerance: float = 0.05) -> bool:
        """Whether the location behaves uniformly within ``tolerance``."""
        return self.ratio <= tolerance or self.ratio >= 1.0 - tolerance


@dataclass(frozen=True)
class UniformPropagationReport:
    """Aggregate verdict over all injection locations."""

    locations: tuple[LocationPropagation, ...]
    tolerance: float

    @property
    def n_locations(self) -> int:
        return len(self.locations)

    @property
    def n_uniform(self) -> int:
        """Locations whose ratio is near 0 or near 1."""
        return sum(1 for loc in self.locations if loc.is_uniform(self.tolerance))

    @property
    def uniformity_index(self) -> float:
        """Fraction of uniform locations; 1.0 would corroborate [12]."""
        if not self.locations:
            return 1.0
        return self.n_uniform / self.n_locations

    @property
    def corroborates_uniform_propagation(self) -> bool:
        """Whether the data supports [12]'s claim (all locations uniform)."""
        return self.n_uniform == self.n_locations

    def intermediate_locations(self) -> tuple[LocationPropagation, ...]:
        """Locations with genuinely partial propagation."""
        return tuple(
            loc for loc in self.locations if not loc.is_uniform(self.tolerance)
        )

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            "Uniform-propagation analysis (baseline of [12])",
            f"  tolerance: ratio <= {self.tolerance:.2f} or >= {1 - self.tolerance:.2f}",
            f"  uniform locations: {self.n_uniform}/{self.n_locations} "
            f"(index {self.uniformity_index:.2f})",
            "  location ratios:",
        ]
        for loc in sorted(self.locations, key=lambda l: -l.ratio):
            marker = "uniform" if loc.is_uniform(self.tolerance) else "PARTIAL"
            lines.append(
                f"    {loc.module}.{loc.input_signal}: "
                f"{loc.n_propagated}/{loc.n_injections} = {loc.ratio:.3f} [{marker}]"
            )
        verdict = (
            "corroborates" if self.corroborates_uniform_propagation else "refutes"
        )
        lines.append(f"  verdict: the campaign {verdict} uniform propagation")
        return "\n".join(lines)


def analyse_uniform_propagation(
    result: CampaignResult, tolerance: float = 0.05
) -> UniformPropagationReport:
    """Evaluate [12]'s uniform-propagation hypothesis on a campaign.

    An injection is counted as propagated when any system output of the
    analysed system diverged from the Golden Run.
    """
    outputs = result.system.system_outputs
    stats: dict[tuple[str, str], list[int]] = {}
    for outcome in result:
        key = (outcome.module, outcome.input_signal)
        counters = stats.setdefault(key, [0, 0])
        counters[0] += 1
        if outcome.fired and any(
            outcome.comparison.diverged(output) for output in outputs
        ):
            counters[1] += 1
    locations = tuple(
        LocationPropagation(
            module=module,
            input_signal=input_signal,
            n_injections=counters[0],
            n_propagated=counters[1],
        )
        for (module, input_signal), counters in sorted(stats.items())
    )
    return UniformPropagationReport(locations=locations, tolerance=tolerance)
