"""Coverage/latency EDM subset selection — the baseline of reference [18].

"Finding optimal combinations of hardware EDM's based on experimental
results was described in [18].  They used coverage and latency estimates
for a given set of EDM's to form subsets which minimised overlapping
between different EDM's, thereby giving the best cost-performance
ratio" (Section 2).

Here the candidate EDMs are perfect trace monitors, one per internal
signal: a monitor on signal *S* detects an injected error exactly when
the error propagates through *S* (its trace diverges from the Golden
Run), with latency equal to the divergence delay.  Greedy
maximum-marginal-coverage selection then builds the subset, which is
exactly the minimise-overlap heuristic of [18]: each added monitor is
the one contributing the most *not-yet-covered* errors.

Comparing the greedy selection against the paper's exposure-based
placement (Section 5) is the purpose of the ``bench_edm_selection``
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.injection.outcomes import CampaignResult

__all__ = ["EdmCandidate", "EdmSelection", "evaluate_candidates", "greedy_edm_selection"]


@dataclass(frozen=True)
class EdmCandidate:
    """A candidate detector: a perfect trace monitor on one signal."""

    signal: str
    #: Fraction of error-producing injections this monitor detects.
    coverage: float
    #: Mean detection latency (ms) over the detected injections.
    mean_latency_ms: float
    #: Indices (into the campaign's propagated-outcome list) detected.
    detected: frozenset[int]

    @property
    def n_detected(self) -> int:
        return len(self.detected)


@dataclass(frozen=True)
class EdmSelection:
    """A greedy-selected subset of monitors."""

    candidates: tuple[EdmCandidate, ...]
    #: Cumulative coverage after each selection step.
    cumulative_coverage: tuple[float, ...]
    #: Total number of detectable (error-producing) injections.
    n_detectable: int

    @property
    def signals(self) -> tuple[str, ...]:
        return tuple(candidate.signal for candidate in self.candidates)

    @property
    def total_coverage(self) -> float:
        """Coverage of the full selection."""
        if not self.cumulative_coverage:
            return 0.0
        return self.cumulative_coverage[-1]

    def render(self) -> str:
        """Human-readable selection table."""
        lines = [
            "Greedy EDM subset selection (baseline of [18])",
            f"  detectable injections: {self.n_detectable}",
        ]
        for candidate, cumulative in zip(self.candidates, self.cumulative_coverage):
            lines.append(
                f"  + {candidate.signal}: own coverage {candidate.coverage:.3f}, "
                f"mean latency {candidate.mean_latency_ms:.0f} ms, "
                f"cumulative {cumulative:.3f}"
            )
        return "\n".join(lines)


def evaluate_candidates(
    result: CampaignResult,
    signals: Sequence[str] | None = None,
) -> tuple[list[EdmCandidate], int]:
    """Coverage/latency estimates for monitors on the given signals.

    Parameters
    ----------
    result:
        The campaign to evaluate against.
    signals:
        Candidate monitor locations; defaults to every internal signal
        (system inputs are excluded — a monitor there sees the raw
        environment, not propagating errors; system outputs are kept,
        they correspond to last-line detection).

    Returns the candidate list and the number of detectable injections
    (those that corrupted at least one traced signal).
    """
    system = result.system
    if signals is None:
        signals = [
            signal
            for signal in system.signal_names()
            if not system.is_system_input(signal)
        ]
    # Only injections that produced *some* observable error can ever be
    # detected; coverage is normalised on those, as in [18].
    detectable_indices: list[int] = []
    for index, outcome in enumerate(result):
        if outcome.fired and not outcome.comparison.error_free():
            detectable_indices.append(index)
    outcomes = list(result)
    candidates: list[EdmCandidate] = []
    for signal in signals:
        detected: set[int] = set()
        latencies: list[int] = []
        for index in detectable_indices:
            outcome = outcomes[index]
            divergence = outcome.comparison.divergence_time(signal)
            if divergence is None:
                continue
            detected.add(index)
            latencies.append(divergence - outcome.scheduled_time_ms)
        coverage = (
            len(detected) / len(detectable_indices) if detectable_indices else 0.0
        )
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        candidates.append(
            EdmCandidate(
                signal=signal,
                coverage=coverage,
                mean_latency_ms=mean_latency,
                detected=frozenset(detected),
            )
        )
    return candidates, len(detectable_indices)


def greedy_edm_selection(
    result: CampaignResult,
    max_monitors: int = 3,
    signals: Sequence[str] | None = None,
) -> EdmSelection:
    """Select up to ``max_monitors`` monitors by marginal coverage.

    Ties in marginal coverage are broken toward lower mean latency,
    then lexicographically, making the selection deterministic.
    """
    if max_monitors < 1:
        raise ValueError("max_monitors must be >= 1")
    candidates, n_detectable = evaluate_candidates(result, signals)
    remaining = list(candidates)
    covered: set[int] = set()
    chosen: list[EdmCandidate] = []
    cumulative: list[float] = []
    for _ in range(max_monitors):
        best: EdmCandidate | None = None
        best_gain = 0
        for candidate in remaining:
            gain = len(candidate.detected - covered)
            if best is None or gain > best_gain or (
                gain == best_gain
                and best is not None
                and (candidate.mean_latency_ms, candidate.signal)
                < (best.mean_latency_ms, best.signal)
            ):
                if gain > 0 or best is None:
                    best = candidate
                    best_gain = gain
        if best is None or best_gain == 0:
            break
        chosen.append(best)
        remaining.remove(best)
        covered |= best.detected
        cumulative.append(len(covered) / n_detectable if n_detectable else 0.0)
    return EdmSelection(
        candidates=tuple(chosen),
        cumulative_coverage=tuple(cumulative),
        n_detectable=n_detectable,
    )
