"""Static model analysis: lint rules over system topologies.

The paper's analysis silently degenerates on several classes of
modelling mistakes — unreachable modules, dead-sink outputs (vacuous
``X^S = 0``), cross-module cycles cut by the tree builders — and the
model layer rejects others with exceptions that point at one symptom at
a time.  This package turns both classes into a conventional linter:
:func:`lint_system` runs every registered rule and returns a
:class:`LintReport` of :class:`Diagnostic` findings with stable codes,
severities, model-element locations and fix-it hints, renderable as
text, JSON or SARIF 2.1.0.

``repro lint`` exposes it on the command line;
:class:`~repro.injection.campaign.InjectionCampaign` runs it by default
before the Golden Run and refuses to start on error-level findings.
"""

from repro.lint.diagnostics import (
    LINT_SCHEMA_VERSION,
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
)
from repro.lint.rules import (
    LintContext,
    LintRule,
    lint_system,
    registered_rules,
    rule,
)
from repro.lint.sarif import (
    SARIF_MINIMAL_SCHEMA,
    SARIF_VERSION,
    to_sarif,
    validate_sarif,
)

__all__ = [
    "LINT_SCHEMA_VERSION",
    "SARIF_MINIMAL_SCHEMA",
    "SARIF_VERSION",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintRule",
    "Severity",
    "SourceLocation",
    "lint_system",
    "registered_rules",
    "rule",
    "to_sarif",
    "validate_sarif",
]
