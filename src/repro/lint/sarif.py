"""SARIF 2.1.0 output for lint reports.

The emitter itself lives in :mod:`repro.report.sarif` and is shared
with the static bit-flow analysis (:mod:`repro.flow`); this module only
binds the ``repro-lint`` tool identity and rule registry to it, and
re-exports the schema/validator names the package has always offered.
"""

from __future__ import annotations

from repro.lint.diagnostics import LintReport
from repro.lint.rules import registered_rules
from repro.report.sarif import (
    DEFAULT_TOOL_URI,
    SARIF_MINIMAL_SCHEMA,
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    sarif_log,
    validate_sarif,
)

__all__ = [
    "SARIF_VERSION",
    "SARIF_SCHEMA_URI",
    "SARIF_MINIMAL_SCHEMA",
    "to_sarif",
    "validate_sarif",
]

TOOL_NAME = "repro-lint"
TOOL_URI = DEFAULT_TOOL_URI


def to_sarif(report: LintReport) -> dict:
    """Render a :class:`LintReport` as a SARIF 2.1.0 log (JSON-ready dict)."""
    return sarif_log(
        report,
        tool_name=TOOL_NAME,
        tool_uri=TOOL_URI,
        rules=registered_rules(),
        doc_page="docs/LINTING.md",
    )
