"""Diagnostics engine for the static model linter.

A :class:`Diagnostic` is one finding of a lint rule: a stable code
(``R001`` ...), a :class:`Severity`, a human-readable message, a
:class:`SourceLocation` pointing at the offending model element
(module / signal / port) and an optional fix-it ``hint``.  A
:class:`LintReport` aggregates the findings of one lint pass and offers
filtering, severity queries and the three output formats (text, JSON;
SARIF lives in :mod:`repro.lint.sarif`).

The design borrows the ergonomics of mainstream linters: stable codes
so findings are individually suppressible (``--ignore R005``), severity
tiers so CI can choose its gate (``--fail-on warning``), and structured
locations so tooling can annotate the model element rather than a text
position — the "source" being linted is a topology, not a file.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Severity",
    "SourceLocation",
    "Diagnostic",
    "LintReport",
]

#: Version of the JSON report layout (also recorded in SARIF output).
LINT_SCHEMA_VERSION = 1


class Severity(enum.IntEnum):
    """Severity tier of a diagnostic; integer order enables gating.

    ``ERROR`` findings make the analysis meaningless or wrong (the
    injection campaign refuses to start on them); ``WARNING`` findings
    produce silently degenerate measures (e.g. vacuous ``X^S = 0``);
    ``INFO`` findings are advisory.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in text/JSON output (``"error"`` ...)."""
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        """Parse ``"error"`` / ``"warning"`` / ``"info"`` (CLI input)."""
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {label!r}; "
                f"expected one of {[s.label for s in cls]}"
            ) from None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


@dataclass(frozen=True)
class SourceLocation:
    """Where in the model a diagnostic points.

    The linted "source" is a system topology, so locations name model
    elements rather than file positions: a module, a signal, or a port
    (``module`` + ``signal`` + ``port`` role).  Any field may be absent;
    a fully empty location means "the system as a whole".
    """

    module: str | None = None
    signal: str | None = None
    port: str | None = None  # e.g. "input", "output", "pair", "target"

    def fully_qualified(self) -> str:
        """Stable dotted identity, e.g. ``module:CALC/signal:i/port:input``.

        Used as the SARIF ``logicalLocation.fullyQualifiedName``.
        """
        parts = []
        if self.module is not None:
            parts.append(f"module:{self.module}")
        if self.signal is not None:
            parts.append(f"signal:{self.signal}")
        if self.port is not None:
            parts.append(f"port:{self.port}")
        return "/".join(parts) if parts else "system"

    def to_dict(self) -> dict:
        return {
            key: value
            for key, value in (
                ("module", self.module),
                ("signal", self.signal),
                ("port", self.port),
            )
            if value is not None
        }

    def __str__(self) -> str:
        return self.fully_qualified()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a lint rule."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    hint: str | None = None

    def render(self) -> str:
        """One-line text form: ``error R001 [signal:x] message``."""
        line = f"{self.severity.label:<7} {self.code} [{self.location}] {self.message}"
        if self.hint:
            line += f"\n        hint: {self.hint}"
        return line

    def to_dict(self) -> dict:
        """JSON-ready form (used by ``--format json`` and the event stream)."""
        record = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "location": self.location.to_dict(),
        }
        if self.hint is not None:
            record["hint"] = self.hint
        return record

    def __str__(self) -> str:
        return self.render()


def _sort_key(diagnostic: Diagnostic):
    # The location sorts by its rendered form: field-wise ordering would
    # choke on absent (None) components.
    return (
        -int(diagnostic.severity),
        diagnostic.code,
        diagnostic.location.fully_qualified(),
    )


class LintReport:
    """The findings of one lint pass over a system model.

    Diagnostics are held sorted: errors first, then by code, then by
    location, so output is deterministic for equal models.
    """

    def __init__(
        self, system_name: str, diagnostics: Iterable[Diagnostic] = ()
    ) -> None:
        self.system_name = system_name
        self._diagnostics = sorted(diagnostics, key=_sort_key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def diagnostics(self) -> tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def at_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        """All findings of exactly ``severity``."""
        return tuple(d for d in self._diagnostics if d.severity is severity)

    def errors(self) -> tuple[Diagnostic, ...]:
        return self.at_severity(Severity.ERROR)

    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.at_severity(Severity.WARNING)

    def infos(self) -> tuple[Diagnostic, ...]:
        return self.at_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors())

    def worst(self) -> Severity | None:
        """The highest severity present, or ``None`` for a clean report."""
        if not self._diagnostics:
            return None
        return max(d.severity for d in self._diagnostics)

    def codes(self) -> tuple[str, ...]:
        """Distinct diagnostic codes present, sorted."""
        return tuple(sorted({d.code for d in self._diagnostics}))

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.code == code)

    def fails_at(self, threshold: Severity) -> bool:
        """Whether any finding is at or above ``threshold`` (CI gating)."""
        return any(d.severity >= threshold for d in self._diagnostics)

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def filter(
        self,
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
    ) -> "LintReport":
        """A new report restricted to ``select`` codes minus ``ignore``.

        Codes match by prefix, so ``--select R0`` keeps every rule and
        ``--ignore R005`` suppresses exactly one.
        """

        def matches(code: str, patterns: Sequence[str]) -> bool:
            return any(code.startswith(pattern) for pattern in patterns)

        kept = self._diagnostics
        if select is not None:
            kept = [d for d in kept if matches(d.code, select)]
        if ignore:
            kept = [d for d in kept if not matches(d.code, ignore)]
        return LintReport(self.system_name, kept)

    # ------------------------------------------------------------------
    # Output formats
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """One-line totals, e.g. ``2 errors, 1 warning, 0 info``."""
        return (
            f"{len(self.errors())} error(s), {len(self.warnings())} "
            f"warning(s), {len(self.infos())} info"
        )

    def render_text(self) -> str:
        """Human-readable multi-line report (``--format text``)."""
        lines = [f"lint report for system {self.system_name!r}"]
        if not self._diagnostics:
            lines.append("  clean: no findings")
        for diagnostic in self._diagnostics:
            for part in diagnostic.render().splitlines():
                lines.append(f"  {part}")
        lines.append(self.summary())
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        """JSON-ready dict (``--format json``)."""
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "system": self.system_name,
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "info": len(self.infos()),
            },
            "diagnostics": [d.to_dict() for d in self._diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LintReport {self.system_name!r} "
            f"n={len(self._diagnostics)} worst={self.worst()}>"
        )
