"""Rule registry and the ``lint_system()`` entry point.

Every rule is a generator function registered with the :func:`rule`
decorator under a stable code (``R001`` ...).  A rule receives a
:class:`LintContext` and yields ``(location, message, hint)`` findings;
the engine wraps them into :class:`~repro.lint.diagnostics.Diagnostic`
records carrying the rule's code and severity.  Rules are individually
suppressible via ``select``/``ignore`` code prefixes.

Rule catalogue (see ``docs/LINTING.md`` for rationale and examples):

======  ========  ==========================================================
code    severity  finding
======  ========  ==========================================================
R001    error     signal never consumed and not a system output (dangling)
R002    error     signal never produced and not a system input
R003    error     broken system boundary declaration
R004    warning   module unreachable from every system input
R005    warning   module output with no path to any system output (dead sink)
R006    warning   cross-module cycle outside the paper's self-feedback rule
R007    warning   module on such a cycle without declared self-feedback
R008    warning   width mismatch across an input/output pair
R009    warning   all-zero permeability row (input never permeates)
R010    warning   all-zero permeability column (output never receives)
R011    warning   detector shadowed by an upstream detector
R012    error     campaign target names an unknown (module, signal) pair
R013    warning   statically-dead arc the model still declares live
R014    info      constant-masked input bits no error model can propagate
======  ========  ==========================================================

The structural rules (R001–R008) need only the
:class:`~repro.model.system.SystemModel`; R009/R010 additionally need a
:class:`~repro.core.permeability.PermeabilityMatrix`, R011 a set of
detector placements, R012 a campaign target grid, and the flow-backed
rules R013/R014 a :class:`~repro.flow.analysis.FlowAnalysis` (the
``bounds`` ingredient).  Rules whose context is absent are skipped, not
failed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
)
from repro.model.errors import nearest_name
from repro.model.system import SystemModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.permeability import PermeabilityMatrix
    from repro.flow.analysis import FlowAnalysis

__all__ = [
    "LintContext",
    "LintRule",
    "rule",
    "registered_rules",
    "lint_system",
]

#: A rule yields (location, message, hint-or-None) findings.
Finding = tuple[SourceLocation, str, "str | None"]
RuleCheck = Callable[["LintContext"], Iterator[Finding]]


@dataclass(frozen=True)
class LintContext:
    """Everything a lint pass may inspect.

    Only ``system`` is mandatory; rules that need the optional artifacts
    declare the requirement and are skipped when it is absent.
    """

    system: SystemModel
    matrix: "PermeabilityMatrix | None" = None
    targets: tuple[tuple[str, str], ...] | None = None
    detectors: tuple[str, ...] | None = None
    bounds: "FlowAnalysis | None" = None

    def available(self) -> frozenset[str]:
        tags = set()
        if self.matrix is not None:
            tags.add("matrix")
        if self.targets is not None:
            tags.add("targets")
        if self.detectors is not None:
            tags.add("detectors")
        if self.bounds is not None:
            tags.add("bounds")
        return frozenset(tags)


@dataclass(frozen=True)
class LintRule:
    """One registered rule: identity, default severity and its check."""

    code: str
    severity: Severity
    title: str
    requires: frozenset[str]
    check: RuleCheck


_REGISTRY: dict[str, LintRule] = {}


def rule(
    code: str,
    severity: Severity,
    title: str,
    requires: Iterable[str] = (),
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule function under a stable diagnostic code."""

    def decorate(check: RuleCheck) -> RuleCheck:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = LintRule(
            code=code,
            severity=severity,
            title=title,
            requires=frozenset(requires),
            check=check,
        )
        return check

    return decorate


def registered_rules() -> tuple[LintRule, ...]:
    """All registered rules, sorted by code (the SARIF rule array)."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# Topology helpers (shared by several rules)
# ---------------------------------------------------------------------------


def _known_signals(system: SystemModel) -> frozenset[str]:
    return frozenset(system.signal_names())


def _is_autonomous(spec) -> bool:
    """Whether a module drives itself: no inputs, or inputs ⊆ own outputs.

    The paper's target system has one such module (``CLOCK``, fed only by
    its own ``ms_slot_nbr`` feedback); autonomous modules are legitimate
    data sources, so they seed the reachability fixpoint rather than
    being flagged unreachable.
    """
    return not spec.inputs or set(spec.inputs) <= set(spec.outputs)


def _reachable_modules(system: SystemModel) -> frozenset[str]:
    """Modules reachable from a data source (forward fixpoint).

    Sources are the system inputs plus the outputs of autonomous
    modules (see :func:`_is_autonomous`).
    """
    known = _known_signals(system)
    live_signals = {s for s in system.system_inputs if s in known}
    live_modules: set[str] = set()
    for name in system.module_names():
        spec = system.module(name)
        if _is_autonomous(spec):
            live_modules.add(name)
            live_signals.update(spec.outputs)
    changed = True
    while changed:
        changed = False
        for name in system.module_names():
            if name in live_modules:
                continue
            spec = system.module(name)
            if any(s in live_signals for s in spec.inputs):
                live_modules.add(name)
                live_signals.update(spec.outputs)
                changed = True
    return frozenset(live_modules)


def _signals_reaching_outputs(system: SystemModel) -> frozenset[str]:
    """Signals with a structural path to some system output (backward)."""
    known = _known_signals(system)
    reaching = {s for s in system.system_outputs if s in known}
    changed = True
    while changed:
        changed = False
        for name in system.module_names():
            spec = system.module(name)
            if any(s in reaching for s in spec.outputs):
                for s in spec.inputs:
                    if s not in reaching:
                        reaching.add(s)
                        changed = True
    return frozenset(reaching)


def _module_digraph(system: SystemModel) -> dict[str, set[str]]:
    """Cross-module edges producer → consumer (self-loops excluded)."""
    edges: dict[str, set[str]] = {name: set() for name in system.module_names()}
    for connection in system.connections():
        if connection.producer.module != connection.consumer.module:
            edges[connection.producer.module].add(connection.consumer.module)
    return edges


def _cross_module_cycles(system: SystemModel) -> tuple[tuple[str, ...], ...]:
    """Strongly connected components with more than one module.

    These are exactly the topologies the paper's self-feedback rule does
    not cover; the tree builders cut them with ``NodeKind.CYCLE``.
    Kosaraju's algorithm with iterative DFS (graphs are small, but
    hypothesis-generated ones should not hit the recursion limit).
    """
    edges = _module_digraph(system)
    reversed_edges: dict[str, set[str]] = {name: set() for name in edges}
    for source, sinks in edges.items():
        for sink in sinks:
            reversed_edges[sink].add(source)

    order: list[str] = []
    seen: set[str] = set()
    for start in edges:
        if start in seen:
            continue
        stack: list[tuple[str, Iterator[str]]] = [(start, iter(sorted(edges[start])))]
        seen.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for successor in it:
                if successor not in seen:
                    seen.add(successor)
                    stack.append((successor, iter(sorted(edges[successor]))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    components: list[tuple[str, ...]] = []
    assigned: set[str] = set()
    for start in reversed(order):
        if start in assigned:
            continue
        component = [start]
        assigned.add(start)
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for predecessor in reversed_edges[node]:
                if predecessor not in assigned:
                    assigned.add(predecessor)
                    component.append(predecessor)
                    frontier.append(predecessor)
        if len(component) > 1:
            components.append(tuple(sorted(component)))
    return tuple(sorted(components))


#: Virtual root of the signal dataflow graph used for dominators.
_SOURCE = "<external>"


def _signal_dominators(system: SystemModel) -> dict[str, frozenset[str]]:
    """Dominator sets over the signal dataflow graph.

    Signal *a* dominates signal *b* when every structural propagation
    path from the environment into *b* passes through *a* — the basis of
    the detector-shadowing rule R011.  Classic iterative fixpoint; the
    virtual root feeds system inputs and producer-less signals.
    """
    signals = list(system.signal_names())
    predecessors: dict[str, set[str]] = {}
    for signal in signals:
        producer = system.producer_of(signal)
        if producer is None or system.is_system_input(signal):
            predecessors[signal] = {_SOURCE}
        else:
            inputs = system.module(producer.module).inputs
            predecessors[signal] = set(inputs) if inputs else {_SOURCE}

    universe = set(signals) | {_SOURCE}
    dom: dict[str, set[str]] = {_SOURCE: {_SOURCE}}
    for signal in signals:
        dom[signal] = set(universe)
    changed = True
    while changed:
        changed = False
        for signal in signals:
            meet = set.intersection(*(dom[p] for p in predecessors[signal]))
            new = meet | {signal}
            if new != dom[signal]:
                dom[signal] = new
                changed = True
    return {signal: frozenset(dom[signal]) for signal in signals}


# ---------------------------------------------------------------------------
# Structural rules (system model only)
# ---------------------------------------------------------------------------


@rule("R001", Severity.ERROR, "dangling signal: produced or declared but never consumed")
def _r001_dangling_signal(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    for signal in system.signal_names():
        if system.consumers_of(signal) or system.is_system_output(signal):
            continue
        producer = system.producer_of(signal)
        if producer is not None:
            yield (
                SourceLocation(
                    module=producer.module, signal=signal, port="output"
                ),
                f"signal {signal!r} is produced by module "
                f"{producer.module!r} but never consumed",
                "consume it, mark it a system output, or remove the "
                "output port",
            )
        else:
            yield (
                SourceLocation(signal=signal),
                f"signal {signal!r} is declared but never consumed",
                "wire it into a module input or mark it a system output",
            )


@rule("R002", Severity.ERROR, "signal consumed but never produced")
def _r002_unproduced_signal(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    for signal in system.signal_names():
        if system.producer_of(signal) is not None or system.is_system_input(signal):
            continue
        consumers = system.consumers_of(signal)
        where = (
            f"consumed by {', '.join(sorted({p.module for p in consumers}))}"
            if consumers
            else "never referenced by any module"
        )
        location = SourceLocation(
            module=consumers[0].module if consumers else None,
            signal=signal,
            port="input" if consumers else None,
        )
        yield (
            location,
            f"signal {signal!r} has no producer ({where}) and is not a "
            "system input",
            "produce it from a module output or mark it a system input",
        )


@rule("R003", Severity.ERROR, "broken system boundary declaration")
def _r003_boundary(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    known = _known_signals(system)
    for signal in system.system_inputs:
        if signal not in known:
            suggestion = nearest_name(signal, known)
            yield (
                SourceLocation(signal=signal, port="input"),
                f"system input {signal!r} is not a known signal",
                f"did you mean {suggestion!r}?" if suggestion else
                "declare the signal or drop the boundary marking",
            )
        else:
            producer = system.producer_of(signal)
            if producer is not None:
                yield (
                    SourceLocation(
                        module=producer.module, signal=signal, port="input"
                    ),
                    f"system input {signal!r} is produced internally by "
                    f"{producer.module!r}",
                    "a system input must come from the environment; drop "
                    "the marking or the producing output",
                )
    for signal in system.system_outputs:
        if signal not in known:
            suggestion = nearest_name(signal, known)
            yield (
                SourceLocation(signal=signal, port="output"),
                f"system output {signal!r} is not a known signal",
                f"did you mean {suggestion!r}?" if suggestion else
                "declare the signal or drop the boundary marking",
            )
        elif system.producer_of(signal) is None:
            yield (
                SourceLocation(signal=signal, port="output"),
                f"system output {signal!r} has no producing module",
                "produce it from a module output or drop the marking",
            )


@rule("R004", Severity.WARNING, "module unreachable from every system input")
def _r004_unreachable_module(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    reachable = _reachable_modules(system)
    for name in system.module_names():
        if name in reachable:
            continue
        yield (
            SourceLocation(module=name),
            f"module {name!r} is unreachable from every system input and "
            "every autonomous module; no external data or error ever "
            "flows into it",
            "wire one of its inputs to a system input or to an upstream "
            "module output",
        )


@rule("R005", Severity.WARNING, "dead sink: output with no path to a system output")
def _r005_dead_sink(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    reaching = _signals_reaching_outputs(system)
    for name in system.module_names():
        for signal in system.module(name).outputs:
            if signal in reaching:
                continue
            yield (
                SourceLocation(module=name, signal=signal, port="output"),
                f"output {signal!r} of module {name!r} has no path to any "
                "system output; its signal error exposure X^S is vacuously "
                "zero",
                "errors reaching it are structurally unobservable — wire "
                "it toward a system output or mark it one",
            )


@rule("R006", Severity.WARNING, "cross-module cycle outside the self-feedback rule")
def _r006_cross_module_cycle(ctx: LintContext) -> Iterator[Finding]:
    for component in _cross_module_cycles(ctx.system):
        yield (
            SourceLocation(module=component[0]),
            "modules {" + ", ".join(component) + "} form a cross-module "
            "cycle; the paper's analysis covers only module self-feedback, "
            "so the tree builders cut these paths (CYCLE leaves, rendered "
            "'~~')",
            "remodel the loop as explicit self-feedback or break the "
            "cycle; path weights through the cut are lower bounds",
        )


@rule("R007", Severity.WARNING, "unmarked feedback module on a cross-module cycle")
def _r007_unmarked_feedback(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    for component in _cross_module_cycles(system):
        for name in component:
            if system.module(name).has_feedback():
                continue
            yield (
                SourceLocation(module=name),
                f"module {name!r} receives its own output back through "
                "{" + ", ".join(m for m in component if m != name) + "} "
                "but declares no self-feedback",
                "the paper's double-line rule only fires for a signal "
                "that is both input and output of the same module; "
                "declare the loop explicitly",
            )


@rule("R008", Severity.WARNING, "width mismatch across an input/output pair")
def _r008_width_mismatch(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    for module, input_signal, output_signal in system.pair_index():
        in_width = system.signal(input_signal).width
        out_width = system.signal(output_signal).width
        if in_width == out_width:
            continue
        direction = "narrows" if in_width > out_width else "widens"
        yield (
            SourceLocation(module=module, signal=output_signal, port="pair"),
            f"pair {input_signal!r} -> {output_signal!r} of module "
            f"{module!r} {direction} a {in_width}-bit signal into "
            f"{out_width} bits; bit-level error models cannot preserve "
            "bit positions across this connection",
            "align the two signal widths or document the truncation",
        )


# ---------------------------------------------------------------------------
# Matrix rules
# ---------------------------------------------------------------------------


@rule(
    "R009",
    Severity.WARNING,
    "all-zero permeability row: input never permeates",
    requires=("matrix",),
)
def _r009_zero_row(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    matrix = ctx.matrix
    assert matrix is not None
    for name in system.module_names():
        spec = system.module(name)
        if not spec.outputs:
            continue
        for input_signal in spec.inputs:
            values = [
                matrix.get_or_none(name, input_signal, output_signal)
                for output_signal in spec.outputs
            ]
            if any(value is None for value in values):
                continue  # incomplete row: nothing to conclude yet
            if all(value == 0.0 for value in values):
                yield (
                    SourceLocation(module=name, signal=input_signal, port="input"),
                    f"errors on input {input_signal!r} of module {name!r} "
                    "never permeate to any of its outputs (all-zero row)",
                    "if intended, suppress with --ignore R009; otherwise "
                    "check the estimate's sample size",
                )


@rule(
    "R010",
    Severity.WARNING,
    "all-zero permeability column: output never receives",
    requires=("matrix",),
)
def _r010_zero_column(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    matrix = ctx.matrix
    assert matrix is not None
    for name in system.module_names():
        spec = system.module(name)
        if not spec.inputs:
            continue
        for output_signal in spec.outputs:
            values = [
                matrix.get_or_none(name, input_signal, output_signal)
                for input_signal in spec.inputs
            ]
            if any(value is None for value in values):
                continue
            if all(value == 0.0 for value in values):
                yield (
                    SourceLocation(module=name, signal=output_signal, port="output"),
                    f"no input error of module {name!r} ever permeates to "
                    f"output {output_signal!r} (all-zero column)",
                    "every backtrack-tree edge into this output has weight "
                    "zero; verify against the injection counts",
                )


# ---------------------------------------------------------------------------
# Placement / campaign rules
# ---------------------------------------------------------------------------


@rule(
    "R011",
    Severity.WARNING,
    "detector shadowed by an upstream detector",
    requires=("detectors",),
)
def _r011_shadowed_detector(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    assert ctx.detectors is not None
    known = _known_signals(system)
    placed = tuple(dict.fromkeys(s for s in ctx.detectors if s in known))
    if len(placed) < 2:
        return
    dominators = _signal_dominators(system)
    for signal in placed:
        shadows = [
            other
            for other in placed
            if other != signal and other in dominators[signal]
        ]
        if shadows:
            yield (
                SourceLocation(signal=signal, port="detector"),
                f"detector on {signal!r} is shadowed by upstream "
                f"detector(s) on {', '.join(repr(s) for s in sorted(shadows))}: "
                "every propagation path into it crosses those signals first",
                "move the detector off the dominated path or drop it",
            )


@rule(
    "R012",
    Severity.ERROR,
    "campaign target names an unknown (module, signal) pair",
    requires=("targets",),
)
def _r012_unknown_target(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    assert ctx.targets is not None
    module_names = system.module_names()
    for module, signal in ctx.targets:
        if module not in module_names:
            suggestion = nearest_name(module, module_names)
            yield (
                SourceLocation(module=module, signal=signal, port="target"),
                f"campaign target ({module!r}, {signal!r}): unknown module "
                f"{module!r}",
                f"did you mean {suggestion!r}?" if suggestion else
                f"known modules: {', '.join(module_names)}",
            )
            continue
        spec = system.module(module)
        if signal not in spec.inputs:
            suggestion = nearest_name(signal, spec.inputs)
            yield (
                SourceLocation(module=module, signal=signal, port="target"),
                f"campaign target ({module!r}, {signal!r}): {signal!r} is "
                f"not an input of module {module!r}",
                f"did you mean {suggestion!r}?" if suggestion else
                f"inputs of {module}: {', '.join(spec.inputs) or '(none)'}",
            )


# ---------------------------------------------------------------------------
# Flow-backed rules (static bit-flow bounds)
# ---------------------------------------------------------------------------


def _bit_positions(mask: int) -> str:
    """Human-readable bit positions of a mask, e.g. ``0, 2, 5-7``."""
    positions = [b for b in range(mask.bit_length()) if mask >> b & 1]
    parts: list[str] = []
    start = prev = positions[0]
    for b in positions[1:] + [None]:  # type: ignore[list-item]
        if b is not None and b == prev + 1:
            prev = b
            continue
        parts.append(str(start) if start == prev else f"{start}-{prev}")
        if b is not None:
            start = prev = b
    return ", ".join(parts)


@rule(
    "R013",
    Severity.WARNING,
    "statically-dead arc: declared pair with provably zero permeability",
    requires=("bounds",),
)
def _r013_dead_arc(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.bounds is not None
    for (module, input_signal, output_signal), bounds in ctx.bounds.bounds.items():
        if not bounds.proves_zero:
            continue
        yield (
            SourceLocation(module=module, signal=output_signal, port="pair"),
            f"pair {input_signal!r} -> {output_signal!r} of module "
            f"{module!r} is declared live but its transfer masks prove "
            "zero permeability for every analysed error model",
            "injections on this arc are wasted work — enable "
            "static_prune, or drop the pair from the declaration",
        )


@rule(
    "R014",
    Severity.INFO,
    "constant-masked input bits no error model can propagate",
    requires=("bounds",),
)
def _r014_constant_masked_bits(ctx: LintContext) -> Iterator[Finding]:
    system = ctx.system
    analysis = ctx.bounds
    assert analysis is not None
    for name in system.module_names():
        spec = system.module(name)
        for input_signal in spec.inputs:
            live = analysis.live_input_bits(name, input_signal)
            if live is None or not spec.outputs:
                continue  # T module: every bit must be assumed live
            dead = analysis.dead_input_bits(name, input_signal)
            if not dead or live == 0:
                continue  # fully-dead rows are R013's finding, per arc
            yield (
                SourceLocation(module=name, signal=input_signal, port="input"),
                f"bit(s) {_bit_positions(dead)} of input {input_signal!r} "
                f"of module {name!r} are constant-masked: no transfer "
                "path lets them influence any output",
                "error models flipping only these positions can never "
                "propagate; narrow the model band or the signal width",
            )


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def lint_system(
    system: SystemModel,
    matrix: "PermeabilityMatrix | None" = None,
    *,
    targets: Sequence[tuple[str, str]] | None = None,
    detectors: Sequence[object] | None = None,
    bounds: "FlowAnalysis | None" = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintReport:
    """Run every applicable lint rule over ``system``.

    Parameters
    ----------
    system:
        The model to lint.  Pass ``SystemBuilder.build(validate=False)``
        output to lint a deliberately malformed topology.
    matrix:
        Optional permeability matrix enabling R009/R010.
    targets:
        Optional campaign ``(module, input signal)`` grid enabling R012.
    detectors:
        Optional detector placements enabling R011: signal names or
        :class:`~repro.edm.detectors.ErrorDetector` instances (their
        ``signal`` attribute is used).
    bounds:
        Optional :class:`~repro.flow.analysis.FlowAnalysis` enabling
        the flow-backed rules R013/R014.
    select, ignore:
        Diagnostic-code prefixes to keep / suppress (e.g.
        ``ignore=("R005",)``).

    Returns
    -------
    A :class:`~repro.lint.diagnostics.LintReport`; milliseconds even for
    large systems, so it is run by default before every injection
    campaign.
    """
    detector_signals: tuple[str, ...] | None = None
    if detectors is not None:
        detector_signals = tuple(
            str(getattr(detector, "signal", detector)) for detector in detectors
        )
    context = LintContext(
        system=system,
        matrix=matrix,
        targets=tuple(tuple(pair) for pair in targets) if targets is not None else None,
        detectors=detector_signals,
        bounds=bounds,
    )
    available = context.available()
    diagnostics: list[Diagnostic] = []
    for lint_rule in registered_rules():
        if not lint_rule.requires <= available:
            continue
        for location, message, hint in lint_rule.check(context):
            diagnostics.append(
                Diagnostic(
                    code=lint_rule.code,
                    severity=lint_rule.severity,
                    message=message,
                    location=location,
                    hint=hint,
                )
            )
    report = LintReport(system.name, diagnostics)
    if select is not None or ignore:
        report = report.filter(select=select, ignore=ignore)
    return report
