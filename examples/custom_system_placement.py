#!/usr/bin/env python3
"""Applying the framework to your own system: a sensor-fusion pipeline.

The paper's method is not tied to the arrestment controller — any
modular software with known (or estimated) pair permeabilities can be
analysed.  This example models a small automotive sensor-fusion stack:

    wheel_l ──┐
    wheel_r ──┼── ODOM ── speed ──┐
    gyro ─────┼── IMU ── yaw ─────┼── FUSE ── pose ── PLAN ── cmd
    accel ────┘       (bias fb)   │          (pose fb)
    gps ───────── GPS_RX ── fix ──┘

and derives where detection and recovery mechanisms pay off, plus DOT
exports for documentation.

Run with::

    python examples/custom_system_placement.py
"""

from __future__ import annotations

from repro import (
    PermeabilityMatrix,
    PropagationAnalysis,
    SystemBuilder,
    graph_to_dot,
    system_to_dot,
    tree_to_dot,
)


def build_fusion_system():
    """A five-module sensor-fusion pipeline with two feedback loops."""
    builder = SystemBuilder(
        "sensor-fusion",
        description="Automotive localisation stack (example)",
    )
    builder.add_module(
        "ODOM",
        inputs=["wheel_l", "wheel_r"],
        outputs=["speed"],
        description="Wheel odometry",
    )
    builder.add_module(
        "IMU",
        inputs=["gyro", "accel", "bias"],
        outputs=["yaw", "bias"],
        description="Inertial integration with bias estimation feedback",
    )
    builder.add_module(
        "GPS_RX",
        inputs=["gps"],
        outputs=["fix"],
        description="GNSS receiver front-end",
    )
    builder.add_module(
        "FUSE",
        inputs=["speed", "yaw", "fix", "pose"],
        outputs=["pose"],
        description="Pose filter with state feedback",
    )
    builder.add_module(
        "PLAN",
        inputs=["pose"],
        outputs=["cmd"],
        description="Trajectory planner",
    )
    builder.mark_system_input("wheel_l", "wheel_r", "gyro", "accel", "gps")
    builder.mark_system_output("cmd")
    return builder.build()


#: Analytic pair permeabilities: in practice these come from a fault
#: injection campaign; here they encode engineering judgement (the
#: filter smooths single-sample errors, the planner is a hard gate).
PERMEABILITIES = {
    ("ODOM", "wheel_l", "speed"): 0.55,
    ("ODOM", "wheel_r", "speed"): 0.55,
    ("IMU", "gyro", "yaw"): 0.80,
    ("IMU", "gyro", "bias"): 0.35,
    ("IMU", "accel", "yaw"): 0.20,
    ("IMU", "accel", "bias"): 0.60,
    ("IMU", "bias", "yaw"): 0.90,
    ("IMU", "bias", "bias"): 1.00,
    ("GPS_RX", "gps", "fix"): 0.95,
    ("FUSE", "speed", "pose"): 0.30,
    ("FUSE", "yaw", "pose"): 0.70,
    ("FUSE", "fix", "pose"): 0.25,
    ("FUSE", "pose", "pose"): 0.85,
    ("PLAN", "pose", "cmd"): 0.65,
}


def main() -> None:
    system = build_fusion_system()
    print(system.summary())
    print()

    matrix = PermeabilityMatrix.from_dict(system, PERMEABILITIES)
    analysis = PropagationAnalysis(matrix)

    print(analysis.render_table2())
    print()
    print(analysis.render_table3())
    print()

    print("Most probable error routes into the planner command:")
    for path in analysis.ranked_output_paths("cmd", only_nonzero=True)[:8]:
        print(f"  {path}")
    print()

    print("Where do gyro errors end up?")
    print(analysis.trace_trees["gyro"].render())
    print()

    print(analysis.placement.render())
    print()

    # DOT exports for documentation/design reviews.
    print("DOT (topology):")
    print(system_to_dot(system))
    print()
    print("DOT (backtrack tree of cmd):")
    print(tree_to_dot(analysis.backtrack_trees["cmd"]))
    print()
    print("DOT (permeability graph, zero arcs omitted):")
    print(graph_to_dot(analysis.graph))


if __name__ == "__main__":
    main()
