#!/usr/bin/env python3
"""Quickstart: permeability analysis of the paper's Fig. 2 example.

Builds the five-module example system of the paper (Section 4), assigns
analytic error-permeability values, and walks through the complete
analysis surface:

* the module measures of Eqs. 2–3 (Table 2 layout),
* the permeability graph (Fig. 3),
* the backtrack tree of the system output (Fig. 4),
* the trace tree of a system input (Fig. 5),
* ranked propagation paths (Table 4 layout), and
* EDM/ERM placement recommendations (Section 5).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    PermeabilityMatrix,
    PropagationAnalysis,
    build_fig2_system,
    fig2_permeabilities,
    graph_to_dot,
)


def main() -> None:
    # 1. The system model: modules A-E inter-linked by signals, with
    #    three system inputs and one system output.
    system = build_fig2_system()
    print(system.summary())
    print()

    # 2. A complete permeability matrix.  In a real study these values
    #    come from fault injection (see examples/arrestment_experiment.py);
    #    here they are the documented analytic example values.
    matrix = PermeabilityMatrix.from_dict(system, fig2_permeabilities())

    # 3. The analysis facade caches every derived artefact.
    analysis = PropagationAnalysis(matrix)

    print(analysis.render_table1())
    print()
    print(analysis.render_table2())
    print()

    print("Backtrack tree of system output sys_out (paper Fig. 4):")
    print(analysis.backtrack_trees["sys_out"].render())
    print()

    print("Trace tree of system input ext_a (paper Fig. 5):")
    print(analysis.trace_trees["ext_a"].render())
    print()

    print(analysis.render_table4(only_nonzero=False))
    print()

    print(analysis.render_table3())
    print()

    print(analysis.placement.render())
    print()

    print("Graphviz DOT of the permeability graph (paper Fig. 3):")
    print(graph_to_dot(analysis.graph))


if __name__ == "__main__":
    main()
