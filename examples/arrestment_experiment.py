#!/usr/bin/env python3
"""The paper's full experiment on the aircraft-arrestment system.

Reproduces Section 7: runs a SWIFI injection campaign against the
closed-loop arrestment controller (bit-flips on every module input,
Golden Run Comparison per workload), estimates the error-permeability
matrix, and regenerates the paper's Tables 1–4 plus the placement
observations OB1–OB6.

The campaign scale is selectable::

    python examples/arrestment_experiment.py            # quick (~1 min)
    python examples/arrestment_experiment.py medium     # ~15 min
    python examples/arrestment_experiment.py paper      # the full
        16 bits x 10 times x 25 cases grid of Section 7.3 (hours)
"""

from __future__ import annotations

import sys
import time

from repro import (
    CampaignConfig,
    InjectionCampaign,
    PropagationAnalysis,
    analyse_uniform_propagation,
    bit_flip_models,
    build_arrestment_model,
    build_arrestment_run,
    estimate_matrix,
    greedy_edm_selection,
    paper_test_cases,
    paper_times,
    reduced_test_cases,
)

SCALES = {
    # duration_ms, injection times, bit positions, test cases
    "quick": (6000, (1000, 3000), 16, 2),
    "medium": (6500, (800, 2200, 3600, 5000), 16, 5),
    "paper": (6500, paper_times(), 16, 25),
}


def pick_scale() -> tuple[str, CampaignConfig, dict]:
    name = sys.argv[1] if len(sys.argv) > 1 else "quick"
    if name not in SCALES:
        raise SystemExit(f"unknown scale {name!r}; pick one of {sorted(SCALES)}")
    duration_ms, times, bits, n_cases = SCALES[name]
    cases = paper_test_cases() if n_cases == 25 else reduced_test_cases(n_cases)
    config = CampaignConfig(
        duration_ms=duration_ms,
        injection_times_ms=tuple(times),
        error_models=tuple(bit_flip_models(bits)),
        seed=2001,
    )
    return name, config, cases


def main() -> None:
    name, config, cases = pick_scale()
    system = build_arrestment_model()
    campaign = InjectionCampaign(
        system, lambda case: build_arrestment_run(case), cases, config
    )
    total = campaign.total_runs()
    print(f"Scale {name!r}: {len(cases)} workloads x {len(campaign.targets)} "
          f"target signals x {config.runs_per_target()} injections "
          f"= {total} injection runs")

    started = time.time()
    last_report = [0.0]

    def progress(done: int, _total: int) -> None:
        now = time.time()
        if now - last_report[0] >= 10.0:
            rate = done / (now - started)
            remaining = (_total - done) / rate if rate else float("inf")
            print(f"  {done}/{_total} runs ({rate:.0f} runs/s, "
                  f"~{remaining:.0f}s remaining)")
            last_report[0] = now

    result = campaign.execute(progress=progress)
    elapsed = time.time() - started
    print(f"Campaign finished: {len(result)} runs in {elapsed:.0f}s\n")

    matrix = estimate_matrix(result)
    analysis = PropagationAnalysis(matrix)

    print(analysis.render_table1())
    print()
    print(analysis.render_table2())
    print()
    print(analysis.render_table3())
    print()
    print(analysis.render_table4())
    print()
    print(analysis.placement.render())
    print()

    print(analyse_uniform_propagation(result).render())
    print()
    print(greedy_edm_selection(result, max_monitors=3).render())


if __name__ == "__main__":
    main()
