#!/usr/bin/env python3
"""Error-model sensitivity: does the relative ordering survive?

Section 6 of the paper: "The type of injected errors can also effect
the estimates. ... as in our framework the measures are mainly used as
relative measures, the relevance of the realism provided by the error
model is decreased, assuming that the relative order of the modules and
signals when analysing permeability is maintained."

This example tests that assumption experimentally (the paper defers it
to future work): it runs four small campaigns against the arrestment
system — single bit-flips (the paper's model), double bit-flips, signed
offsets and random word replacement — and compares the module ranking
by non-weighted relative permeability (Eq. 3) across models.

Run with::

    python examples/error_model_sensitivity.py
"""

from __future__ import annotations

import time

from repro import (
    CampaignConfig,
    InjectionCampaign,
    build_arrestment_model,
    build_arrestment_run,
    estimate_matrix,
)
from repro.injection.error_models import (
    BitFlip,
    DoubleBitFlip,
    Offset,
    RandomReplacement,
)
from repro.arrestment.testcases import reduced_test_cases

MODEL_SETS = {
    "bit-flip (paper)": [BitFlip(bit) for bit in (0, 4, 8, 12, 15)],
    "double bit-flip": [DoubleBitFlip(b, b + 3) for b in (0, 4, 8, 12)],
    "offset": [Offset(delta) for delta in (-1024, -32, +32, +1024)],
    "random replacement": [RandomReplacement() for _ in range(4)],
}


def run_campaign(models) -> dict[str, float]:
    system = build_arrestment_model()
    config = CampaignConfig(
        duration_ms=5500,
        injection_times_ms=(1200, 3400),
        error_models=tuple(models),
        seed=42,
    )
    campaign = InjectionCampaign(
        system,
        lambda case: build_arrestment_run(case),
        reduced_test_cases(1),
        config,
    )
    matrix = estimate_matrix(campaign.execute())
    return {
        name: matrix.nonweighted_relative_permeability(name)
        for name in system.module_names()
    }


def main() -> None:
    rankings: dict[str, list[str]] = {}
    print("Running four small campaigns (one workload each)...\n")
    for label, models in MODEL_SETS.items():
        started = time.time()
        measures = run_campaign(models)
        ranking = sorted(measures, key=lambda m: -measures[m])
        rankings[label] = ranking
        values = ", ".join(f"{m}={measures[m]:.2f}" for m in ranking)
        print(f"{label:22s} ({time.time() - started:4.0f}s): {values}")

    print("\nModule ranking by non-weighted relative permeability (Eq. 3):")
    for label, ranking in rankings.items():
        print(f"  {label:22s}: {' > '.join(ranking)}")

    reference = rankings["bit-flip (paper)"]
    agreements = sum(
        1 for ranking in rankings.values() if ranking[:3] == reference[:3]
    )
    print(
        f"\nTop-3 ranking agreement with the paper's bit-flip model: "
        f"{agreements}/{len(rankings)} model sets"
    )
    print(
        "The relative ordering is expected to be stable across error "
        "models — the paper's argument for using bit-flips as a proxy."
    )


if __name__ == "__main__":
    main()
