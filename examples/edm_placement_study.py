#!/usr/bin/env python3
"""OB3 as an experiment: does detector location beat detector quality?

The paper's observation OB3 recounts a companion study [7]: an
executable assertion on ``InValue`` detected errors "with a very high
probability", yet placing it would not be cost effective because
``InValue`` has a very low error exposure — "the locations are equally
important" as detection capability.

This example runs that comparison end to end:

1. calibrate rate-of-change assertions from a Golden Run for the
   low-exposure ``InValue`` and for the high-exposure corridor
   (``SetValue``, ``OutValue``) plus a monotonicity assertion on
   ``pulscnt`` (OB4's extra pick);
2. evaluate all of them against one injection campaign;
3. combine each detector's raw coverage with its signal's error
   exposure (Eq. 6) into OB3's effectiveness ordering.

Run with::

    python examples/edm_placement_study.py
"""

from __future__ import annotations

import time

from repro import (
    CampaignConfig,
    DeltaCheck,
    MonotonicCheck,
    PropagationAnalysis,
    bit_flip_models,
    build_arrestment_model,
    build_arrestment_run,
    calibrate_delta,
    estimate_matrix,
)
from repro.arrestment.testcases import ArrestmentTestCase
from repro.edm.evaluation import effectiveness_score, evaluate_detectors
from repro.injection.campaign import InjectionCampaign


def main() -> None:
    system = build_arrestment_model()
    case = ArrestmentTestCase(14000, 60)
    config = CampaignConfig(
        duration_ms=6000,
        injection_times_ms=(1200, 3400),
        error_models=tuple(bit_flip_models(16)),
        seed=7,
    )

    print("Calibrating assertions from a Golden Run...")
    golden = build_arrestment_run(case).run(config.duration_ms)
    detectors = [
        DeltaCheck("InValue", calibrate_delta(golden.traces["InValue"].samples)),
        DeltaCheck("SetValue", calibrate_delta(golden.traces["SetValue"].samples)),
        DeltaCheck("OutValue", calibrate_delta(golden.traces["OutValue"].samples)),
        MonotonicCheck("pulscnt"),
    ]
    for detector in detectors:
        print(f"  {detector.name}")

    print("\nRunning the injection campaign twice:")
    print("  (a) permeability estimation, (b) detector evaluation")
    started = time.time()
    campaign = InjectionCampaign(
        system, lambda c: build_arrestment_run(c), {case.case_id: case}, config
    )
    analysis = PropagationAnalysis(estimate_matrix(campaign.execute()))
    evaluation = evaluate_detectors(
        system, lambda c: build_arrestment_run(c), {case.case_id: case}, config,
        detectors,
    )
    print(f"  done in {time.time() - started:.0f}s\n")

    print(evaluation.render())
    print()

    exposures = analysis.signal_exposures
    print("OB3 effectiveness = coverage x signal error exposure (Eq. 6):")
    scored = []
    for stats in evaluation.stats:
        score = effectiveness_score(stats, exposures[stats.signal])
        scored.append((score, stats))
    scored.sort(key=lambda item: -item[0])
    for score, stats in scored:
        print(
            f"  {stats.detector:28s} coverage={stats.coverage:.3f}  "
            f"X^S={exposures[stats.signal]:.3f}  effectiveness={score:.3f}"
        )
    best = scored[0][1]
    in_value = next(s for s in evaluation.stats if s.signal == "InValue")
    print(
        f"\nConclusion: the {best.signal} assertion wins on effectiveness; "
        f"the InValue assertion (coverage {in_value.coverage:.3f}) is "
        "starved of propagating errors — the paper's OB3."
    )


if __name__ == "__main__":
    main()
