"""Setup shim for environments installing without build isolation."""

from setuptools import setup

setup()
