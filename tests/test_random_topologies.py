"""Property tests over randomly generated system topologies.

The layered-DAG strategies live in :mod:`tests.strategies` (shared
with the lint property tests); this module checks the framework's
global invariants over them:

* construction always terminates and validates;
* every analysis (graph, trees, paths, exposures, placement) runs
  without error and respects its bounds;
* **duality**: on acyclic systems, the boundary-to-boundary paths of
  the backtrack tree of output *o* with source *s* are exactly the
  reverses of the trace-tree paths from *s* ending at *o*, with equal
  weights.  (With feedback the two constructions deliberately unroll
  loops differently, so duality is asserted for DAGs only.)
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.analysis import PropagationAnalysis
from repro.core.backtrack import build_all_backtrack_trees
from repro.core.paths import paths_of_backtrack_tree, paths_of_trace_tree
from repro.core.trace import build_all_trace_trees
from repro.core.treenode import NodeKind

from tests.strategies import dag_matrices


@settings(max_examples=50, deadline=None)
@given(dag_matrices())
def test_random_dag_analyses_run_and_respect_bounds(matrix):
    analysis = PropagationAnalysis(matrix)
    for tree in analysis.backtrack_trees.values():
        for path in paths_of_backtrack_tree(tree):
            assert 0.0 <= path.weight <= 1.0
    for tree in analysis.trace_trees.values():
        for path in paths_of_trace_tree(tree):
            assert 0.0 <= path.weight <= 1.0
    for exposure in analysis.module_exposures.values():
        if exposure.has_exposure:
            assert 0.0 <= exposure.exposure <= 1.0
    for value in analysis.signal_exposures.values():
        assert value >= 0.0
    analysis.placement.render()  # must not raise


@settings(max_examples=50, deadline=None)
@given(dag_matrices())
def test_backtrack_trace_duality_on_dags(matrix):
    """On acyclic systems the two tree families enumerate mirrored
    boundary-to-boundary path sets with identical weights."""
    system = matrix.system
    backtrack_paths = set()
    for tree in build_all_backtrack_trees(matrix).values():
        for path in paths_of_backtrack_tree(tree):
            if path.terminal_kind is NodeKind.BOUNDARY and system.is_system_input(
                path.source
            ):
                backtrack_paths.add((path.signals, round(path.weight, 12)))
    trace_paths = set()
    for tree in build_all_trace_trees(matrix).values():
        for path in paths_of_trace_tree(tree):
            if path.terminal_kind is NodeKind.BOUNDARY and system.is_system_output(
                path.sink
            ):
                trace_paths.add((path.signals, round(path.weight, 12)))
    # Restrict both sides to chains whose interior signals never touch
    # the boundary (an interior signal that is itself a system output
    # terminates trace paths early; backtrack does not pass through
    # system inputs by construction).
    def interior_clean(signals):
        return all(
            not system.is_system_output(signal)
            and not system.is_system_input(signal)
            for signal in signals[1:-1]
        )

    backtrack_clean = {
        item for item in backtrack_paths if interior_clean(item[0])
    }
    trace_clean = {item for item in trace_paths if interior_clean(item[0])}
    assert backtrack_clean == trace_clean
